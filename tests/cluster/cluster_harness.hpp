// Shared helpers for the deterministic cluster test tier.
//
// Everything here is a pure function of an explicit seed, extending the
// PR 1 harness conventions to the cluster layer: a failing property run
// prints its seed, and re-running with that seed alone reproduces the
// exact workload, the exact SimCluster decision log, and the failure.
#pragma once

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "cluster/sim_cluster.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace horse::cluster::test_harness {

/// A seeded arrival sequence: times are non-decreasing, services follow a
/// short/long (90/10 by default) mix — the skewed shape E18 measures.
struct SeededWorkload {
  std::vector<util::Nanos> times;
  std::vector<faas::FunctionId> functions;
  std::vector<util::Nanos> services;
  /// Chain length per arrival: 0 = plain submission, N > 0 = an N-stage
  /// workflow chain whose total nominal service is `services[i]`.
  std::vector<std::uint32_t> chain_stages;

  [[nodiscard]] std::size_t size() const noexcept { return times.size(); }
};

struct WorkloadParams {
  std::size_t count = 200;
  std::uint32_t num_functions = 4;
  /// Mean exponential inter-arrival gap.
  util::Nanos mean_gap = 100 * util::kMicrosecond;
  util::Nanos short_service = 10 * util::kMicrosecond;
  util::Nanos long_service = util::kMillisecond;
  /// Fraction of arrivals drawing the long service time.
  double long_fraction = 0.1;
  /// Fraction of arrivals submitted as workflow chains. Kept at 0 by
  /// default so pre-chain workloads stay byte-identical: the chain draw
  /// is short-circuited (no RNG consumed) when the fraction is zero.
  double chain_fraction = 0.0;
  /// Stages per chain arrival.
  std::uint32_t chain_length = 3;
};

inline SeededWorkload make_workload(std::uint64_t seed,
                                    WorkloadParams params = {}) {
  SeededWorkload out;
  util::Xoshiro256 rng(seed);
  util::Nanos t = 0;
  for (std::size_t i = 0; i < params.count; ++i) {
    t += static_cast<util::Nanos>(
        rng.exponential(1.0 / static_cast<double>(params.mean_gap)));
    out.times.push_back(t);
    out.functions.push_back(
        static_cast<faas::FunctionId>(rng.bounded(params.num_functions)));
    out.services.push_back(rng.uniform01() < params.long_fraction
                               ? params.long_service
                               : params.short_service);
    out.chain_stages.push_back(params.chain_fraction > 0 &&
                                       rng.uniform01() < params.chain_fraction
                                   ? params.chain_length
                                   : 0);
  }
  return out;
}

/// Split a chain's total service across its stages: equal shares, the
/// last stage absorbing the rounding remainder (total preserved exactly).
inline std::vector<util::Nanos> stage_split(util::Nanos total,
                                            std::uint32_t stages) {
  std::vector<util::Nanos> services(stages, total / stages);
  services.back() += total - (total / stages) * stages;
  return services;
}

/// Submit arrival `i` of the workload — a plain submission or, when the
/// workload marks it as a chain, one chain submission (one seq, one key,
/// one deadline for the whole chain).
inline void submit_one(SimCluster& cluster, const SeededWorkload& workload,
                       std::size_t i, util::Nanos deadline = 0) {
  if (i < workload.chain_stages.size() && workload.chain_stages[i] > 0) {
    cluster.submit_chain(workload.times[i], workload.functions[i],
                         stage_split(workload.services[i],
                                     workload.chain_stages[i]),
                         deadline);
  } else {
    cluster.submit(workload.times[i], workload.functions[i],
                   workload.services[i], deadline);
  }
}

inline void feed(SimCluster& cluster, const SeededWorkload& workload) {
  for (std::size_t i = 0; i < workload.size(); ++i) {
    submit_one(cluster, workload, i);
  }
}

/// Peak concurrent executions per host, from the completion records'
/// [start, finish) intervals. At equal timestamps a finish is processed
/// before a start, so back-to-back slot reuse does not count as overlap.
inline std::vector<std::size_t> peak_concurrency(
    const std::vector<SimCompletion>& completions, std::size_t num_hosts) {
  struct Event {
    util::Nanos time;
    int delta;
    std::size_t host;
  };
  std::vector<Event> events;
  events.reserve(completions.size() * 2);
  for (const SimCompletion& done : completions) {
    events.push_back({done.start, +1, done.host});
    events.push_back({done.finish, -1, done.host});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.time != b.time ? a.time < b.time : a.delta < b.delta;
  });
  std::vector<std::size_t> current(num_hosts, 0);
  std::vector<std::size_t> peak(num_hosts, 0);
  for (const Event& event : events) {
    if (event.delta > 0) {
      peak[event.host] = std::max(peak[event.host], ++current[event.host]);
    } else {
      --current[event.host];
    }
  }
  return peak;
}

/// True when every completion carries a distinct seq (no double dispatch).
inline bool unique_seqs(const std::vector<SimCompletion>& completions) {
  std::set<std::uint64_t> seen;
  for (const SimCompletion& done : completions) {
    if (!seen.insert(done.seq).second) {
      return false;
    }
  }
  return true;
}

/// Policy-decision count per host (what the fairness delta is measured
/// over; unlike dispatch_counts() this never includes occupy() preloads).
inline std::vector<std::uint64_t> decision_counts(const SimCluster& cluster,
                                                  std::size_t num_hosts) {
  std::vector<std::uint64_t> counts(num_hosts, 0);
  for (const SimDecision& decision : cluster.decisions()) {
    counts[decision.host]++;
  }
  return counts;
}

}  // namespace horse::cluster::test_harness
