// Compile-time sanitizer detection for tests.
//
// Wall-clock comparisons between two code paths are meaningless when the
// binary is instrumented: tsan multiplies every memory access ~10x (and
// asan ~2x), shifting the *relative* weight of the paths under test. Such
// tests skip themselves with HORSE_SKIP_TIMING_UNDER_SANITIZERS() so the
// sanitizer presets stay signal (races, UB, leaks) instead of noise.
//
// Detection covers both compilers: GCC defines __SANITIZE_ADDRESS__ /
// __SANITIZE_THREAD__, clang exposes __has_feature(...).
#pragma once

#include <gtest/gtest.h>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define HORSE_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define HORSE_UNDER_SANITIZER 1
#endif
#endif

#ifndef HORSE_UNDER_SANITIZER
#define HORSE_UNDER_SANITIZER 0
#endif

#if HORSE_UNDER_SANITIZER
#define HORSE_SKIP_TIMING_UNDER_SANITIZERS()                          \
  GTEST_SKIP() << "wall-clock comparison: sanitizer instrumentation " \
                  "distorts relative timings"
#else
#define HORSE_SKIP_TIMING_UNDER_SANITIZERS() static_cast<void>(0)
#endif
