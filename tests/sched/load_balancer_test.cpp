#include "sched/load_balancer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace horse::sched {
namespace {

class LoadBalancerTest : public ::testing::Test {
 protected:
  LoadBalancerTest() : topology_(4) {}

  void fill_queue(CpuId cpu, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      auto vcpu = std::make_unique<Vcpu>();
      vcpu->credit = static_cast<Credit>(100 * (i + 1));
      util::LockGuard guard(topology_.queue(cpu).lock());
      topology_.queue(cpu).insert_sorted(*vcpu);
      storage_.push_back(std::move(vcpu));
    }
  }

  // Storage is declared first so it is destroyed LAST: the queues'
  // destructors unlink every node still enqueued, which must be alive
  // (use-after-free otherwise; caught by the asan-ubsan preset).
  std::vector<std::unique_ptr<Vcpu>> storage_;
  CpuTopology topology_;
};

TEST_F(LoadBalancerTest, ValidatesParams) {
  LoadBalancerParams params;
  params.imbalance_ratio = 1.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.max_migrations_per_round = 0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST_F(LoadBalancerTest, BalancedTopologyNoMigration) {
  fill_queue(0, 3);
  fill_queue(1, 3);
  fill_queue(2, 3);
  fill_queue(3, 3);
  LoadBalancer balancer(topology_);
  EXPECT_EQ(balancer.rebalance(), 0u);
}

TEST_F(LoadBalancerTest, EmptyTopologyNoMigration) {
  LoadBalancer balancer(topology_);
  EXPECT_EQ(balancer.rebalance(), 0u);
}

TEST_F(LoadBalancerTest, MigratesFromBusiestToIdlest) {
  fill_queue(0, 6);
  // Queues 1-3 empty.
  LoadBalancerParams params;
  params.max_migrations_per_round = 2;
  LoadBalancer balancer(topology_, params);
  const auto migrated = balancer.rebalance();
  EXPECT_EQ(migrated, 2u);
  EXPECT_EQ(topology_.queue(0).size(), 4u);
  // Both landed on one (the idlest) queue; everything stays sorted.
  std::size_t relocated = 0;
  for (CpuId cpu = 1; cpu < 4; ++cpu) {
    relocated += topology_.queue(cpu).size();
    EXPECT_TRUE(topology_.queue(cpu).is_sorted());
  }
  EXPECT_EQ(relocated, 2u);
  EXPECT_EQ(balancer.total_migrations(), 2u);
}

TEST_F(LoadBalancerTest, RepeatedRoundsConverge) {
  fill_queue(0, 12);
  LoadBalancer balancer(topology_);
  for (int round = 0; round < 20; ++round) {
    if (balancer.rebalance() == 0) {
      break;
    }
  }
  // No queue should remain > 1.5x another after convergence.
  std::size_t max_len = 0;
  std::size_t min_len = 100;
  for (CpuId cpu = 0; cpu < 4; ++cpu) {
    max_len = std::max(max_len, topology_.queue(cpu).size());
    min_len = std::min(min_len, topology_.queue(cpu).size());
  }
  EXPECT_LE(max_len, min_len + 2);
}

TEST_F(LoadBalancerTest, NeverTouchesReservedQueues) {
  topology_.reserve_for_ull(3);
  fill_queue(3, 10);  // heavily loaded ull queue
  fill_queue(0, 1);
  LoadBalancer balancer(topology_);
  EXPECT_EQ(balancer.rebalance(), 0u);  // imbalance is on the reserved queue
  EXPECT_EQ(topology_.queue(3).size(), 10u);

  // And never migrates INTO a reserved queue either.
  fill_queue(1, 8);
  (void)balancer.rebalance();
  EXPECT_EQ(topology_.queue(3).size(), 10u);
}

TEST_F(LoadBalancerTest, MigrationPreservesVcpuCount) {
  fill_queue(0, 9);
  fill_queue(1, 1);
  LoadBalancer balancer(topology_);
  for (int i = 0; i < 10; ++i) {
    (void)balancer.rebalance();
  }
  std::size_t total = 0;
  for (CpuId cpu = 0; cpu < 4; ++cpu) {
    total += topology_.queue(cpu).size();
  }
  EXPECT_EQ(total, 10u);
}

TEST_F(LoadBalancerTest, TickDriverDecaysIdleQueues) {
  topology_.queue(0).set_load_for_test(1024.0);
  topology_.queue(1).set_load_for_test(1024.0);
  fill_queue(1, 1);  // non-empty: no decay
  LoadBalancer balancer(topology_);
  TickDriver ticker(topology_, balancer, /*rebalance_every=*/1000);
  for (int i = 0; i < 32; ++i) {
    ticker.on_tick();
  }
  EXPECT_EQ(ticker.ticks(), 32u);
  EXPECT_NEAR(topology_.queue(0).load(), 512.0, 1.0);  // halved in 32 periods
  EXPECT_DOUBLE_EQ(topology_.queue(1).load(), 1024.0);
}

TEST_F(LoadBalancerTest, TickDriverTriggersRebalance) {
  fill_queue(0, 8);
  LoadBalancer balancer(topology_);
  TickDriver ticker(topology_, balancer, /*rebalance_every=*/2);
  ticker.on_tick();
  EXPECT_EQ(balancer.total_migrations(), 0u);  // not yet
  ticker.on_tick();
  EXPECT_GT(balancer.total_migrations(), 0u);  // every 2nd tick
}

}  // namespace
}  // namespace horse::sched
