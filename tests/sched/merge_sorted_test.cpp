// RunQueue::merge_sorted must be element-for-element equivalent to the
// per-vCPU insert_sorted loop it replaces on the fallback merge path —
// same final ordering (ties included, so identity matters, not just
// credits), same state/last_cpu side effects, same journal positions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "sched/run_queue.hpp"
#include "sched/vcpu.hpp"
#include "util/spinlock.hpp"

namespace horse::sched {
namespace {

class MergeSortedTest : public ::testing::Test {
 protected:
  Vcpu& make_vcpu(VcpuId id, Credit credit) {
    auto vcpu = std::make_unique<Vcpu>();
    vcpu->id = id;
    vcpu->credit = credit;
    storage_.push_back(std::move(vcpu));
    return *storage_.back();
  }

  static std::vector<std::pair<Credit, VcpuId>> contents(RunQueue& queue) {
    std::vector<std::pair<Credit, VcpuId>> out;
    for (const Vcpu& vcpu : queue.list()) {
      out.emplace_back(vcpu.credit, vcpu.id);
    }
    return out;
  }

  std::vector<std::unique_ptr<Vcpu>> storage_;
};

TEST_F(MergeSortedTest, EmptyIncomingIsANoOp) {
  RunQueue queue(0);
  VcpuList incoming;
  util::LockGuard guard(queue.lock());
  EXPECT_EQ(queue.merge_sorted(incoming), 0u);
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.version(), 0u);
}

TEST_F(MergeSortedTest, SetsSchedulingStateLikeInsertSorted) {
  RunQueue queue(5);
  VcpuList incoming;
  Vcpu& vcpu = make_vcpu(1, 100);
  vcpu.state = VcpuState::kPaused;
  incoming.push_back(vcpu);
  {
    util::LockGuard guard(queue.lock());
    EXPECT_EQ(queue.merge_sorted(incoming), 1u);
  }
  EXPECT_EQ(vcpu.state, VcpuState::kRunnable);
  EXPECT_EQ(vcpu.last_cpu, 5u);
  EXPECT_TRUE(incoming.empty());
  queue.list().abandon_all();
}

TEST_F(MergeSortedTest, EquivalentToInsertSortedAcrossRandomSeeds) {
  // Same queue contents, same incoming list, two ways: the single-pass
  // merge vs the legacy per-element loop. Ordering (with tie identity),
  // version delta and invariants must match on every seed — sorted,
  // unsorted and duplicate-heavy incoming lists alike.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<Credit> credit_dist(-20, 20);
    std::uniform_int_distribution<std::size_t> count_dist(0, 12);
    const std::size_t queue_len = count_dist(rng);
    const std::size_t incoming_len = count_dist(rng);

    storage_.clear();
    RunQueue merged_queue(1);
    RunQueue legacy_queue(1);
    VcpuList merged_incoming;
    VcpuList legacy_incoming;

    VcpuId next_id = 1;
    for (std::size_t i = 0; i < queue_len; ++i) {
      const Credit credit = credit_dist(rng);
      const VcpuId id = next_id++;
      util::LockGuard merged_guard(merged_queue.lock());
      util::LockGuard legacy_guard(legacy_queue.lock());
      merged_queue.insert_sorted(make_vcpu(id, credit));
      legacy_queue.insert_sorted(make_vcpu(id, credit));
    }
    // Mostly-sorted incoming (the merge-list contract) with occasional
    // out-of-order elements to force the head-restart path.
    std::vector<Credit> credits;
    for (std::size_t i = 0; i < incoming_len; ++i) {
      credits.push_back(credit_dist(rng));
    }
    if (seed % 3 != 0) {
      std::sort(credits.begin(), credits.end());
    }
    for (std::size_t i = 0; i < incoming_len; ++i) {
      const VcpuId id = next_id++;
      merged_incoming.push_back(make_vcpu(id, credits[i]));
      legacy_incoming.push_back(make_vcpu(id, credits[i]));
    }

    const std::uint64_t version_before = merged_queue.version();
    {
      util::LockGuard guard(merged_queue.lock());
      EXPECT_EQ(merged_queue.merge_sorted(merged_incoming), incoming_len);
    }
    {
      util::LockGuard guard(legacy_queue.lock());
      while (!legacy_incoming.empty()) {
        legacy_queue.insert_sorted(legacy_incoming.pop_front());
      }
    }

    EXPECT_EQ(contents(merged_queue), contents(legacy_queue))
        << "seed " << seed;
    EXPECT_EQ(merged_queue.version(), legacy_queue.version())
        << "seed " << seed;
    EXPECT_EQ(merged_queue.version(), version_before + incoming_len);
    EXPECT_TRUE(merged_queue.check_invariants(/*require_sorted=*/true).is_ok())
        << "seed " << seed;

    // Journal equivalence: the staged batch must replay exactly like the
    // per-element records (𝒫²𝒮ℳ repair consumes these positions).
    for (std::uint64_t v = version_before + 1;
         v <= merged_queue.version() && v + RunQueue::kJournalCapacity >
                                            merged_queue.version();
         ++v) {
      const QueueDelta* merged_delta = merged_queue.delta_for_version(v);
      const QueueDelta* legacy_delta = legacy_queue.delta_for_version(v);
      ASSERT_NE(merged_delta, nullptr) << "seed " << seed << " v " << v;
      ASSERT_NE(legacy_delta, nullptr) << "seed " << seed << " v " << v;
      EXPECT_EQ(merged_delta->kind, legacy_delta->kind);
      EXPECT_EQ(merged_delta->position, legacy_delta->position)
          << "seed " << seed << " v " << v;
      EXPECT_EQ(merged_delta->credit, legacy_delta->credit);
    }

    merged_queue.list().abandon_all();
    legacy_queue.list().abandon_all();
  }
}

}  // namespace
}  // namespace horse::sched
