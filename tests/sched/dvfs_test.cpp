#include "sched/dvfs.hpp"

#include <gtest/gtest.h>

namespace horse::sched {
namespace {

TEST(DvfsTest, ValidateRejectsBadParams) {
  DvfsParams params;
  params.min_freq_khz = 0;
  EXPECT_THROW(DvfsGovernor{params}, std::invalid_argument);
  params = {};
  params.max_freq_khz = params.min_freq_khz;
  EXPECT_THROW(DvfsGovernor{params}, std::invalid_argument);
  params = {};
  params.capacity = 0.0;
  EXPECT_THROW(DvfsGovernor{params}, std::invalid_argument);
  params = {};
  params.step_khz = 0;
  EXPECT_THROW(DvfsGovernor{params}, std::invalid_argument);
}

TEST(DvfsTest, ZeroLoadGivesMinFrequency) {
  DvfsGovernor governor;
  const auto freq = governor.target_freq_khz(0.0);
  EXPECT_EQ(freq, governor.params().min_freq_khz -
                      governor.params().min_freq_khz %
                          governor.params().step_khz);
}

TEST(DvfsTest, FullLoadGivesMaxFrequency) {
  DvfsGovernor governor;
  const auto freq = governor.target_freq_khz(1024.0);
  EXPECT_EQ(freq, governor.params().max_freq_khz -
                      governor.params().max_freq_khz %
                          governor.params().step_khz);
}

TEST(DvfsTest, OverloadClampsToMax) {
  DvfsGovernor governor;
  EXPECT_EQ(governor.target_freq_khz(5000.0), governor.target_freq_khz(1024.0));
}

TEST(DvfsTest, MonotoneInLoad) {
  DvfsGovernor governor;
  std::uint64_t prev = 0;
  for (double load = 0.0; load <= 1024.0; load += 64.0) {
    const auto freq = governor.target_freq_khz(load);
    EXPECT_GE(freq, prev);
    prev = freq;
  }
}

TEST(DvfsTest, QuantisedToStep) {
  DvfsGovernor governor;
  for (double load = 0.0; load <= 1024.0; load += 100.0) {
    EXPECT_EQ(governor.target_freq_khz(load) % governor.params().step_khz, 0u);
  }
}

TEST(DvfsTest, EvaluateWholeTopology) {
  CpuTopology topology(4);
  topology.queue(0).set_load_for_test(0.0);
  topology.queue(1).set_load_for_test(512.0);
  topology.queue(2).set_load_for_test(1024.0);
  topology.queue(3).set_load_for_test(2048.0);
  DvfsGovernor governor;
  const auto freqs = governor.evaluate(topology);
  ASSERT_EQ(freqs.size(), 4u);
  EXPECT_LT(freqs[0], freqs[1]);
  EXPECT_LE(freqs[1], freqs[2]);
  EXPECT_EQ(freqs[2], freqs[3]);  // both saturated
}

TEST(DvfsTest, CoalescedLoadYieldsIdenticalFrequencyDecision) {
  // The correctness property §4.2 rests on: the governor cannot tell a
  // coalesced update from n iterative ones.
  CpuTopology iterative(1);
  CpuTopology coalesced(1);
  iterative.queue(0).set_load_for_test(300.0);
  coalesced.queue(0).set_load_for_test(300.0);
  for (int i = 0; i < 36; ++i) {
    iterative.queue(0).update_load_enqueue();
  }
  coalesced.queue(0).update_load_coalesced(36);
  DvfsGovernor governor;
  EXPECT_EQ(governor.target_freq_khz(iterative.queue(0).load()),
            governor.target_freq_khz(coalesced.queue(0).load()));
}

}  // namespace
}  // namespace horse::sched
