#include "sched/pelt.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace horse::sched {
namespace {

TEST(PeltTest, DefaultParamsAreLinuxLike) {
  PeltParams params;
  // alpha = 0.5^(1/32): halves after 32 applications.
  EXPECT_NEAR(std::pow(params.alpha, 32.0), 0.5, 1e-9);
  // beta scaled so the fixed point is 1024.
  EXPECT_NEAR(params.beta / (1.0 - params.alpha), 1024.0, 1e-6);
}

TEST(PeltTest, ValidateRejectsBadAlpha) {
  PeltParams params;
  params.alpha = 1.0;
  EXPECT_THROW(PeltLoadTracker{params}, std::invalid_argument);
  params.alpha = 0.0;
  EXPECT_THROW(PeltLoadTracker{params}, std::invalid_argument);
  params.alpha = -0.5;
  EXPECT_THROW(PeltLoadTracker{params}, std::invalid_argument);
}

TEST(PeltTest, ValidateRejectsNegativeBeta) {
  PeltParams params;
  params.beta = -1.0;
  EXPECT_THROW(PeltLoadTracker{params}, std::invalid_argument);
}

TEST(PeltTest, ApplyOnceIsAffine) {
  PeltLoadTracker tracker;
  const auto& p = tracker.params();
  EXPECT_DOUBLE_EQ(tracker.apply_once(0.0), p.beta);
  EXPECT_DOUBLE_EQ(tracker.apply_once(100.0), p.alpha * 100.0 + p.beta);
}

TEST(PeltTest, IterativeZeroApplicationsIsIdentity) {
  PeltLoadTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.apply_iterative(123.0, 0), 123.0);
  EXPECT_DOUBLE_EQ(tracker.apply_closed_form(123.0, 0), 123.0);
}

TEST(PeltTest, ClosedFormEqualsIterativeAcrossN) {
  PeltLoadTracker tracker;
  for (const std::uint32_t n : {1u, 2u, 3u, 7u, 16u, 36u, 100u, 1000u}) {
    const double iterative = tracker.apply_iterative(77.0, n);
    const double closed = tracker.apply_closed_form(77.0, n);
    EXPECT_NEAR(iterative, closed, 1e-9 * std::max(1.0, iterative)) << "n=" << n;
  }
}

TEST(PeltTest, FixedPointIs1024) {
  PeltLoadTracker tracker;
  // A persistently runnable entity converges to beta/(1-alpha) = 1024.
  const double converged = tracker.apply_closed_form(0.0, 10'000);
  EXPECT_NEAR(converged, 1024.0, 1e-6);
}

TEST(PeltTest, DecayIsPureGeometric) {
  PeltLoadTracker tracker;
  const double decayed = tracker.decay(1024.0, 32);
  EXPECT_NEAR(decayed, 512.0, 1e-6);
  EXPECT_DOUBLE_EQ(tracker.decay(100.0, 0), 100.0);
}

TEST(PeltTest, MonotoneInLoad) {
  PeltLoadTracker tracker;
  EXPECT_LT(tracker.apply_closed_form(10.0, 5),
            tracker.apply_closed_form(20.0, 5));
}

TEST(PeltTest, CustomParamsRespected) {
  PeltParams params;
  params.alpha = 0.5;
  params.beta = 1.0;
  PeltLoadTracker tracker(params);
  // L(0)=1, L(1)=1.5, L(1.5)=1.75
  EXPECT_DOUBLE_EQ(tracker.apply_iterative(0.0, 3), 1.75);
  EXPECT_DOUBLE_EQ(tracker.apply_closed_form(0.0, 3), 1.75);
}

}  // namespace
}  // namespace horse::sched
