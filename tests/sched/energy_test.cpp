#include "sched/energy.hpp"

#include <gtest/gtest.h>

#include "core/coalesce.hpp"

namespace horse::sched {
namespace {

TEST(EnergyModelTest, ValidatesParams) {
  EnergyParams params;
  params.c_eff_nf = 0.0;
  EXPECT_THROW(EnergyModel{params}, std::invalid_argument);
  params = {};
  params.v_max = params.v_min / 2;
  EXPECT_THROW(EnergyModel{params}, std::invalid_argument);
  params = {};
  params.max_freq_khz = params.min_freq_khz;
  EXPECT_THROW(EnergyModel{params}, std::invalid_argument);
}

TEST(EnergyModelTest, VoltageInterpolatesAndClamps) {
  EnergyModel model;
  const auto& p = model.params();
  EXPECT_DOUBLE_EQ(model.voltage_at(p.min_freq_khz), p.v_min);
  EXPECT_DOUBLE_EQ(model.voltage_at(p.max_freq_khz), p.v_max);
  EXPECT_DOUBLE_EQ(model.voltage_at(0), p.v_min);            // clamped
  EXPECT_DOUBLE_EQ(model.voltage_at(10 * p.max_freq_khz), p.v_max);
  const auto mid = (p.min_freq_khz + p.max_freq_khz) / 2;
  EXPECT_NEAR(model.voltage_at(mid), (p.v_min + p.v_max) / 2, 1e-9);
}

TEST(EnergyModelTest, PowerIsMonotoneInFrequency) {
  EnergyModel model;
  double prev = 0.0;
  for (std::uint64_t f = 800'000; f <= 2'400'000; f += 200'000) {
    const double power = model.power_at(f);
    EXPECT_GT(power, prev);
    prev = power;
  }
  // Static floor present even at min frequency.
  EXPECT_GT(model.power_at(800'000), model.params().static_watts);
}

TEST(EnergyModelTest, EnergyScalesWithDuration) {
  EnergyModel model;
  const double one_ms = model.energy_joules(2'000'000, util::kMillisecond);
  const double two_ms = model.energy_joules(2'000'000, 2 * util::kMillisecond);
  EXPECT_NEAR(two_ms, 2.0 * one_ms, 1e-12);
}

TEST(EnergyModelTest, TraceEnergyIsStepIntegral) {
  EnergyModel model;
  metrics::TimeSeries trace;
  trace.record(0, 800'000.0);                    // min freq for 1 ms
  trace.record(util::kMillisecond, 2'400'000.0); // max freq for 1 ms
  const double total = model.energy_of_trace(trace, 2 * util::kMillisecond);
  const double expected = model.energy_joules(800'000, util::kMillisecond) +
                          model.energy_joules(2'400'000, util::kMillisecond);
  EXPECT_NEAR(total, expected, 1e-12);
}

TEST(EnergyModelTest, EmptyTraceIsZero) {
  EnergyModel model;
  EXPECT_EQ(model.energy_of_trace(metrics::TimeSeries{}, util::kSecond), 0.0);
}

TEST(EnergyModelTest, CoalescedLoadYieldsIdenticalEnergy) {
  // End-to-end §4.2 safety property: DVFS decisions from a coalesced load
  // equal those from iterative updates, hence so does estimated energy —
  // HORSE cannot change the host's power behaviour.
  RunQueue iterative(0);
  RunQueue coalesced(1);
  iterative.set_load_for_test(200.0);
  coalesced.set_load_for_test(200.0);
  for (int i = 0; i < 36; ++i) {
    iterative.update_load_enqueue();
  }
  const auto pre = core::LoadCoalescer(coalesced.pelt().params()).precompute(36);
  coalesced.apply_precomputed_load(pre.alpha_n, pre.beta_geo_sum);

  DvfsGovernor governor;
  EnergyModel model;
  metrics::TimeSeries trace_iterative;
  metrics::TimeSeries trace_coalesced;
  trace_iterative.record(
      0, static_cast<double>(governor.target_freq_khz(iterative.load())));
  trace_coalesced.record(
      0, static_cast<double>(governor.target_freq_khz(coalesced.load())));
  EXPECT_DOUBLE_EQ(model.energy_of_trace(trace_iterative, util::kSecond),
                   model.energy_of_trace(trace_coalesced, util::kSecond));
}

}  // namespace
}  // namespace horse::sched
