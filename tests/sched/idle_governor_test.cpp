#include "sched/idle_governor.hpp"

#include <gtest/gtest.h>

namespace horse::sched {
namespace {

TEST(IdleGovernorTest, ValidatesConstruction) {
  EXPECT_THROW(IdleGovernor(0), std::invalid_argument);
  EXPECT_THROW(IdleGovernor(1, {}), std::invalid_argument);
  // Out-of-order states rejected.
  std::vector<CState> reversed{{"deep", 100, 100, 1.0}, {"shallow", 1, 1, 2.0}};
  EXPECT_THROW(IdleGovernor(1, reversed), std::invalid_argument);
  IdleGovernor::Params params;
  params.ewma_alpha = 0.0;
  EXPECT_THROW(IdleGovernor(1, default_cstates(), params),
               std::invalid_argument);
}

TEST(IdleGovernorTest, DefaultTableShape) {
  const auto& states = default_cstates();
  ASSERT_EQ(states.size(), 4u);
  EXPECT_EQ(states[0].exit_latency, 0);  // C0-poll wakes instantly
  // Deeper = slower to leave, cheaper to stay.
  for (std::size_t i = 1; i < states.size(); ++i) {
    EXPECT_GT(states[i].exit_latency, states[i - 1].exit_latency);
    EXPECT_LT(states[i].power_watts, states[i - 1].power_watts);
  }
}

TEST(IdleGovernorTest, LongPredictedIdlePicksDeepState) {
  IdleGovernor governor(1);
  for (int i = 0; i < 10; ++i) {
    governor.observe_idle(0, 10 * util::kMillisecond);
  }
  EXPECT_EQ(governor.state(governor.select(0)).name, "C6");
  EXPECT_EQ(governor.wake_penalty(0), 133 * util::kMicrosecond);
}

TEST(IdleGovernorTest, ShortPredictedIdleStaysShallow) {
  IdleGovernor governor(1);
  for (int i = 0; i < 10; ++i) {
    governor.observe_idle(0, 1 * util::kMicrosecond);
  }
  EXPECT_EQ(governor.state(governor.select(0)).name, "C0-poll");
  EXPECT_EQ(governor.wake_penalty(0), 0);
}

TEST(IdleGovernorTest, LatencyCapPinsUllCpuShallow) {
  // The uLL integration: 100 ms gaps between triggers would normally earn
  // C6 and its 133 µs exit — 900x HORSE's ~150 ns resume. The reservation
  // sets a cap so the wake penalty stays at or near zero.
  IdleGovernor governor(2);
  for (int i = 0; i < 10; ++i) {
    governor.observe_idle(0, 100 * util::kMillisecond);
    governor.observe_idle(1, 100 * util::kMillisecond);
  }
  governor.set_latency_cap(1, 500);  // the reserved ull CPU
  EXPECT_EQ(governor.state(governor.select(0)).name, "C6");
  EXPECT_EQ(governor.state(governor.select(1)).name, "C0-poll");
  EXPECT_EQ(governor.wake_penalty(1), 0);
  EXPECT_EQ(governor.latency_cap(1), 500);
}

TEST(IdleGovernorTest, PredictorTracksObservations) {
  IdleGovernor governor(1);
  governor.observe_idle(0, 1000);  // first observation seeds directly
  EXPECT_EQ(governor.predicted_idle(0), 1000);
  governor.observe_idle(0, 2000);
  // EWMA(0.3): 0.3*2000 + 0.7*1000 = 1300.
  EXPECT_EQ(governor.predicted_idle(0), 1300);
  governor.observe_idle(0, -5);  // clamped to 0
  // 0.7 * 1300 = 910 before double->integer truncation.
  EXPECT_NEAR(static_cast<double>(governor.predicted_idle(0)), 910.0, 1.0);
}

TEST(IdleGovernorTest, PerCpuIndependence) {
  IdleGovernor governor(2);
  governor.observe_idle(0, 10 * util::kMillisecond);
  governor.observe_idle(1, 1 * util::kMicrosecond);
  EXPECT_NE(governor.select(0), governor.select(1));
}

TEST(IdleGovernorTest, MidRangePredictionPicksMiddleState) {
  IdleGovernor governor(1);
  governor.observe_idle(0, 50 * util::kMicrosecond);
  // Fits C1E (residency 20 µs) but not C6 (600 µs).
  EXPECT_EQ(governor.state(governor.select(0)).name, "C1E");
}

TEST(IdleGovernorTest, WakePenaltyDominatesHorseResumeWithoutCap) {
  // The quantitative point: C6 exit (133 µs) vs HORSE's ~150 ns fast path
  // — the idle policy, not the scheduler, would set the floor.
  IdleGovernor governor(1);
  for (int i = 0; i < 5; ++i) {
    governor.observe_idle(0, util::kSecond);
  }
  constexpr util::Nanos kHorseResume = 150;
  EXPECT_GT(governor.wake_penalty(0), 500 * kHorseResume);
}

}  // namespace
}  // namespace horse::sched
