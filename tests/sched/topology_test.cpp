#include "sched/topology.hpp"

#include <gtest/gtest.h>

namespace horse::sched {
namespace {

TEST(TopologyTest, RejectsZeroCpus) {
  EXPECT_THROW(CpuTopology{0}, std::invalid_argument);
}

TEST(TopologyTest, QueuesHaveMatchingCpuIds) {
  CpuTopology topology(4);
  EXPECT_EQ(topology.num_cpus(), 4u);
  for (CpuId cpu = 0; cpu < 4; ++cpu) {
    EXPECT_EQ(topology.queue(cpu).cpu(), cpu);
  }
}

TEST(TopologyTest, QueueOutOfRangeThrows) {
  CpuTopology topology(2);
  EXPECT_THROW((void)topology.queue(2), std::out_of_range);
}

TEST(TopologyTest, ReservationMarksQueue) {
  CpuTopology topology(4);
  EXPECT_FALSE(topology.is_reserved(3));
  topology.reserve_for_ull(3);
  EXPECT_TRUE(topology.is_reserved(3));
  EXPECT_EQ(topology.reserved_cpus(), (std::vector<CpuId>{3}));
}

TEST(TopologyTest, LeastLoadedSkipsReserved) {
  CpuTopology topology(3);
  topology.reserve_for_ull(0);
  topology.queue(0).set_load_for_test(0.0);    // reserved, must be skipped
  topology.queue(1).set_load_for_test(100.0);
  topology.queue(2).set_load_for_test(50.0);
  EXPECT_EQ(topology.least_loaded_general(), 2u);
}

TEST(TopologyTest, LeastLoadedPicksMinimum) {
  CpuTopology topology(4);
  topology.queue(0).set_load_for_test(10.0);
  topology.queue(1).set_load_for_test(5.0);
  topology.queue(2).set_load_for_test(20.0);
  topology.queue(3).set_load_for_test(15.0);
  EXPECT_EQ(topology.least_loaded_general(), 1u);
}

TEST(TopologyTest, AllReservedThrows) {
  CpuTopology topology(2);
  topology.reserve_for_ull(0);
  topology.reserve_for_ull(1);
  EXPECT_THROW((void)topology.least_loaded_general(), std::runtime_error);
}

TEST(TopologyTest, CustomPeltParamsPropagate) {
  PeltParams params;
  params.alpha = 0.5;
  params.beta = 2.0;
  CpuTopology topology(2, params);
  EXPECT_DOUBLE_EQ(topology.queue(1).pelt().params().alpha, 0.5);
}

}  // namespace
}  // namespace horse::sched
