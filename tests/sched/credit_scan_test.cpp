#include "sched/credit_scan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

namespace horse::sched::credit_scan {
namespace {

std::vector<std::int64_t> random_sorted(std::mt19937_64& rng, std::size_t n,
                                        std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  std::vector<std::int64_t> values(n);
  for (auto& value : values) value = dist(rng);
  std::sort(values.begin(), values.end());
  return values;
}

TEST(CreditScanTest, BranchlessUpperBoundMatchesStd) {
  std::mt19937_64 rng(42);
  for (std::size_t n : {0u, 1u, 2u, 3u, 7u, 31u, 32u, 33u, 64u, 200u}) {
    for (int trial = 0; trial < 50; ++trial) {
      // Narrow range forces duplicate runs; negatives are legal credits.
      const auto values = random_sorted(rng, n, -50, 50);
      std::uniform_int_distribution<std::int64_t> key_dist(-60, 60);
      const std::int64_t key = key_dist(rng);
      const auto expected = static_cast<std::size_t>(
          std::upper_bound(values.begin(), values.end(), key) -
          values.begin());
      EXPECT_EQ(branchless_upper_bound(values.data(), n, key), expected)
          << "n=" << n << " key=" << key;
    }
  }
}

TEST(CreditScanTest, BranchlessLowerBoundMatchesStd) {
  std::mt19937_64 rng(43);
  for (std::size_t n : {0u, 1u, 2u, 3u, 7u, 31u, 32u, 33u, 64u, 200u}) {
    for (int trial = 0; trial < 50; ++trial) {
      const auto values = random_sorted(rng, n, -50, 50);
      std::uniform_int_distribution<std::int64_t> key_dist(-60, 60);
      const std::int64_t key = key_dist(rng);
      const auto expected = static_cast<std::size_t>(
          std::lower_bound(values.begin(), values.end(), key) -
          values.begin());
      EXPECT_EQ(branchless_lower_bound(values.data(), n, key), expected)
          << "n=" << n << " key=" << key;
    }
  }
}

TEST(CreditScanTest, SimdCountLeMatchesCountIf) {
  // count_le is order-free; feed it unsorted arrays, odd lengths included
  // so every SIMD tail path runs.
  std::mt19937_64 rng(44);
  std::uniform_int_distribution<std::int64_t> dist(-1'000'000, 1'000'000);
  for (std::size_t n = 0; n <= 70; ++n) {
    std::vector<std::int64_t> values(n);
    for (auto& value : values) value = dist(rng);
    const std::int64_t key = dist(rng);
    const auto expected = static_cast<std::size_t>(std::count_if(
        values.begin(), values.end(),
        [key](std::int64_t value) { return value <= key; }));
    EXPECT_EQ(simd_count_le(values.data(), n, key), expected) << "n=" << n;
  }
}

TEST(CreditScanTest, SimdCountLeExtremeKeys) {
  const std::vector<std::int64_t> values{-5, 0, 5, 10, 10, 10, 20};
  EXPECT_EQ(simd_count_le(values.data(), values.size(),
                          std::numeric_limits<std::int64_t>::max()),
            values.size());
  EXPECT_EQ(simd_count_le(values.data(), values.size(),
                          std::numeric_limits<std::int64_t>::min()),
            0u);
  EXPECT_EQ(simd_count_le(values.data(), values.size(), 10), 6u);
}

TEST(CreditScanTest, CreditUpperBoundMatchesStdAcrossCutoff) {
  // Straddle kLinearCutoff so both the SIMD-linear and the branchless
  // halving implementations answer for the same distribution.
  std::mt19937_64 rng(45);
  for (std::size_t n = kLinearCutoff - 2; n <= kLinearCutoff + 2; ++n) {
    for (int trial = 0; trial < 100; ++trial) {
      const auto values = random_sorted(rng, n, -30, 30);
      std::uniform_int_distribution<std::int64_t> key_dist(-40, 40);
      const std::int64_t key = key_dist(rng);
      const auto expected = static_cast<std::size_t>(
          std::upper_bound(values.begin(), values.end(), key) -
          values.begin());
      EXPECT_EQ(credit_upper_bound(values.data(), n, key), expected)
          << "n=" << n << " key=" << key;
    }
  }
}

TEST(CreditScanTest, AllEqualArray) {
  const std::vector<std::int64_t> values(40, 7);
  EXPECT_EQ(branchless_upper_bound(values.data(), values.size(),
                                   std::int64_t{7}),
            values.size());
  EXPECT_EQ(branchless_lower_bound(values.data(), values.size(),
                                   std::int64_t{7}),
            0u);
  EXPECT_EQ(branchless_upper_bound(values.data(), values.size(),
                                   std::int64_t{6}),
            0u);
  EXPECT_EQ(branchless_lower_bound(values.data(), values.size(),
                                   std::int64_t{8}),
            values.size());
  EXPECT_EQ(credit_upper_bound(values.data(), values.size(), 7),
            values.size());
}

TEST(CreditScanTest, PrefetchIsSafeAnywhere) {
  // Prefetch must never fault, even on junk addresses (it is a hint).
  int local = 0;
  prefetch(&local);
  prefetch(nullptr);
}

}  // namespace
}  // namespace horse::sched::credit_scan
