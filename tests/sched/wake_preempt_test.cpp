#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sched/credit2.hpp"

namespace horse::sched {
namespace {

class WakePreemptTest : public ::testing::Test {
 protected:
  WakePreemptTest() : topology_(4), scheduler_(topology_) {}

  Vcpu& make_vcpu(Credit credit, std::uint8_t priority = 0) {
    auto vcpu = std::make_unique<Vcpu>();
    vcpu->credit = credit;
    vcpu->priority = priority;
    storage_.push_back(std::move(vcpu));
    return *storage_.back();
  }

  // Declared before the topology so it is destroyed AFTER it: wake() and
  // enqueue() leave vCPUs linked into the topology's run queues, and the
  // queue destructors unlink every node — which must still be alive
  // (use-after-free otherwise; caught by the asan-ubsan preset).
  std::vector<std::unique_ptr<Vcpu>> storage_;
  CpuTopology topology_;
  Credit2Scheduler scheduler_;
};

TEST_F(WakePreemptTest, HigherPriorityAlwaysPreempts) {
  Vcpu& running = make_vcpu(0);  // best possible credit
  Vcpu& merge_thread = make_vcpu(1'000'000'000, Vcpu::kBoostPriority);
  EXPECT_TRUE(scheduler_.should_preempt(running, merge_thread));
  // Never the other way around.
  EXPECT_FALSE(scheduler_.should_preempt(merge_thread, running));
}

TEST_F(WakePreemptTest, SamePriorityNeedsCreditMargin) {
  const Credit resistance = scheduler_.params().preemption_resistance;
  Vcpu& running = make_vcpu(10 * resistance);
  Vcpu& slightly_better = make_vcpu(10 * resistance - resistance / 2);
  Vcpu& much_better = make_vcpu(10 * resistance - 2 * resistance);
  EXPECT_FALSE(scheduler_.should_preempt(running, slightly_better));
  EXPECT_TRUE(scheduler_.should_preempt(running, much_better));
}

TEST_F(WakePreemptTest, EqualCreditsNoPreemption) {
  Vcpu& running = make_vcpu(100);
  Vcpu& twin = make_vcpu(100);
  EXPECT_FALSE(scheduler_.should_preempt(running, twin));
}

TEST_F(WakePreemptTest, WakePrefersAffinity) {
  Vcpu& vcpu = make_vcpu(50);
  vcpu.last_cpu = 2;
  const auto result = scheduler_.wake(vcpu);
  EXPECT_EQ(result.cpu, 2u);
  EXPECT_EQ(topology_.queue(2).size(), 1u);
}

TEST_F(WakePreemptTest, WakeAbandonsOverloadedAffinity) {
  // Stack 3 vCPUs on cpu 2; a waking vCPU with last_cpu=2 should go
  // elsewhere (empty queues exist).
  for (int i = 0; i < 3; ++i) {
    scheduler_.enqueue(make_vcpu(10 * (i + 1)), 2);
  }
  Vcpu& woken = make_vcpu(5);
  woken.last_cpu = 2;
  const auto result = scheduler_.wake(woken);
  EXPECT_NE(result.cpu, 2u);
}

TEST_F(WakePreemptTest, WakeAvoidsReservedAffinityForNormalVcpus) {
  topology_.reserve_for_ull(2);
  Vcpu& vcpu = make_vcpu(50);
  vcpu.last_cpu = 2;  // stale affinity to a now-reserved queue
  const auto result = scheduler_.wake(vcpu);
  EXPECT_NE(result.cpu, 2u);
  EXPECT_FALSE(topology_.is_reserved(result.cpu));
}

TEST_F(WakePreemptTest, WakeReportsPreemptionAgainstRunning) {
  Vcpu& running = make_vcpu(1'000'000'000);
  Vcpu& urgent = make_vcpu(0);
  urgent.last_cpu = 1;
  const auto result = scheduler_.wake(urgent, &running);
  EXPECT_TRUE(result.preempt);

  Vcpu& lazy = make_vcpu(2'000'000'000);
  lazy.last_cpu = 1;
  const auto no_preempt = scheduler_.wake(lazy, &running);
  EXPECT_FALSE(no_preempt.preempt);
}

TEST_F(WakePreemptTest, ShortFunctionFirstBypassesResistance) {
  // SFS knob (PR 10): with the knob on, a uLL candidate preempts a
  // non-uLL runner regardless of the credit margin; uLL-vs-uLL and
  // non-uLL-vs-anything keep the normal resistance rule.
  Credit2Params params;
  params.short_function_first = true;
  Credit2Scheduler sfs(topology_, params);

  Vcpu& long_runner = make_vcpu(0);  // best possible credit
  Vcpu& ull = make_vcpu(1'000'000);
  ull.ull = true;
  EXPECT_TRUE(sfs.should_preempt(long_runner, ull));
  EXPECT_FALSE(scheduler_.should_preempt(long_runner, ull));  // knob off

  Vcpu& ull_runner = make_vcpu(0);
  ull_runner.ull = true;
  EXPECT_FALSE(sfs.should_preempt(ull_runner, ull));  // uLL vs uLL: normal
  Vcpu& plain = make_vcpu(1'000'000);
  EXPECT_FALSE(sfs.should_preempt(long_runner, plain));  // non-uLL: normal
}

TEST_F(WakePreemptTest, ShortFunctionFirstNeverOutranksPriority) {
  Credit2Params params;
  params.short_function_first = true;
  Credit2Scheduler sfs(topology_, params);
  Vcpu& merge = make_vcpu(1'000'000'000, Vcpu::kBoostPriority);
  Vcpu& ull = make_vcpu(0);
  ull.ull = true;
  // A boosted merge thread is still unpreemptable by an SFS candidate.
  EXPECT_FALSE(sfs.should_preempt(merge, ull));
}

TEST_F(WakePreemptTest, DispatchDirectMarksRunningWithoutQueueing) {
  Vcpu& winner = make_vcpu(500);
  scheduler_.dispatch_direct(winner, 2);
  EXPECT_EQ(winner.state, VcpuState::kRunning);
  EXPECT_EQ(winner.last_cpu, 2u);
  // The point of the direct path: the winner never touched a run queue
  // (enqueue-then-schedule would let a burned-down victim win it back).
  EXPECT_EQ(topology_.queue(2).size(), 0u);
}

TEST_F(WakePreemptTest, MergeThreadModelPreemptsEverything) {
  // §4.1.3's merge threads: boosted priority wakes preempt any normal
  // vCPU no matter how favourable its credit.
  Vcpu& long_running = make_vcpu(-1'000'000, 0);  // deeply "entitled"
  Vcpu& merge = make_vcpu(0, Vcpu::kBoostPriority);
  merge.last_cpu = 0;
  const auto result = scheduler_.wake(merge, &long_running);
  EXPECT_TRUE(result.preempt);
}

}  // namespace
}  // namespace horse::sched
