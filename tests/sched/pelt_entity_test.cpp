#include "sched/pelt_entity.hpp"

#include <gtest/gtest.h>

namespace horse::sched {
namespace {

TEST(EntityLoadTest, StartsAtZero) {
  EntityLoad entity;
  EXPECT_EQ(entity.load_avg(), 0.0);
}

TEST(EntityLoadTest, AlwaysRunningConvergesTo1024) {
  EntityLoad entity;
  util::Nanos now = 0;
  for (int i = 0; i < 2000; ++i) {
    now += kPeltPeriod;
    entity.update_running(now, kPeltPeriod);
  }
  EXPECT_NEAR(entity.load_avg(), 1024.0, 1.0);
}

TEST(EntityLoadTest, HalfTimeRunnableConvergesToHalf) {
  // Alternate 1 period running, 1 period idle: average utilisation 50%.
  EntityLoad entity;
  util::Nanos now = 0;
  for (int i = 0; i < 4000; ++i) {
    now += kPeltPeriod;
    if (i % 2 == 0) {
      entity.update_running(now, kPeltPeriod);
    } else {
      entity.update_idle(now);
    }
  }
  // The duty-cycled fixed point: L = a(aL + b) => L = ab/(1-a^2) ≈ 506.
  const PeltParams params;
  const double expected =
      params.alpha * params.beta / (1.0 - params.alpha * params.alpha);
  EXPECT_NEAR(entity.load_avg(), expected, 2.0);
}

TEST(EntityLoadTest, IdleDecayHalvesEvery32Periods) {
  EntityLoad entity;
  util::Nanos now = 0;
  for (int i = 0; i < 2000; ++i) {
    now += kPeltPeriod;
    entity.update_running(now, kPeltPeriod);
  }
  const double peak = entity.load_avg();
  entity.update_idle(now + 32 * kPeltPeriod);
  EXPECT_NEAR(entity.load_avg(), peak / 2.0, 1.0);
}

TEST(EntityLoadTest, PartialPeriodContributesFractionally) {
  EntityLoad full;
  EntityLoad half;
  full.update_running(kPeltPeriod, kPeltPeriod);
  half.update_running(kPeltPeriod, kPeltPeriod / 2);
  EXPECT_NEAR(half.load_avg(), full.load_avg() / 2.0, 1e-9);
}

TEST(EntityLoadTest, ZeroDurationOnlyDecays) {
  EntityLoad entity;
  entity.update_running(kPeltPeriod, kPeltPeriod);
  const double before = entity.load_avg();
  entity.update_running(40 * kPeltPeriod, 0);
  EXPECT_LT(entity.load_avg(), before);
}

TEST(EntityLoadTest, MatchesQueueLevelClosedForm) {
  // n consecutive full running periods from zero must equal the
  // queue-level tracker's closed form for n applications.
  EntityLoad entity;
  PeltLoadTracker tracker;
  util::Nanos now = 0;
  const int n = 36;
  for (int i = 0; i < n; ++i) {
    now += kPeltPeriod;
    entity.update_running(now, kPeltPeriod);
  }
  EXPECT_NEAR(entity.load_avg(), tracker.apply_closed_form(0.0, n), 1e-6);
}

TEST(EntityQueueLoadTest, AttachDetachMaintainsSum) {
  EntityQueueLoad queue;
  EntityLoad a;
  EntityLoad b;
  a.update_running(kPeltPeriod, kPeltPeriod);
  b.update_running(2 * kPeltPeriod, 2 * kPeltPeriod);
  queue.attach(a);
  queue.attach(b);
  EXPECT_EQ(queue.entities(), 2u);
  EXPECT_NEAR(queue.total(), a.load_avg() + b.load_avg(), 1e-12);
  queue.detach(a);
  EXPECT_EQ(queue.entities(), 1u);
  EXPECT_NEAR(queue.total(), b.load_avg(), 1e-12);
}

TEST(EntityQueueLoadTest, MigrationMovesLoadBetweenQueues) {
  // The point of per-entity tracking: a migrated vCPU carries its load.
  EntityQueueLoad source;
  EntityQueueLoad target;
  EntityLoad vcpu;
  vcpu.update_running(10 * kPeltPeriod, 10 * kPeltPeriod);
  source.attach(vcpu);
  const double load = vcpu.load_avg();

  source.detach(vcpu);
  target.attach(vcpu);
  EXPECT_NEAR(source.total(), 0.0, 1e-12);
  EXPECT_NEAR(target.total(), load, 1e-12);
}

TEST(EntityQueueLoadTest, DetachClampsAtZero) {
  EntityQueueLoad queue;
  EntityLoad stale;
  stale.update_running(kPeltPeriod, kPeltPeriod);
  EntityLoad fresh = stale;
  queue.attach(fresh);
  // Entity decayed after attach; detaching the newer (smaller) value must
  // not drive the sum negative.
  stale.update_idle(100 * kPeltPeriod);
  queue.detach(fresh);
  EXPECT_GE(queue.total(), 0.0);
}

}  // namespace
}  // namespace horse::sched
