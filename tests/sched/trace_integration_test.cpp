// Scheduler + tracer integration: decisions made by Credit2Scheduler show
// up as trace events, including through the virtual-time executor.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sched/credit2.hpp"
#include "sim/cpu_executor.hpp"
#include "sim/simulation.hpp"

namespace horse::sched {
namespace {

TEST(TraceIntegrationTest, SchedulerEmitsDispatchAndRequeue) {
  CpuTopology topology(2);
  Credit2Scheduler scheduler(topology);
  SchedTrace trace(64);
  scheduler.set_trace(&trace);

  Vcpu vcpu;
  vcpu.id = 7;
  vcpu.sandbox = 3;
  vcpu.credit = 100;
  scheduler.enqueue(vcpu, 0);
  Vcpu* running = scheduler.schedule(0);
  ASSERT_EQ(running, &vcpu);
  scheduler.charge_and_requeue(vcpu, 50, /*still_runnable=*/true);

  EXPECT_EQ(trace.count(TraceEvent::kDispatch), 1u);
  EXPECT_EQ(trace.count(TraceEvent::kRequeue), 1u);
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].vcpu, 7u);
  EXPECT_EQ(events[0].sandbox, 3u);
  EXPECT_LT(events[0].time, events[1].time);  // logical sequence advances
  scheduler.dequeue(vcpu);
}

TEST(TraceIntegrationTest, CreditResetTraced) {
  CpuTopology topology(1);
  Credit2Scheduler scheduler(topology);
  SchedTrace trace(16);
  scheduler.set_trace(&trace);
  Vcpu exhausted;
  exhausted.credit = 0;
  scheduler.enqueue(exhausted, 0);
  (void)scheduler.schedule(0);
  EXPECT_EQ(trace.count(TraceEvent::kCreditReset), 1u);
}

TEST(TraceIntegrationTest, ClockSourceStampsEvents) {
  CpuTopology topology(1);
  Credit2Scheduler scheduler(topology);
  SchedTrace trace(16);
  util::Nanos fake_now = 12345;
  scheduler.set_trace(&trace, [&fake_now] { return fake_now; });
  Vcpu vcpu;
  vcpu.credit = 1;
  scheduler.enqueue(vcpu, 0);
  (void)scheduler.schedule(0);
  const auto events = trace.snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().time, 12345);
  scheduler.charge_and_requeue(vcpu, 1, false);
}

TEST(TraceIntegrationTest, VirtualTimeExecutorStampsSimClock) {
  sim::Simulation sim;
  CpuTopology topology(2);
  Credit2Scheduler scheduler(topology);
  SchedTrace trace(256);
  scheduler.set_trace(&trace, [&sim] { return sim.now(); });
  sim::CpuExecutor executor(sim, scheduler);

  Vcpu vcpu;
  vcpu.credit = 1'000'000'000;
  const util::Nanos slice = scheduler.params().default_slice;
  executor.submit(vcpu, 0, 2 * slice + 10, [](Vcpu&) {});
  sim.run();

  // 3 dispatches (2 full slices + remainder), 2 requeues.
  EXPECT_EQ(trace.count(TraceEvent::kDispatch), 3u);
  EXPECT_EQ(trace.count(TraceEvent::kRequeue), 2u);
  const auto events = trace.snapshot();
  // Dispatch timestamps fall on virtual slice boundaries.
  EXPECT_EQ(events[0].time, 0);
  util::Nanos prev = -1;
  for (const auto& event : events) {
    EXPECT_GE(event.time, prev);
    prev = event.time;
  }
}

TEST(TraceIntegrationTest, NoTracerMeansNoOverheadPathCrash) {
  CpuTopology topology(1);
  Credit2Scheduler scheduler(topology);  // no tracer attached
  Vcpu vcpu;
  vcpu.credit = 10;
  scheduler.enqueue(vcpu, 0);
  EXPECT_NE(scheduler.schedule(0), nullptr);
  scheduler.charge_and_requeue(vcpu, 5, false);
}

}  // namespace
}  // namespace horse::sched
