#include "sched/run_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace horse::sched {
namespace {

std::vector<Credit> credits_of(RunQueue& queue) {
  std::vector<Credit> out;
  for (const Vcpu& vcpu : queue.list()) {
    out.push_back(vcpu.credit);
  }
  return out;
}

TEST(RunQueueTest, StartsEmptyAndSorted) {
  RunQueue queue(0);
  EXPECT_TRUE(queue.empty());
  EXPECT_TRUE(queue.is_sorted());
  EXPECT_EQ(queue.pop_front(), nullptr);
  EXPECT_EQ(queue.peek_front(), nullptr);
}

TEST(RunQueueTest, InsertSortedKeepsAscendingCredit) {
  RunQueue queue(0);
  Vcpu a, b, c;
  a.credit = 30;
  b.credit = 10;
  c.credit = 20;
  queue.insert_sorted(a);
  queue.insert_sorted(b);
  queue.insert_sorted(c);
  EXPECT_EQ(credits_of(queue), (std::vector<Credit>{10, 20, 30}));
  EXPECT_TRUE(queue.is_sorted());
}

TEST(RunQueueTest, InsertSortedEqualCreditsGoAfterExisting) {
  RunQueue queue(0);
  Vcpu first, second;
  first.credit = 10;
  first.id = 1;
  second.credit = 10;
  second.id = 2;
  queue.insert_sorted(first);
  queue.insert_sorted(second);
  // FIFO among equals: the earlier insert stays in front.
  EXPECT_EQ(queue.peek_front()->id, 1u);
}

TEST(RunQueueTest, InsertSetsRunnableStateAndCpu) {
  RunQueue queue(3);
  Vcpu vcpu;
  queue.insert_sorted(vcpu);
  EXPECT_EQ(vcpu.state, VcpuState::kRunnable);
  EXPECT_EQ(vcpu.last_cpu, 3u);
}

TEST(RunQueueTest, PopFrontReturnsLowestCredit) {
  RunQueue queue(0);
  Vcpu a, b;
  a.credit = 5;
  b.credit = 1;
  queue.insert_sorted(a);
  queue.insert_sorted(b);
  EXPECT_EQ(queue.pop_front(), &b);
  EXPECT_EQ(queue.pop_front(), &a);
  EXPECT_EQ(queue.pop_front(), nullptr);
}

TEST(RunQueueTest, RemoveSpecificVcpu) {
  RunQueue queue(0);
  Vcpu a, b, c;
  a.credit = 1;
  b.credit = 2;
  c.credit = 3;
  queue.insert_sorted(a);
  queue.insert_sorted(b);
  queue.insert_sorted(c);
  queue.remove(b);
  EXPECT_EQ(credits_of(queue), (std::vector<Credit>{1, 3}));
}

TEST(RunQueueTest, VersionBumpsOnEveryMutation) {
  RunQueue queue(0);
  Vcpu a;
  const auto v0 = queue.version();
  queue.insert_sorted(a);
  const auto v1 = queue.version();
  EXPECT_GT(v1, v0);
  queue.remove(a);
  EXPECT_GT(queue.version(), v1);
}

TEST(RunQueueTest, LoadUpdateEnqueueAppliesAffineMap) {
  RunQueue queue(0);
  const auto& params = queue.pelt().params();
  queue.set_load_for_test(100.0);
  const double updated = queue.update_load_enqueue();
  EXPECT_DOUBLE_EQ(updated, params.alpha * 100.0 + params.beta);
  EXPECT_DOUBLE_EQ(queue.load(), updated);
}

TEST(RunQueueTest, CoalescedMatchesIterative) {
  RunQueue iterative(0);
  RunQueue coalesced(1);
  iterative.set_load_for_test(50.0);
  coalesced.set_load_for_test(50.0);
  for (int i = 0; i < 16; ++i) {
    iterative.update_load_enqueue();
  }
  coalesced.update_load_coalesced(16);
  EXPECT_NEAR(iterative.load(), coalesced.load(), 1e-9);
}

TEST(RunQueueTest, ApplyPrecomputedLoadMatchesClosedForm) {
  RunQueue queue(0);
  queue.set_load_for_test(10.0);
  const auto& params = queue.pelt().params();
  const double alpha_n = params.alpha * params.alpha;  // n = 2
  const double beta_geo = params.beta * (1.0 + params.alpha);
  const double result = queue.apply_precomputed_load(alpha_n, beta_geo);
  EXPECT_NEAR(result, queue.pelt().apply_iterative(10.0, 2), 1e-9);
}

TEST(RunQueueTest, DecayReducesLoad) {
  RunQueue queue(0);
  queue.set_load_for_test(1000.0);
  queue.decay_load(32);
  // PELT halves every 32 periods.
  EXPECT_NEAR(queue.load(), 500.0, 0.5);
}

TEST(RunQueueTest, RandomInsertionsStaySorted) {
  // Storage before the queue: ~RunQueue unlinks every node still
  // enqueued, so the nodes must outlive it.
  std::vector<std::unique_ptr<Vcpu>> storage;
  RunQueue queue(0);
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 200; ++i) {
    auto vcpu = std::make_unique<Vcpu>();
    vcpu->credit = static_cast<Credit>(rng.bounded(1000));
    queue.insert_sorted(*vcpu);
    storage.push_back(std::move(vcpu));
  }
  EXPECT_TRUE(queue.is_sorted());
  EXPECT_EQ(queue.size(), 200u);
}

// ---------------------------------------------------------------------------
// Mutation journal: every structural mutator records a QueueDelta keyed by
// the version it produced, so 𝒫²𝒮ℳ repair can replay the gap between a
// stale index and the live queue.
// ---------------------------------------------------------------------------

TEST(RunQueueJournalTest, InsertSortedJournalsPositionCreditHook) {
  RunQueue queue(0);
  Vcpu a, b, c;
  a.credit = 20;
  b.credit = 10;
  c.credit = 30;
  queue.insert_sorted(a);  // -> position 0, version 1
  queue.insert_sorted(b);  // -> position 0 (before a), version 2
  queue.insert_sorted(c);  // -> position 2 (tail), version 3
  EXPECT_EQ(queue.version(), 3u);

  const QueueDelta* d1 = queue.delta_for_version(1);
  ASSERT_NE(d1, nullptr);
  EXPECT_EQ(d1->kind, QueueDelta::Kind::kInsert);
  EXPECT_EQ(d1->position, 0);
  EXPECT_EQ(d1->credit, 20);
  EXPECT_EQ(d1->hook, &a.hook);

  const QueueDelta* d2 = queue.delta_for_version(2);
  ASSERT_NE(d2, nullptr);
  EXPECT_EQ(d2->position, 0);
  EXPECT_EQ(d2->credit, 10);
  EXPECT_EQ(d2->hook, &b.hook);

  const QueueDelta* d3 = queue.delta_for_version(3);
  ASSERT_NE(d3, nullptr);
  EXPECT_EQ(d3->position, 2);
  EXPECT_EQ(d3->hook, &c.hook);
}

TEST(RunQueueJournalTest, EqualCreditInsertJournalsAfterExisting) {
  RunQueue queue(0);
  Vcpu first, second;
  first.credit = 10;
  second.credit = 10;
  queue.insert_sorted(first);
  queue.insert_sorted(second);
  // FIFO among equals: the new element links after the existing one, and
  // the journalled position reflects that.
  const QueueDelta* delta = queue.delta_for_version(2);
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->position, 1);
  EXPECT_EQ(delta->hook, &second.hook);
}

TEST(RunQueueJournalTest, PushBackJournalsTailPosition) {
  RunQueue queue(0);
  Vcpu a, b;
  a.credit = 1;
  b.credit = 2;
  queue.push_back(a);
  queue.push_back(b);
  const QueueDelta* d1 = queue.delta_for_version(1);
  const QueueDelta* d2 = queue.delta_for_version(2);
  ASSERT_NE(d1, nullptr);
  ASSERT_NE(d2, nullptr);
  EXPECT_EQ(d1->position, 0);
  EXPECT_EQ(d2->position, 1);
  EXPECT_EQ(d2->kind, QueueDelta::Kind::kInsert);
}

TEST(RunQueueJournalTest, RemoveJournalsUnknownPositionWithHookIdentity) {
  RunQueue queue(0);
  Vcpu a, b;
  a.credit = 1;
  b.credit = 2;
  queue.insert_sorted(a);
  queue.insert_sorted(b);
  queue.remove(a);
  const QueueDelta* delta = queue.delta_for_version(queue.version());
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->kind, QueueDelta::Kind::kRemove);
  // remove() does not walk the queue to find the index; the repairer
  // resolves it from (credit, hook).
  EXPECT_EQ(delta->position, QueueDelta::kUnknownPosition);
  EXPECT_EQ(delta->credit, 1);
  EXPECT_EQ(delta->hook, &a.hook);
}

TEST(RunQueueJournalTest, PopFrontJournalsHeadRemoval) {
  RunQueue queue(0);
  Vcpu a, b;
  a.credit = 1;
  b.credit = 2;
  queue.insert_sorted(a);
  queue.insert_sorted(b);
  EXPECT_EQ(queue.pop_front(), &a);
  const QueueDelta* delta = queue.delta_for_version(queue.version());
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->kind, QueueDelta::Kind::kRemove);
  EXPECT_EQ(delta->position, 0);
  EXPECT_EQ(delta->hook, &a.hook);
}

TEST(RunQueueJournalTest, RingOverwritesEntriesOlderThanCapacity) {
  // Storage outlives the queue: the queue's destructor unlinks the hooks.
  std::vector<std::unique_ptr<Vcpu>> storage;
  RunQueue queue(0);
  const std::size_t total = RunQueue::kJournalCapacity + 5;
  for (std::size_t i = 0; i < total; ++i) {
    auto vcpu = std::make_unique<Vcpu>();
    vcpu->credit = static_cast<Credit>(i);
    queue.push_back(*vcpu);
    storage.push_back(std::move(vcpu));
  }
  // The first 5 versions were overwritten by the wrap; the most recent
  // kJournalCapacity versions are all still resolvable.
  for (std::uint64_t v = 1; v <= 5; ++v) {
    EXPECT_EQ(queue.delta_for_version(v), nullptr) << "version " << v;
  }
  for (std::uint64_t v = 6; v <= total; ++v) {
    ASSERT_NE(queue.delta_for_version(v), nullptr) << "version " << v;
    EXPECT_EQ(queue.delta_for_version(v)->position,
              static_cast<std::int32_t>(v - 1));
  }
}

TEST(RunQueueJournalTest, BumpVersionLeavesResolvableGap) {
  RunQueue queue(0);
  Vcpu a;
  a.credit = 5;
  queue.insert_sorted(a);
  queue.bump_version();  // foreign mutation: journalled by nobody
  EXPECT_EQ(queue.version(), 2u);
  EXPECT_NE(queue.delta_for_version(1), nullptr);
  // The gap reads as "entry missing", which forces the rebuild fallback.
  EXPECT_EQ(queue.delta_for_version(2), nullptr);
}

TEST(RunQueueJournalTest, StagedBatchPublishesAtomically) {
  RunQueue queue(0);
  Vcpu a, b, c;
  a.credit = 1;
  b.credit = 2;
  c.credit = 3;
  // The 𝒫²𝒮ℳ merge path: stage every spliced node with plain stores,
  // publish the whole batch with one release fetch_add.
  queue.stage_delta(0, QueueDelta::Kind::kInsert, 0, a.credit, &a.hook);
  queue.stage_delta(1, QueueDelta::Kind::kInsert, 1, b.credit, &b.hook);
  queue.stage_delta(2, QueueDelta::Kind::kInsert, 2, c.credit, &c.hook);
  EXPECT_EQ(queue.version(), 0u);  // nothing visible before publish
  queue.publish_staged_deltas(3);
  EXPECT_EQ(queue.version(), 3u);
  for (std::uint64_t v = 1; v <= 3; ++v) {
    const QueueDelta* delta = queue.delta_for_version(v);
    ASSERT_NE(delta, nullptr) << "version " << v;
    EXPECT_EQ(delta->position, static_cast<std::int32_t>(v - 1));
    EXPECT_EQ(delta->credit, static_cast<Credit>(v));
  }
}

}  // namespace
}  // namespace horse::sched
