#include "sched/run_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace horse::sched {
namespace {

std::vector<Credit> credits_of(RunQueue& queue) {
  std::vector<Credit> out;
  for (const Vcpu& vcpu : queue.list()) {
    out.push_back(vcpu.credit);
  }
  return out;
}

TEST(RunQueueTest, StartsEmptyAndSorted) {
  RunQueue queue(0);
  EXPECT_TRUE(queue.empty());
  EXPECT_TRUE(queue.is_sorted());
  EXPECT_EQ(queue.pop_front(), nullptr);
  EXPECT_EQ(queue.peek_front(), nullptr);
}

TEST(RunQueueTest, InsertSortedKeepsAscendingCredit) {
  RunQueue queue(0);
  Vcpu a, b, c;
  a.credit = 30;
  b.credit = 10;
  c.credit = 20;
  queue.insert_sorted(a);
  queue.insert_sorted(b);
  queue.insert_sorted(c);
  EXPECT_EQ(credits_of(queue), (std::vector<Credit>{10, 20, 30}));
  EXPECT_TRUE(queue.is_sorted());
}

TEST(RunQueueTest, InsertSortedEqualCreditsGoAfterExisting) {
  RunQueue queue(0);
  Vcpu first, second;
  first.credit = 10;
  first.id = 1;
  second.credit = 10;
  second.id = 2;
  queue.insert_sorted(first);
  queue.insert_sorted(second);
  // FIFO among equals: the earlier insert stays in front.
  EXPECT_EQ(queue.peek_front()->id, 1u);
}

TEST(RunQueueTest, InsertSetsRunnableStateAndCpu) {
  RunQueue queue(3);
  Vcpu vcpu;
  queue.insert_sorted(vcpu);
  EXPECT_EQ(vcpu.state, VcpuState::kRunnable);
  EXPECT_EQ(vcpu.last_cpu, 3u);
}

TEST(RunQueueTest, PopFrontReturnsLowestCredit) {
  RunQueue queue(0);
  Vcpu a, b;
  a.credit = 5;
  b.credit = 1;
  queue.insert_sorted(a);
  queue.insert_sorted(b);
  EXPECT_EQ(queue.pop_front(), &b);
  EXPECT_EQ(queue.pop_front(), &a);
  EXPECT_EQ(queue.pop_front(), nullptr);
}

TEST(RunQueueTest, RemoveSpecificVcpu) {
  RunQueue queue(0);
  Vcpu a, b, c;
  a.credit = 1;
  b.credit = 2;
  c.credit = 3;
  queue.insert_sorted(a);
  queue.insert_sorted(b);
  queue.insert_sorted(c);
  queue.remove(b);
  EXPECT_EQ(credits_of(queue), (std::vector<Credit>{1, 3}));
}

TEST(RunQueueTest, VersionBumpsOnEveryMutation) {
  RunQueue queue(0);
  Vcpu a;
  const auto v0 = queue.version();
  queue.insert_sorted(a);
  const auto v1 = queue.version();
  EXPECT_GT(v1, v0);
  queue.remove(a);
  EXPECT_GT(queue.version(), v1);
}

TEST(RunQueueTest, LoadUpdateEnqueueAppliesAffineMap) {
  RunQueue queue(0);
  const auto& params = queue.pelt().params();
  queue.set_load_for_test(100.0);
  const double updated = queue.update_load_enqueue();
  EXPECT_DOUBLE_EQ(updated, params.alpha * 100.0 + params.beta);
  EXPECT_DOUBLE_EQ(queue.load(), updated);
}

TEST(RunQueueTest, CoalescedMatchesIterative) {
  RunQueue iterative(0);
  RunQueue coalesced(1);
  iterative.set_load_for_test(50.0);
  coalesced.set_load_for_test(50.0);
  for (int i = 0; i < 16; ++i) {
    iterative.update_load_enqueue();
  }
  coalesced.update_load_coalesced(16);
  EXPECT_NEAR(iterative.load(), coalesced.load(), 1e-9);
}

TEST(RunQueueTest, ApplyPrecomputedLoadMatchesClosedForm) {
  RunQueue queue(0);
  queue.set_load_for_test(10.0);
  const auto& params = queue.pelt().params();
  const double alpha_n = params.alpha * params.alpha;  // n = 2
  const double beta_geo = params.beta * (1.0 + params.alpha);
  const double result = queue.apply_precomputed_load(alpha_n, beta_geo);
  EXPECT_NEAR(result, queue.pelt().apply_iterative(10.0, 2), 1e-9);
}

TEST(RunQueueTest, DecayReducesLoad) {
  RunQueue queue(0);
  queue.set_load_for_test(1000.0);
  queue.decay_load(32);
  // PELT halves every 32 periods.
  EXPECT_NEAR(queue.load(), 500.0, 0.5);
}

TEST(RunQueueTest, RandomInsertionsStaySorted) {
  // Storage before the queue: ~RunQueue unlinks every node still
  // enqueued, so the nodes must outlive it.
  std::vector<std::unique_ptr<Vcpu>> storage;
  RunQueue queue(0);
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 200; ++i) {
    auto vcpu = std::make_unique<Vcpu>();
    vcpu->credit = static_cast<Credit>(rng.bounded(1000));
    queue.insert_sorted(*vcpu);
    storage.push_back(std::move(vcpu));
  }
  EXPECT_TRUE(queue.is_sorted());
  EXPECT_EQ(queue.size(), 200u);
}

}  // namespace
}  // namespace horse::sched
