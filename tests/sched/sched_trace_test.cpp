#include "sched/sched_trace.hpp"

#include <gtest/gtest.h>

namespace horse::sched {
namespace {

TEST(SchedTraceTest, RecordsInOrder) {
  SchedTrace trace(16);
  trace.record(10, TraceEvent::kDispatch, 0, 1);
  trace.record(20, TraceEvent::kRequeue, 0, 1);
  trace.record(30, TraceEvent::kDispatch, 1, 2);
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].time, 10);
  EXPECT_EQ(events[1].event, TraceEvent::kRequeue);
  EXPECT_EQ(events[2].cpu, 1u);
  EXPECT_EQ(trace.total(), 3u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(SchedTraceTest, CountersPerEvent) {
  SchedTrace trace(8);
  trace.record(1, TraceEvent::kDispatch, 0);
  trace.record(2, TraceEvent::kDispatch, 0);
  trace.record(3, TraceEvent::kPreempt, 0);
  EXPECT_EQ(trace.count(TraceEvent::kDispatch), 2u);
  EXPECT_EQ(trace.count(TraceEvent::kPreempt), 1u);
  EXPECT_EQ(trace.count(TraceEvent::kMigrate), 0u);
}

TEST(SchedTraceTest, RingWrapsKeepingNewest) {
  SchedTrace trace(4);
  for (util::Nanos t = 1; t <= 10; ++t) {
    trace.record(t, TraceEvent::kDispatch, 0);
  }
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().time, 7);  // oldest surviving
  EXPECT_EQ(events.back().time, 10);
  EXPECT_EQ(trace.total(), 10u);
  EXPECT_EQ(trace.dropped(), 6u);
}

TEST(SchedTraceTest, ZeroCapacityClampsToOne) {
  SchedTrace trace(0);
  EXPECT_EQ(trace.capacity(), 1u);
  trace.record(1, TraceEvent::kMigrate, 2);
  trace.record(2, TraceEvent::kMigrate, 3);
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cpu, 3u);
}

TEST(SchedTraceTest, ClearResetsEverything) {
  SchedTrace trace(4);
  trace.record(1, TraceEvent::kCreditReset, 0);
  trace.clear();
  EXPECT_EQ(trace.total(), 0u);
  EXPECT_EQ(trace.count(TraceEvent::kCreditReset), 0u);
  EXPECT_TRUE(trace.snapshot().empty());
}

TEST(SchedTraceTest, EventNames) {
  EXPECT_EQ(to_string(TraceEvent::kDispatch), "dispatch");
  EXPECT_EQ(to_string(TraceEvent::kResumeMerge), "resume-merge");
  EXPECT_EQ(to_string(TraceEvent::kCreditReset), "credit-reset");
}

}  // namespace
}  // namespace horse::sched
