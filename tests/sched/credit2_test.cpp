#include "sched/credit2.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace horse::sched {
namespace {

class Credit2Test : public ::testing::Test {
 protected:
  Credit2Test() : topology_(3), scheduler_(topology_) {}

  Vcpu& make_vcpu(Credit credit, std::uint32_t weight = 256) {
    auto vcpu = std::make_unique<Vcpu>();
    vcpu->id = static_cast<VcpuId>(storage_.size());
    vcpu->credit = credit;
    vcpu->weight = weight;
    storage_.push_back(std::move(vcpu));
    return *storage_.back();
  }

  // Storage is declared first so it is destroyed LAST: the topology's
  // queue destructors unlink every node still enqueued, which must be
  // alive (use-after-free otherwise; caught by the asan-ubsan preset).
  std::vector<std::unique_ptr<Vcpu>> storage_;
  CpuTopology topology_;
  Credit2Scheduler scheduler_;
};

TEST_F(Credit2Test, ParamsValidate) {
  Credit2Params params;
  params.reset_credit = 0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.ull_slice = -1;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.reference_weight = 0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST_F(Credit2Test, EnqueueUpdatesQueueAndLoad) {
  Vcpu& vcpu = make_vcpu(100);
  const double load_before = topology_.queue(1).load();
  scheduler_.enqueue(vcpu, 1);
  EXPECT_EQ(topology_.queue(1).size(), 1u);
  EXPECT_GT(topology_.queue(1).load(), load_before);
  EXPECT_EQ(vcpu.last_cpu, 1u);
}

TEST_F(Credit2Test, ScheduleReturnsLowestCredit) {
  Vcpu& low = make_vcpu(10);
  Vcpu& high = make_vcpu(100);
  scheduler_.enqueue(high, 0);
  scheduler_.enqueue(low, 0);
  Vcpu* next = scheduler_.schedule(0);
  EXPECT_EQ(next, &low);
  EXPECT_EQ(next->state, VcpuState::kRunning);
}

TEST_F(Credit2Test, ScheduleEmptyQueueReturnsNull) {
  EXPECT_EQ(scheduler_.schedule(2), nullptr);
}

TEST_F(Credit2Test, CreditResetWhenHeadExhausted) {
  Vcpu& exhausted = make_vcpu(0);
  Vcpu& other = make_vcpu(50);
  scheduler_.enqueue(exhausted, 0);
  scheduler_.enqueue(other, 0);
  EXPECT_EQ(scheduler_.credit_resets(), 0u);
  Vcpu* next = scheduler_.schedule(0);
  EXPECT_EQ(next, &exhausted);
  EXPECT_EQ(scheduler_.credit_resets(), 1u);
  // Reset added reset_credit to everyone still queued.
  EXPECT_EQ(exhausted.credit, scheduler_.params().reset_credit);
  EXPECT_EQ(other.credit, 50 + scheduler_.params().reset_credit);
}

TEST_F(Credit2Test, ChargeBurnsCreditProportionallyToWeight) {
  Vcpu& reference = make_vcpu(1'000'000, 256);
  Vcpu& heavy = make_vcpu(1'000'000, 512);
  scheduler_.enqueue(reference, 0);
  scheduler_.enqueue(heavy, 1);
  (void)scheduler_.schedule(0);
  (void)scheduler_.schedule(1);
  scheduler_.charge_and_requeue(reference, 1000, true);
  scheduler_.charge_and_requeue(heavy, 1000, true);
  EXPECT_EQ(reference.credit, 1'000'000 - 1000);  // 1:1 at reference weight
  EXPECT_EQ(heavy.credit, 1'000'000 - 500);       // half burn at 2x weight
}

TEST_F(Credit2Test, ChargeAccountsCpuTime) {
  Vcpu& vcpu = make_vcpu(1000);
  scheduler_.enqueue(vcpu, 0);
  (void)scheduler_.schedule(0);
  scheduler_.charge_and_requeue(vcpu, 700, false);
  EXPECT_EQ(vcpu.cpu_time, 700);
  EXPECT_EQ(vcpu.state, VcpuState::kOffline);
}

TEST_F(Credit2Test, RequeuePutsBackInSortedPosition) {
  Vcpu& a = make_vcpu(100);
  Vcpu& b = make_vcpu(200);
  scheduler_.enqueue(a, 0);
  scheduler_.enqueue(b, 0);
  Vcpu* running = scheduler_.schedule(0);  // a
  ASSERT_EQ(running, &a);
  scheduler_.charge_and_requeue(a, 50, true);
  EXPECT_EQ(topology_.queue(0).size(), 2u);
  EXPECT_TRUE(topology_.queue(0).is_sorted());
  EXPECT_EQ(topology_.queue(0).peek_front(), &a);  // 50 < 200
}

TEST_F(Credit2Test, SliceForReservedQueueIsOneMicrosecond) {
  topology_.reserve_for_ull(2);
  EXPECT_EQ(scheduler_.slice_for(2), 1 * util::kMicrosecond);
  EXPECT_EQ(scheduler_.slice_for(0), scheduler_.params().default_slice);
}

TEST_F(Credit2Test, PickCpuAvoidsReservedQueues) {
  topology_.reserve_for_ull(0);
  topology_.queue(0).set_load_for_test(0.0);
  topology_.queue(1).set_load_for_test(10.0);
  topology_.queue(2).set_load_for_test(5.0);
  EXPECT_EQ(scheduler_.pick_cpu(), 2u);
}

TEST_F(Credit2Test, DequeueRemovesFromQueue) {
  Vcpu& vcpu = make_vcpu(10);
  scheduler_.enqueue(vcpu, 1);
  scheduler_.dequeue(vcpu);
  EXPECT_TRUE(topology_.queue(1).empty());
}

TEST_F(Credit2Test, CreditResetPreservesSortOrder) {
  Vcpu& a = make_vcpu(-50);
  Vcpu& b = make_vcpu(-10);
  Vcpu& c = make_vcpu(30);
  scheduler_.enqueue(a, 0);
  scheduler_.enqueue(b, 0);
  scheduler_.enqueue(c, 0);
  (void)scheduler_.schedule(0);  // triggers reset, pops a
  EXPECT_TRUE(topology_.queue(0).is_sorted());
}

}  // namespace
}  // namespace horse::sched
