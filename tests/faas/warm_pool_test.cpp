#include "faas/warm_pool.hpp"

#include <gtest/gtest.h>

#include "faas/registry.hpp"
#include "workloads/array_filter.hpp"

namespace horse::faas {
namespace {

std::unique_ptr<vmm::Sandbox> paused_sandbox(sched::SandboxId id) {
  vmm::SandboxConfig config;
  config.name = "fn";
  config.num_vcpus = 1;
  config.memory_mb = 1;
  auto sandbox = std::make_unique<vmm::Sandbox>(id, config);
  sandbox->set_state(vmm::SandboxState::kPaused);
  return sandbox;
}

TEST(WarmPoolTest, PutAndTakeRoundTrip) {
  WarmPool pool;
  ASSERT_TRUE(pool.put(0, paused_sandbox(1), 0).is_ok());
  EXPECT_EQ(pool.available(0), 1u);
  EXPECT_EQ(pool.total(), 1u);
  auto sandbox = pool.take(0);
  ASSERT_NE(sandbox, nullptr);
  EXPECT_EQ(sandbox->id(), 1u);
  EXPECT_EQ(pool.total(), 0u);
}

TEST(WarmPoolTest, TakeEmptyReturnsNull) {
  WarmPool pool;
  EXPECT_EQ(pool.take(0), nullptr);
  EXPECT_EQ(pool.available(42), 0u);
}

TEST(WarmPoolTest, RejectsNonPausedSandbox) {
  WarmPool pool;
  vmm::SandboxConfig config;
  config.num_vcpus = 1;
  auto sandbox = std::make_unique<vmm::Sandbox>(1, config);  // kCreated
  EXPECT_EQ(pool.put(0, std::move(sandbox), 0).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(WarmPoolTest, TakeIsLifo) {
  WarmPool pool;
  ASSERT_TRUE(pool.put(0, paused_sandbox(1), 0).is_ok());
  ASSERT_TRUE(pool.put(0, paused_sandbox(2), 10).is_ok());
  EXPECT_EQ(pool.take(0)->id(), 2u);  // most recently parked first
  EXPECT_EQ(pool.take(0)->id(), 1u);
}

TEST(WarmPoolTest, PerFunctionCapEnforced) {
  WarmPoolConfig config;
  config.max_per_function = 2;
  WarmPool pool(config);
  ASSERT_TRUE(pool.put(0, paused_sandbox(1), 0).is_ok());
  ASSERT_TRUE(pool.put(0, paused_sandbox(2), 0).is_ok());
  EXPECT_EQ(pool.put(0, paused_sandbox(3), 0).code(),
            util::StatusCode::kResourceExhausted);
  // Other functions unaffected.
  EXPECT_TRUE(pool.put(1, paused_sandbox(4), 0).is_ok());
}

TEST(WarmPoolTest, EvictExpiredDropsOldEntries) {
  WarmPoolConfig config;
  config.keep_alive = 100;
  WarmPool pool(config);
  ASSERT_TRUE(pool.put(0, paused_sandbox(1), 0).is_ok());
  ASSERT_TRUE(pool.put(0, paused_sandbox(2), 90).is_ok());
  const auto evicted = pool.evict_expired(150);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0]->id(), 1u);  // only the stale one
  EXPECT_EQ(pool.available(0), 1u);
}

TEST(WarmPoolTest, ProvisionedFloorSurvivesEviction) {
  WarmPoolConfig config;
  config.keep_alive = 10;
  WarmPool pool(config);
  pool.set_provisioned_floor(0, 2);
  ASSERT_TRUE(pool.put(0, paused_sandbox(1), 0).is_ok());
  ASSERT_TRUE(pool.put(0, paused_sandbox(2), 0).is_ok());
  ASSERT_TRUE(pool.put(0, paused_sandbox(3), 0).is_ok());
  const auto evicted = pool.evict_expired(1'000'000);
  EXPECT_EQ(evicted.size(), 1u);  // only down to the floor
  EXPECT_EQ(pool.available(0), 2u);
  EXPECT_EQ(pool.provisioned_floor(0), 2u);
}


TEST(WarmPoolTest, KeepAliveOverridePerFunction) {
  WarmPoolConfig config;
  config.keep_alive = 100;
  WarmPool pool(config);
  EXPECT_EQ(pool.keep_alive_for(0), 100);
  pool.set_keep_alive_override(0, 500);
  EXPECT_EQ(pool.keep_alive_for(0), 500);
  EXPECT_EQ(pool.keep_alive_for(1), 100);  // others untouched

  // Eviction honours the override: entry parked at t=0 survives t=300
  // for function 0 (window 500) but would have expired at the default.
  ASSERT_TRUE(pool.put(0, paused_sandbox(1), 0).is_ok());
  EXPECT_TRUE(pool.evict_expired(300).empty());
  EXPECT_EQ(pool.evict_expired(600).size(), 1u);
}

TEST(RegistryTest, AddAndLookup) {
  FunctionRegistry registry;
  FunctionSpec spec;
  spec.name = "filter";
  spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  spec.sandbox.num_vcpus = 1;
  const auto id = registry.add(std::move(spec));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(registry.size(), 1u);
  const auto found = registry.find(*id);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ((*found)->name, "filter");
  const auto by_name = registry.find_by_name("filter");
  ASSERT_TRUE(by_name.has_value());
  EXPECT_EQ(*by_name, *id);
}

TEST(RegistryTest, RejectsDuplicatesAndInvalid) {
  FunctionRegistry registry;
  FunctionSpec spec;
  spec.name = "fn";
  spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  ASSERT_TRUE(registry.add(spec).has_value());
  EXPECT_EQ(registry.add(spec).status().code(),
            util::StatusCode::kAlreadyExists);
  FunctionSpec empty;
  EXPECT_EQ(registry.add(empty).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(RegistryTest, UnknownLookupsFail) {
  FunctionRegistry registry;
  EXPECT_EQ(registry.find(5).status().code(), util::StatusCode::kNotFound);
  EXPECT_EQ(registry.find_by_name("ghost").status().code(),
            util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace horse::faas
