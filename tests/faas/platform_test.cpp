#include "faas/platform.hpp"

#include <gtest/gtest.h>

#include "support/sanitizers.hpp"
#include "workloads/array_filter.hpp"
#include "workloads/firewall.hpp"

namespace horse::faas {
namespace {

class PlatformTest : public ::testing::Test {
 protected:
  PlatformTest() : platform_(make_config()) {
    FunctionSpec ull_spec;
    ull_spec.name = "filter";
    ull_spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
    ull_spec.sandbox.name = "filter-sb";
    ull_spec.sandbox.num_vcpus = 1;
    ull_spec.sandbox.memory_mb = 1;
    ull_spec.sandbox.ull = true;
    ull_id_ = *platform_.registry().add(std::move(ull_spec));

    FunctionSpec plain_spec;
    plain_spec.name = "firewall";
    plain_spec.implementation =
        std::make_shared<workloads::FirewallFunction>(64);
    plain_spec.sandbox.name = "firewall-sb";
    plain_spec.sandbox.num_vcpus = 2;
    plain_spec.sandbox.memory_mb = 1;
    plain_id_ = *platform_.registry().add(std::move(plain_spec));
  }

  static PlatformConfig make_config() {
    PlatformConfig config;
    config.num_cpus = 4;
    return config;
  }

  static workloads::Request filter_request() {
    workloads::Request request;
    request.payload = {1, 5, 10};
    request.threshold = 4;
    return request;
  }

  Platform platform_;
  FunctionId ull_id_ = 0;
  FunctionId plain_id_ = 0;
};

TEST_F(PlatformTest, ColdStartRunsFunction) {
  const auto record = platform_.invoke(ull_id_, filter_request(), StartMode::kCold);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->mode, StartMode::kCold);
  EXPECT_EQ(record->response.indexes, (std::vector<std::int32_t>{1, 2}));
  // Cold init is dominated by the modelled 1.5 s boot.
  EXPECT_GT(record->init_time, util::kSecond);
  EXPECT_GT(record->init_modelled, util::kSecond);
  EXPECT_GT(record->init_fraction(), 0.99);
}

TEST_F(PlatformTest, ColdStartLeavesWarmSandboxBehind) {
  ASSERT_TRUE(platform_.invoke(ull_id_, filter_request(), StartMode::kCold)
                  .has_value());
  EXPECT_EQ(platform_.warm_pool().available(ull_id_), 1u);
  // The pooled sandbox now serves a warm start.
  const auto warm = platform_.invoke(ull_id_, filter_request(), StartMode::kWarm);
  ASSERT_TRUE(warm.has_value());
  EXPECT_LT(warm->init_time, util::kMillisecond);
}

TEST_F(PlatformTest, RestoreStartUsesSnapshot) {
  const auto record =
      platform_.invoke(ull_id_, filter_request(), StartMode::kRestore);
  ASSERT_TRUE(record.has_value());
  // Restore is ~1.3 ms modelled + real copy: far below cold, above warm.
  EXPECT_LT(record->init_time, 100 * util::kMillisecond);
  EXPECT_GT(record->init_time, util::kMicrosecond);
}

TEST_F(PlatformTest, WarmWithoutPoolFailsWhenLadderDisabled) {
  // With the degradation ladder off, an empty pool surfaces the raw error.
  PlatformConfig config = make_config();
  config.degradation.enabled = false;
  Platform platform(config);
  FunctionSpec spec;
  spec.name = "filter";
  spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  spec.sandbox.name = "filter-sb";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = true;
  const FunctionId id = *platform.registry().add(std::move(spec));
  const auto record = platform.invoke(id, filter_request(), StartMode::kWarm);
  EXPECT_FALSE(record.has_value());
  EXPECT_EQ(record.status().code(), util::StatusCode::kUnavailable);
}

TEST_F(PlatformTest, WarmWithoutPoolDemotesToColderRung) {
  // Default config: the ladder catches the pool miss and demotes
  // kWarm → kRestore, which succeeds via a fresh snapshot.
  const auto record =
      platform_.invoke(ull_id_, filter_request(), StartMode::kWarm);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->requested, StartMode::kWarm);
  EXPECT_EQ(record->mode, StartMode::kRestore);
  EXPECT_EQ(record->fallbacks, 1u);
  EXPECT_GT(record->retry_backoff, 0);
  const auto counters = platform_.counters();
  EXPECT_EQ(counters.rung_fallbacks, 1u);
  EXPECT_EQ(counters.degraded_invocations, 1u);
  EXPECT_EQ(counters.restore, 1u);  // counted by completion mode
  EXPECT_EQ(counters.warm, 0u);
}

TEST_F(PlatformTest, ProvisionFillsPool) {
  ASSERT_TRUE(platform_.provision(ull_id_, 3).is_ok());
  EXPECT_EQ(platform_.warm_pool().available(ull_id_), 3u);
  EXPECT_EQ(platform_.warm_pool().provisioned_floor(ull_id_), 3u);
}

TEST_F(PlatformTest, HorseStartUsesFastPath) {
  ASSERT_TRUE(platform_.provision(ull_id_, 1).is_ok());
  const auto record =
      platform_.invoke(ull_id_, filter_request(), StartMode::kHorse);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->mode, StartMode::kHorse);
  // No dispatch plumbing on the fast path.
  EXPECT_EQ(record->init_modelled, 0);
  EXPECT_GT(record->resume.total(), 0);
  EXPECT_EQ(record->init_time, record->resume.total());
}

TEST_F(PlatformTest, HorseFasterThanWarmOnAverage) {
  // Compares two *measured* paths; instrumented builds shift their
  // relative cost, so the comparison only means something uninstrumented.
  HORSE_SKIP_TIMING_UNDER_SANITIZERS();
  ASSERT_TRUE(platform_.provision(ull_id_, 1).is_ok());
  util::Nanos warm_total = 0;
  util::Nanos horse_total = 0;
  constexpr int kRounds = 30;
  for (int i = 0; i < kRounds; ++i) {
    const auto warm =
        platform_.invoke(ull_id_, filter_request(), StartMode::kWarm);
    ASSERT_TRUE(warm.has_value());
    warm_total += warm->init_time;
    const auto fast =
        platform_.invoke(ull_id_, filter_request(), StartMode::kHorse);
    ASSERT_TRUE(fast.has_value());
    horse_total += fast->init_time;
  }
  EXPECT_LT(horse_total, warm_total);
}

TEST_F(PlatformTest, HorseModeOnNonUllFallsBackToVanilla) {
  ASSERT_TRUE(platform_.provision(plain_id_, 1).is_ok());
  workloads::Request request;
  request.header = "src=1.1.1.1 dst=2.2.2.2 port=80 proto=tcp";
  const auto record = platform_.invoke(plain_id_, request, StartMode::kHorse);
  ASSERT_TRUE(record.has_value());
  // Fallback pays the dispatch overhead like a plain warm start.
  EXPECT_GT(record->init_modelled, 0);
}

TEST_F(PlatformTest, RepeatedWarmInvocationsRecyclePool) {
  ASSERT_TRUE(platform_.provision(ull_id_, 2).is_ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(platform_.invoke(ull_id_, filter_request(), StartMode::kWarm)
                    .has_value());
  }
  EXPECT_EQ(platform_.warm_pool().available(ull_id_), 2u);
}

TEST_F(PlatformTest, UnknownFunctionRejected) {
  const auto record =
      platform_.invoke(999, filter_request(), StartMode::kCold);
  EXPECT_FALSE(record.has_value());
  EXPECT_EQ(record.status().code(), util::StatusCode::kNotFound);
}

TEST_F(PlatformTest, KeepAliveEvictionRespectsFloor) {
  ASSERT_TRUE(platform_.provision(ull_id_, 2).is_ok());
  // Add one more beyond the floor via a cold invocation.
  ASSERT_TRUE(platform_.invoke(ull_id_, filter_request(), StartMode::kCold)
                  .has_value());
  EXPECT_EQ(platform_.warm_pool().available(ull_id_), 3u);
  platform_.advance_time(platform_.config().warm_pool.keep_alive + 1);
  EXPECT_EQ(platform_.warm_pool().available(ull_id_), 2u);  // floor holds
}

TEST_F(PlatformTest, ExecTimeIsMeasuredPositive) {
  const auto record = platform_.invoke(ull_id_, filter_request(), StartMode::kCold);
  ASSERT_TRUE(record.has_value());
  EXPECT_GT(record->exec_time, 0);
}

TEST_F(PlatformTest, StartModeToString) {
  EXPECT_EQ(to_string(StartMode::kCold), "cold");
  EXPECT_EQ(to_string(StartMode::kRestore), "restore");
  EXPECT_EQ(to_string(StartMode::kWarm), "warm");
  EXPECT_EQ(to_string(StartMode::kHorse), "horse");
}


TEST_F(PlatformTest, CountersTrackInvocationOutcomes) {
  EXPECT_EQ(platform_.counters().invocations, 0u);
  ASSERT_TRUE(platform_.provision(ull_id_, 1).is_ok());
  ASSERT_TRUE(platform_.invoke(ull_id_, filter_request(), StartMode::kCold)
                  .has_value());
  ASSERT_TRUE(platform_.invoke(ull_id_, filter_request(), StartMode::kWarm)
                  .has_value());
  ASSERT_TRUE(platform_.invoke(ull_id_, filter_request(), StartMode::kHorse)
                  .has_value());
  ASSERT_TRUE(platform_.invoke(ull_id_, filter_request(), StartMode::kRestore)
                  .has_value());
  EXPECT_FALSE(platform_.invoke(999, filter_request(), StartMode::kCold)
                   .has_value());
  const auto counters = platform_.counters();
  EXPECT_EQ(counters.invocations, 4u);
  EXPECT_EQ(counters.cold, 1u);
  EXPECT_EQ(counters.warm, 1u);
  EXPECT_EQ(counters.horse, 1u);
  EXPECT_EQ(counters.restore, 1u);
  EXPECT_EQ(counters.failed, 1u);
}

}  // namespace
}  // namespace horse::faas
