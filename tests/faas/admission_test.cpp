// Unit tier for the overload-control building blocks: typed rejects, the
// host-wide RetryBudget, the per-function CircuitBreaker, the bounded
// queue's non-blocking push, dispatcher expiry-at-dequeue, and the
// platform-level admission gates. No fault injection here — everything is
// driven through public APIs with explicit clocks/seeds.
#include "faas/admission.hpp"

#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "faas/dispatcher.hpp"
#include "faas/invoker.hpp"
#include "faas/platform.hpp"
#include "faas/submission.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "workloads/array_filter.hpp"

namespace horse::faas {
namespace {

// --- SubmissionReject ------------------------------------------------------

TEST(SubmissionRejectTest, ToStringCoversEveryReason) {
  EXPECT_EQ(to_string(SubmissionReject::kNone), "none");
  EXPECT_EQ(to_string(SubmissionReject::kDeadlineExpired), "deadline_expired");
  EXPECT_EQ(to_string(SubmissionReject::kQueueShed), "queue_shed");
  EXPECT_EQ(to_string(SubmissionReject::kQueueFull), "queue_full");
  EXPECT_EQ(to_string(SubmissionReject::kShardOverload), "shard_overload");
  EXPECT_EQ(to_string(SubmissionReject::kBreakerOpen), "breaker_open");
  EXPECT_EQ(to_string(SubmissionReject::kRetryBudgetExhausted),
            "retry_budget");
}

// --- RetryBudget -----------------------------------------------------------

TEST(RetryBudgetTest, StartsAtInitialAndWithdrawsWholeTokens) {
  RetryBudgetConfig config;
  config.initial = 3;
  config.cap = 10;
  RetryBudget budget(config);
  EXPECT_EQ(budget.available(), 3u);
  EXPECT_TRUE(budget.try_withdraw());
  EXPECT_TRUE(budget.try_withdraw());
  EXPECT_TRUE(budget.try_withdraw());
  EXPECT_EQ(budget.available(), 0u);
  EXPECT_FALSE(budget.try_withdraw());
  EXPECT_EQ(budget.withdrawals(), 3u);
  EXPECT_EQ(budget.denials(), 1u);
}

TEST(RetryBudgetTest, DepositsFundFutureWithdrawals) {
  RetryBudgetConfig config;
  config.initial = 0;
  config.deposit_per_request = 0.1;
  RetryBudget budget(config);
  EXPECT_FALSE(budget.try_withdraw());
  for (int i = 0; i < 9; ++i) {
    budget.deposit();
  }
  EXPECT_FALSE(budget.try_withdraw()) << "0.9 tokens is not a whole token";
  budget.deposit();
  EXPECT_EQ(budget.available(), 1u);
  EXPECT_TRUE(budget.try_withdraw());
  EXPECT_FALSE(budget.try_withdraw());
}

TEST(RetryBudgetTest, InitialAndDepositsClampToCap) {
  RetryBudgetConfig config;
  config.initial = 100;
  config.cap = 4;
  config.deposit_per_request = 1.0;
  RetryBudget budget(config);
  EXPECT_EQ(budget.available(), 4u) << "initial clamps to cap";
  for (int i = 0; i < 50; ++i) {
    budget.deposit();
  }
  EXPECT_EQ(budget.available(), 4u) << "deposits never exceed cap";
}

TEST(RetryBudgetTest, ConcurrentDepositsAndWithdrawalsStayConsistent) {
  RetryBudgetConfig config;
  config.initial = 0;
  config.cap = 1u << 20;
  config.deposit_per_request = 1.0;
  RetryBudget budget(config);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        budget.deposit();
        (void)budget.try_withdraw();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Every deposit adds exactly one token and every successful withdrawal
  // removes exactly one: the final balance must equal the difference.
  const std::uint64_t deposited = kThreads * kOpsPerThread;
  EXPECT_EQ(budget.available(), deposited - budget.withdrawals());
  EXPECT_EQ(budget.withdrawals() + budget.denials(), deposited);
}

// --- CircuitBreaker --------------------------------------------------------

CircuitBreakerConfig small_breaker() {
  CircuitBreakerConfig config;
  config.window = 8;
  config.min_samples = 4;
  config.failure_rate = 0.5;
  config.cooldown_base = 100;
  config.cooldown_cap = 1000;
  config.half_open_probes = 2;
  return config;
}

TEST(CircuitBreakerTest, StaysClosedBelowMinSamples) {
  CircuitBreaker breaker(small_breaker());
  util::Xoshiro256 rng(1);
  // Three straight failures: 100% failure rate but below min_samples.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.allow(0, rng));
    breaker.on_failure(0, rng);
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.stats().opens, 0u);
}

TEST(CircuitBreakerTest, OpensAtFailureRateAndBlocksDuringCooldown) {
  CircuitBreaker breaker(small_breaker());
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 4; ++i) {
    breaker.on_failure(0, rng);
  }
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.stats().opens, 1u);
  EXPECT_FALSE(breaker.allow(0, rng)) << "cooldown has not elapsed";
  EXPECT_GT(breaker.open_until(), 0);
  EXPECT_LE(breaker.open_until(), small_breaker().cooldown_base)
      << "first cooldown draws from (0, base]";
}

TEST(CircuitBreakerTest, HalfOpenProbesCloseAfterSuccesses) {
  CircuitBreaker breaker(small_breaker());
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 4; ++i) {
    breaker.on_failure(0, rng);
  }
  const util::Nanos after = breaker.open_until();
  EXPECT_TRUE(breaker.allow(after, rng)) << "cooldown elapsed: probe admitted";
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.stats().probe_rounds, 1u);
  breaker.on_success(after);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen)
      << "one probe success is not enough";
  breaker.on_success(after);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // A fresh window: one failure must not re-open.
  breaker.on_failure(after, rng);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, FailedProbeReopensImmediately) {
  CircuitBreaker breaker(small_breaker());
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 4; ++i) {
    breaker.on_failure(0, rng);
  }
  const util::Nanos after = breaker.open_until();
  ASSERT_TRUE(breaker.allow(after, rng));
  breaker.on_failure(after, rng);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.stats().opens, 2u);
  EXPECT_GT(breaker.open_until(), after);
}

TEST(CircuitBreakerTest, ConsecutiveReopensBackOffUpToCap) {
  // Each re-open draws its cooldown from a doubling window. The ceiling
  // is the provable bound: open_until - now <= min(cap, base * 2^(k-1)).
  CircuitBreakerConfig config = small_breaker();
  CircuitBreaker breaker(config);
  util::Xoshiro256 rng(7);
  const util::Backoff backoff{
      util::BackoffPolicy{config.cooldown_base, config.cooldown_cap}};
  for (int i = 0; i < 4; ++i) {
    breaker.on_failure(0, rng);
  }
  util::Nanos now = 0;
  for (std::size_t streak = 1; streak <= 10; ++streak) {
    ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    const util::Nanos cooldown = breaker.open_until() - now;
    EXPECT_GE(cooldown, 1);
    EXPECT_LE(cooldown, backoff.ceiling(streak)) << "streak " << streak;
    now = breaker.open_until();
    ASSERT_TRUE(breaker.allow(now, rng)) << "streak " << streak;
    breaker.on_failure(now, rng);  // failed probe: re-open, longer window
  }
  EXPECT_EQ(breaker.stats().opens, 11u);
}

TEST(CircuitBreakerTest, WindowEvictsOldOutcomes) {
  CircuitBreakerConfig config = small_breaker();
  config.window = 4;
  config.min_samples = 4;
  CircuitBreaker breaker(config);
  util::Xoshiro256 rng(1);
  // Two failures, then enough successes to push them out of the window.
  breaker.on_failure(0, rng);
  breaker.on_failure(0, rng);
  for (int i = 0; i < 4; ++i) {
    breaker.on_success(0);
  }
  // Window now holds 4 successes; one more failure is 25% < 50%.
  breaker.on_failure(0, rng);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, StateToString) {
  EXPECT_EQ(to_string(CircuitBreaker::State::kClosed), "closed");
  EXPECT_EQ(to_string(CircuitBreaker::State::kOpen), "open");
  EXPECT_EQ(to_string(CircuitBreaker::State::kHalfOpen), "half_open");
}

// --- SharedTaskQueue -------------------------------------------------------

#ifdef NDEBUG
TEST(SharedTaskQueueTest, ZeroCapacityThrows) {
  EXPECT_THROW(SharedTaskQueue queue(0), std::invalid_argument);
}
#else
TEST(SharedTaskQueueDeathTest, ZeroCapacityAsserts) {
  EXPECT_DEATH(SharedTaskQueue queue(0), "capacity");
}
#endif

TEST(SharedTaskQueueTest, TryPushRefusesWhenFull) {
  SharedTaskQueue queue(2);
  EXPECT_EQ(queue.capacity(), 2u);
  Submission task;
  task.seq = 1;
  EXPECT_TRUE(queue.try_push(task));
  task.seq = 2;
  EXPECT_TRUE(queue.try_push(task));
  task.seq = 3;
  EXPECT_FALSE(queue.try_push(task)) << "queue is at capacity";
  EXPECT_EQ(queue.size(), 2u);
  // Popping frees a slot; try_push succeeds again and FIFO order holds.
  Submission out;
  ASSERT_TRUE(queue.wait_pop(out));
  EXPECT_EQ(out.seq, 1u);
  EXPECT_TRUE(queue.try_push(task));
  ASSERT_TRUE(queue.wait_pop(out));
  EXPECT_EQ(out.seq, 2u);
  ASSERT_TRUE(queue.wait_pop(out));
  EXPECT_EQ(out.seq, 3u);
}

TEST(SharedTaskQueueTest, TryPushRefusesAfterClose) {
  SharedTaskQueue queue(4);
  queue.close();
  Submission task;
  EXPECT_FALSE(queue.try_push(task));
  EXPECT_TRUE(queue.empty());
}

// --- Dispatcher expiry-at-dequeue ------------------------------------------

TEST(DispatcherExpiryTest, PastDeadlineExpiresWithoutExecuting) {
  std::atomic<int> executed{0};
  Dispatcher::Options options;
  options.executor = [&executed](Submission, SubmissionOutcome& outcome) {
    ++executed;
    outcome.status = util::Status::ok();
  };
  options.router = [](FunctionId) { return std::size_t{0}; };
  options.workers = 1;
  Dispatcher dispatcher(std::move(options));

  Submission task;
  task.seq = 1;
  task.enqueued_at = util::monotonic_now();
  task.deadline = 1;  // monotonic epoch start: long past
  dispatcher.submit(std::move(task));
  const auto outcomes = dispatcher.drain();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(executed.load(), 0) << "expired work must never execute";
  EXPECT_EQ(outcomes[0].reject, SubmissionReject::kDeadlineExpired);
  EXPECT_EQ(outcomes[0].status.code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(dispatcher.expired(), 1u);
  EXPECT_EQ(dispatcher.completed(), 1u)
      << "expiry records an outcome, so accounting stays lossless";
}

TEST(DispatcherExpiryTest, SojournCapExpiresStaleTasks) {
  std::atomic<int> executed{0};
  Dispatcher::Options options;
  options.executor = [&executed](Submission, SubmissionOutcome& outcome) {
    ++executed;
    outcome.status = util::Status::ok();
  };
  options.router = [](FunctionId) { return std::size_t{0}; };
  options.workers = 1;
  options.max_sojourn = util::kMicrosecond;
  Dispatcher dispatcher(std::move(options));

  // Backdate the enqueue far past the sojourn cap: the measured queueing
  // delay exceeds it no matter how fast the worker picks the task up.
  Submission stale;
  stale.seq = 1;
  stale.enqueued_at = util::monotonic_now() - util::kMillisecond;
  dispatcher.submit(std::move(stale));
  auto outcomes = dispatcher.drain();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(executed.load(), 0);
  EXPECT_EQ(outcomes[0].reject, SubmissionReject::kDeadlineExpired);
  EXPECT_EQ(dispatcher.expired(), 1u);

  // A fresh deadline-free task is untouched by the cap only if it is
  // picked up fast enough; a generous re-check with the cap disabled
  // lives in the invoker tests. Here: deadline-free + fresh enqueue may
  // still trip a 1 µs cap under scheduler noise, so just assert the
  // expired counter is monotone and accounting holds.
  Submission fresh;
  fresh.seq = 2;
  fresh.enqueued_at = util::monotonic_now();
  dispatcher.submit(std::move(fresh));
  outcomes = dispatcher.drain();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(dispatcher.completed(), 2u);
}

// --- Invoker deadline propagation ------------------------------------------

class AdmissionPlatformTest : public ::testing::Test {
 protected:
  static PlatformConfig make_config() {
    PlatformConfig config;
    config.num_cpus = 4;
    return config;
  }

  static FunctionId add_filter(Platform& platform) {
    FunctionSpec spec;
    spec.name = "filter";
    spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
    spec.sandbox.name = "filter-sb";
    spec.sandbox.num_vcpus = 1;
    spec.sandbox.memory_mb = 1;
    spec.sandbox.ull = true;
    return *platform.registry().add(std::move(spec));
  }

  static workloads::Request filter_request() {
    workloads::Request request;
    request.payload = {5, 10, 15};
    request.threshold = 7;
    return request;
  }
};

TEST_F(AdmissionPlatformTest, InvokerPropagatesDeadlineToTypedReject) {
  Platform platform(make_config());
  const FunctionId filter = add_filter(platform);
  Invoker invoker(platform, 2);
  invoker.submit(filter, filter_request(), StartMode::kCold, /*deadline=*/1);
  invoker.submit(filter, filter_request(), StartMode::kCold, /*deadline=*/0);
  const auto outcomes = invoker.drain();
  ASSERT_EQ(outcomes.size(), 2u);
  int expired = 0;
  int completed = 0;
  for (const auto& outcome : outcomes) {
    if (outcome.reject == SubmissionReject::kDeadlineExpired) {
      ++expired;
      EXPECT_EQ(outcome.status.code(), util::StatusCode::kDeadlineExceeded);
    } else {
      ++completed;
      EXPECT_TRUE(outcome.status.is_ok()) << outcome.status.to_report();
      EXPECT_EQ(outcome.reject, SubmissionReject::kNone);
    }
  }
  EXPECT_EQ(expired, 1);
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(platform.counters().deadline_rejections, 0u)
      << "dispatcher expires at dequeue; the platform gate never sees it";
}

TEST_F(AdmissionPlatformTest, FarFutureDeadlineCompletesNormally) {
  Platform platform(make_config());
  const FunctionId filter = add_filter(platform);
  Invoker invoker(platform, 2);
  const util::Nanos deadline = util::monotonic_now() + 60'000'000'000;
  for (int i = 0; i < 10; ++i) {
    invoker.submit(filter, filter_request(), StartMode::kCold, deadline);
  }
  const auto outcomes = invoker.drain();
  ASSERT_EQ(outcomes.size(), 10u);
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.status.is_ok()) << outcome.status.to_report();
    EXPECT_EQ(outcome.reject, SubmissionReject::kNone);
  }
}

TEST_F(AdmissionPlatformTest, DeadlinePreCheckRejectsAtInvoke) {
  Platform platform(make_config());
  const FunctionId filter = add_filter(platform);
  InvokeControls controls;
  controls.now = 100;
  controls.deadline = 50;  // already past
  const auto result =
      platform.invoke(filter, filter_request(), StartMode::kCold, controls);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(controls.reject, SubmissionReject::kDeadlineExpired);
  EXPECT_EQ(platform.counters().deadline_rejections, 1u);
}

// --- Platform shard high-water ---------------------------------------------

/// A function whose invoke() blocks until released — the deterministic way
/// to hold a shard's in-flight count up while a second caller arrives.
class BlockingFunction final : public workloads::Function {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "blocking";
  }
  [[nodiscard]] workloads::Category category() const noexcept override {
    return workloads::Category::kCategory3;
  }
  [[nodiscard]] util::Nanos nominal_duration() const noexcept override {
    return 100;
  }
  workloads::Response invoke(const workloads::Request&) override {
    std::unique_lock lock(mutex_);
    entered_ = true;
    entered_cv_.notify_all();
    release_cv_.wait(lock, [this] { return released_; });
    workloads::Response response;
    response.checksum = 1;
    return response;
  }

  void wait_entered() {
    std::unique_lock lock(mutex_);
    entered_cv_.wait(lock, [this] { return entered_; });
  }
  void release() {
    std::lock_guard lock(mutex_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST_F(AdmissionPlatformTest, ShardHighWaterRejectsWhileSaturated) {
  PlatformConfig config = make_config();
  config.admission.shard_high_water = 1;
  Platform platform(config);

  auto blocking = std::make_shared<BlockingFunction>();
  FunctionSpec spec;
  spec.name = "blocking";
  spec.implementation = blocking;
  spec.sandbox.name = "blocking-sb";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = true;
  const FunctionId function = *platform.registry().add(std::move(spec));

  std::thread holder([&platform, function] {
    const auto result = platform.invoke(function, workloads::Request{},
                                        StartMode::kCold);
    EXPECT_TRUE(result.has_value()) << result.status().to_report();
  });
  blocking->wait_entered();  // the shard now has one in-flight invocation

  InvokeControls controls;
  controls.now = util::monotonic_now();
  const auto rejected =
      platform.invoke(function, workloads::Request{}, StartMode::kCold,
                      controls);
  ASSERT_FALSE(rejected.has_value());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(controls.reject, SubmissionReject::kShardOverload);

  blocking->release();
  holder.join();
  // counters() takes every shard lock, so it must wait until the holder
  // (blocked inside the function body, shard lock held) has finished.
  EXPECT_EQ(platform.counters().shard_overload_rejections, 1u);

  // With the shard drained, the same invoke is admitted again.
  InvokeControls retry;
  retry.now = util::monotonic_now();
  const auto admitted = platform.invoke(function, workloads::Request{},
                                        StartMode::kCold, retry);
  EXPECT_TRUE(admitted.has_value()) << admitted.status().to_report();
  EXPECT_EQ(retry.reject, SubmissionReject::kNone);
}

TEST_F(AdmissionPlatformTest, BreakerAccessorsDefaultClosed) {
  Platform platform(make_config());
  const FunctionId filter = add_filter(platform);
  EXPECT_EQ(platform.breaker_state(filter), CircuitBreaker::State::kClosed);
  const auto stats = platform.breaker_stats(filter);
  EXPECT_EQ(stats.opens, 0u);
  EXPECT_EQ(stats.probe_rounds, 0u);
  EXPECT_EQ(stats.stuck_open, 0u);
  // Admission gates are off by default: counters stay zero after traffic.
  const auto result =
      platform.invoke(filter, filter_request(), StartMode::kCold);
  ASSERT_TRUE(result.has_value());
  const auto counters = platform.counters();
  EXPECT_EQ(counters.shard_overload_rejections, 0u);
  EXPECT_EQ(counters.breaker_rejections, 0u);
  EXPECT_EQ(counters.breaker_opens, 0u);
  EXPECT_EQ(counters.budget_denied_escalations, 0u);
}

}  // namespace
}  // namespace horse::faas
