#include "faas/invoker.hpp"

#include <gtest/gtest.h>

#include "workloads/array_filter.hpp"
#include "workloads/nat.hpp"

namespace horse::faas {
namespace {

class InvokerTest : public ::testing::Test {
 protected:
  InvokerTest() : platform_(make_config()) {
    FunctionSpec spec;
    spec.name = "filter";
    spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
    spec.sandbox.name = "filter-sb";
    spec.sandbox.num_vcpus = 1;
    spec.sandbox.memory_mb = 1;
    spec.sandbox.ull = true;
    filter_ = *platform_.registry().add(std::move(spec));

    FunctionSpec nat_spec;
    nat_spec.name = "nat";
    nat_spec.implementation = std::make_shared<workloads::NatFunction>(16);
    nat_spec.sandbox.name = "nat-sb";
    nat_spec.sandbox.num_vcpus = 1;
    nat_spec.sandbox.memory_mb = 1;
    nat_spec.sandbox.ull = true;
    nat_ = *platform_.registry().add(std::move(nat_spec));
  }

  static PlatformConfig make_config() {
    PlatformConfig config;
    config.num_cpus = 4;
    return config;
  }

  static workloads::Request filter_request() {
    workloads::Request request;
    request.payload = {5, 10, 15};
    request.threshold = 7;
    return request;
  }

  Platform platform_;
  FunctionId filter_ = 0;
  FunctionId nat_ = 0;
};

TEST_F(InvokerTest, SubmitsAndDrains) {
  Invoker invoker(platform_, 2);
  for (int i = 0; i < 20; ++i) {
    invoker.submit(filter_, filter_request(), StartMode::kCold);
  }
  const auto outcomes = invoker.drain();
  EXPECT_EQ(invoker.submitted(), 20u);
  ASSERT_EQ(outcomes.size(), 20u);
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.status.is_ok()) << outcome.status.to_report();
    EXPECT_EQ(outcome.record.response.indexes.size(), 2u);
    EXPECT_GE(outcome.queueing, 0);
  }
}

TEST_F(InvokerTest, MixedFunctionsAndModes) {
  ASSERT_TRUE(platform_.provision(filter_, 2).is_ok());
  ASSERT_TRUE(platform_.provision(nat_, 2).is_ok());
  Invoker invoker(platform_, 3);
  workloads::Request packet;
  packet.header = "src=1.1.1.1 dst=2.2.2.2 port=80 proto=tcp";
  for (int i = 0; i < 30; ++i) {
    if (i % 2 == 0) {
      invoker.submit(filter_, filter_request(), StartMode::kHorse);
    } else {
      invoker.submit(nat_, packet, StartMode::kWarm);
    }
  }
  const auto outcomes = invoker.drain();
  ASSERT_EQ(outcomes.size(), 30u);
  int horse = 0;
  int warm = 0;
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.status.is_ok()) << outcome.status.to_report();
    (outcome.mode == StartMode::kHorse ? horse : warm) += 1;
  }
  EXPECT_EQ(horse, 15);
  EXPECT_EQ(warm, 15);
  // Pools intact after the concurrent burst.
  EXPECT_EQ(platform_.warm_pool().available(filter_), 2u);
  EXPECT_EQ(platform_.warm_pool().available(nat_), 2u);
}

TEST_F(InvokerTest, ErrorsSurfaceInOutcomes) {
  // Ladder off so the empty-pool warm start surfaces its raw error
  // instead of demoting to a colder rung.
  PlatformConfig config = make_config();
  config.degradation.enabled = false;
  Platform platform(config);
  FunctionSpec spec;
  spec.name = "filter";
  spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  spec.sandbox.name = "filter-sb";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = true;
  const FunctionId filter = *platform.registry().add(std::move(spec));

  Invoker invoker(platform, 2);
  invoker.submit(filter, filter_request(), StartMode::kWarm);  // empty pool
  invoker.submit(999, filter_request(), StartMode::kCold);     // unknown fn
  const auto outcomes = invoker.drain();
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& outcome : outcomes) {
    EXPECT_FALSE(outcome.status.is_ok());
  }
}

TEST_F(InvokerTest, DrainOnIdleInvokerIsEmpty) {
  Invoker invoker(platform_, 1);
  EXPECT_TRUE(invoker.drain().empty());
}

TEST_F(InvokerTest, ConcurrentSubmittersFromManyThreads) {
  ASSERT_TRUE(platform_.provision(filter_, 1).is_ok());
  Invoker invoker(platform_, 2);
  {
    std::vector<std::jthread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&] {
        for (int i = 0; i < 25; ++i) {
          invoker.submit(filter_, filter_request(), StartMode::kHorse);
        }
      });
    }
  }
  const auto outcomes = invoker.drain();
  ASSERT_EQ(outcomes.size(), 100u);
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.status.is_ok()) << outcome.status.to_report();
  }
}

}  // namespace
}  // namespace horse::faas
