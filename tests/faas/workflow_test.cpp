// Workflow chains + platform-side fusion (DESIGN.md §5.8).
//
// Covers the registry's DAG validation (unknown stage, empty chain,
// uLL/non-uLL boundary split points), the fusion planner, the fused
// single-resume execution path (one pool take, interior stages never
// recorded as arrivals), hop-cursor resume after a mid-chain start
// failure, per-hop deadline slack accounting, and concurrent workflow
// add vs find under the registry's shared lock.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "faas/invoker.hpp"
#include "faas/platform.hpp"
#include "faas/registry.hpp"
#include "support/sanitizers.hpp"
#include "workloads/function.hpp"

namespace horse::faas {
namespace {

/// Deterministic stage body: counts its invocations, optionally spins to
/// model execution time, and appends its name to the header so the tests
/// can read the edge plumbing off the final response.
class CountingFunction final : public workloads::Function {
 public:
  explicit CountingFunction(std::string name, util::Nanos spin = 0,
                            bool allow = true)
      : name_(std::move(name)), spin_(spin), allow_(allow) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] workloads::Category category() const noexcept override {
    return workloads::Category::kCategory3;
  }
  workloads::Response invoke(const workloads::Request& request) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    if (spin_ != 0) {
      util::spin_for(spin_);
    }
    workloads::Response response;
    response.allowed = allow_;
    response.rewritten_header = request.header + "|" + name_;
    response.checksum =
        static_cast<std::uint64_t>(calls_.load(std::memory_order_relaxed));
    return response;
  }
  [[nodiscard]] util::Nanos nominal_duration() const noexcept override {
    return 700;
  }

  [[nodiscard]] int calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  std::string name_;
  util::Nanos spin_;
  bool allow_;
  std::atomic<int> calls_{0};
};

FunctionSpec make_spec(const std::shared_ptr<CountingFunction>& impl,
                       bool ull, std::uint32_t vcpus = 1,
                       std::uint32_t memory_mb = 16) {
  FunctionSpec spec;
  spec.name = std::string(impl->name());
  spec.implementation = impl;
  spec.sandbox.name = spec.name + "-sb";
  spec.sandbox.num_vcpus = vcpus;
  spec.sandbox.memory_mb = memory_mb;
  spec.sandbox.ull = ull;
  return spec;
}

workloads::Request request_with_header(std::string header) {
  workloads::Request request;
  request.header = std::move(header);
  return request;
}

TEST(WorkflowRegistryTest, RejectsInvalidChains) {
  FunctionRegistry registry;
  const auto impl = std::make_shared<CountingFunction>("only");
  const FunctionId fn = *registry.add(make_spec(impl, true));

  WorkflowSpec nameless;
  nameless.stages = {fn};
  EXPECT_EQ(registry.add_workflow(nameless).status().code(),
            util::StatusCode::kInvalidArgument);

  WorkflowSpec empty;
  empty.name = "empty";
  EXPECT_EQ(registry.add_workflow(empty).status().code(),
            util::StatusCode::kInvalidArgument);

  WorkflowSpec unknown;
  unknown.name = "unknown-stage";
  unknown.stages = {fn, fn + 7};
  EXPECT_EQ(registry.add_workflow(unknown).status().code(),
            util::StatusCode::kInvalidArgument);

  WorkflowSpec bad_edges;
  bad_edges.name = "bad-edges";
  bad_edges.stages = {fn, fn};
  bad_edges.edges.resize(3);  // must be stages-1 (or empty for defaults)
  EXPECT_EQ(registry.add_workflow(bad_edges).status().code(),
            util::StatusCode::kInvalidArgument);

  WorkflowSpec ok;
  ok.name = "ok";
  ok.stages = {fn, fn};
  ASSERT_TRUE(registry.add_workflow(ok).has_value());
  WorkflowSpec duplicate = ok;
  EXPECT_EQ(registry.add_workflow(duplicate).status().code(),
            util::StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.workflow_count(), 1u);
}

TEST(WorkflowRegistryTest, RecordsFusabilityPerAdjacentPair) {
  FunctionRegistry registry;
  const auto impl = std::make_shared<CountingFunction>("stage");
  auto add = [&](const char* name, bool ull, std::uint32_t vcpus,
                 std::uint32_t memory_mb) {
    FunctionSpec spec = make_spec(impl, ull, vcpus, memory_mb);
    spec.name = name;
    return *registry.add(std::move(spec));
  };
  const FunctionId ull_a = add("ull-a", true, 1, 16);
  const FunctionId ull_b = add("ull-b", true, 1, 8);
  const FunctionId plain = add("plain", false, 1, 16);
  const FunctionId ull_wide = add("ull-wide", true, 2, 16);
  const FunctionId ull_big = add("ull-big", true, 1, 64);

  WorkflowSpec spec;
  spec.name = "shape-matrix";
  spec.stages = {ull_a, ull_b, plain, ull_wide, ull_big};
  const WorkflowId id = *registry.add_workflow(spec);
  const WorkflowSpec& stored = **registry.find_workflow(id);
  ASSERT_EQ(stored.edges.size(), 4u);
  // uLL → uLL, same vCPUs, smaller downstream image: fusable.
  EXPECT_TRUE(stored.edges[0].fusable);
  // uLL → non-uLL boundary: never fusable.
  EXPECT_FALSE(stored.edges[1].fusable);
  // non-uLL upstream: never fusable.
  EXPECT_FALSE(stored.edges[2].fusable);
  // vCPU mismatch (2 vs 1): not co-locatable in one sandbox shape.
  EXPECT_FALSE(stored.edges[3].fusable);
}

TEST(WorkflowRegistryTest, PlannerSplitsAtNonFusableBoundaries) {
  // Edges: fusable, fusable, NOT, fusable → segments [0,3) fused,
  // [3,5) fused.
  WorkflowSpec spec;
  spec.stages = {0, 1, 2, 3, 4};
  spec.edges.resize(4);
  spec.edges[0].fusable = true;
  spec.edges[1].fusable = true;
  spec.edges[2].fusable = false;
  spec.edges[3].fusable = true;

  const auto plan = plan_fusion(spec);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].begin, 0u);
  EXPECT_EQ(plan[0].end, 3u);
  EXPECT_TRUE(plan[0].fused);
  EXPECT_EQ(plan[1].begin, 3u);
  EXPECT_EQ(plan[1].end, 5u);
  EXPECT_TRUE(plan[1].fused);

  // A hop cursor inside a fused run re-plans only the remainder: stages
  // [1,3) still fuse, [3,5) unchanged.
  const auto resumed = plan_fusion(spec, 1);
  ASSERT_EQ(resumed.size(), 2u);
  EXPECT_EQ(resumed[0].begin, 1u);
  EXPECT_EQ(resumed[0].end, 3u);
  EXPECT_TRUE(resumed[0].fused);

  // No fusable edges: every stage is its own singleton segment.
  WorkflowSpec loose;
  loose.stages = {0, 1, 2};
  loose.edges.resize(2);
  const auto singletons = plan_fusion(loose);
  ASSERT_EQ(singletons.size(), 3u);
  for (const ChainSegment& segment : singletons) {
    EXPECT_FALSE(segment.fused);
    EXPECT_EQ(segment.end, segment.begin + 1);
  }
}

TEST(WorkflowRegistryTest, ApplyEdgePlumbsHeadersAndGates) {
  workloads::Request request = request_with_header("orig");
  workloads::Response response;
  response.allowed = true;
  response.rewritten_header = "rewritten";
  WorkflowEdge forward;  // kForwardHeader
  EXPECT_TRUE(apply_edge(forward, response, request));
  EXPECT_EQ(request.header, "rewritten");

  // Empty rewritten_header passes the request through untouched.
  response.rewritten_header.clear();
  EXPECT_TRUE(apply_edge(forward, response, request));
  EXPECT_EQ(request.header, "rewritten");

  // kGated stops the chain when the stage said not-allowed.
  WorkflowEdge gated;
  gated.plumbing = EdgePlumbing::kGated;
  response.allowed = false;
  EXPECT_FALSE(apply_edge(gated, response, request));
  response.allowed = true;
  response.rewritten_header = "post-gate";
  EXPECT_TRUE(apply_edge(gated, response, request));
  EXPECT_EQ(request.header, "post-gate");
}

class WorkflowPlatformTest : public ::testing::Test {
 protected:
  static PlatformConfig make_config() {
    PlatformConfig config;
    config.num_cpus = 4;
    return config;
  }

  /// Register a 3-stage all-uLL same-shape chain (every edge fusable).
  WorkflowId register_fused_chain(Platform& platform) {
    stage_impls_.clear();
    WorkflowSpec spec;
    spec.name = "fused-chain";
    for (const char* name : {"wf-a", "wf-b", "wf-c"}) {
      auto impl = std::make_shared<CountingFunction>(name);
      stage_impls_.push_back(impl);
      spec.stages.push_back(*platform.registry().add(make_spec(impl, true)));
    }
    return *platform.registry().add_workflow(spec);
  }

  std::vector<std::shared_ptr<CountingFunction>> stage_impls_;
};

TEST_F(WorkflowPlatformTest, FusedChainRunsAsSingleResume) {
  Platform platform(make_config());
  const WorkflowId workflow = register_fused_chain(platform);
  const WorkflowSpec& spec = **platform.registry().find_workflow(workflow);
  const FunctionId entry = spec.stages.front();
  ASSERT_TRUE(platform.provision(entry, 1).is_ok());

  const auto chain = platform.invoke_chain(
      workflow, request_with_header("pkt"), StartMode::kHorse);
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->stages_executed, 3u);
  EXPECT_EQ(chain->fused_segments, 1u);
  EXPECT_EQ(chain->per_stage_dispatches, 0u);
  EXPECT_FALSE(chain->gated_early);
  EXPECT_EQ(chain->record.mode, StartMode::kHorse);
  // The whole chain's plumbing is visible on the final response.
  EXPECT_EQ(chain->record.response.rewritten_header, "pkt|wf-a|wf-b|wf-c");
  for (const auto& impl : stage_impls_) {
    EXPECT_EQ(impl->calls(), 1);
  }

  // One invocation, one resume, one pool take: the entry sandbox is back
  // in the pool and the interior stages never touched theirs.
  const PlatformCounters counters = platform.counters();
  EXPECT_EQ(counters.invocations, 1u);
  EXPECT_EQ(counters.horse, 1u);
  EXPECT_EQ(counters.chains_invoked, 1u);
  EXPECT_EQ(counters.chain_stages_executed, 3u);
  EXPECT_EQ(counters.fused_segments, 1u);
  EXPECT_EQ(counters.chain_fallback_stages, 0u);
  EXPECT_EQ(platform.warm_pool().available(entry), 1u);
  EXPECT_EQ(platform.warm_pool().available(spec.stages[1]), 0u);
  EXPECT_EQ(platform.warm_pool().available(spec.stages[2]), 0u);
}

TEST_F(WorkflowPlatformTest, FusedSegmentCountsOneArrivalForEntryOnly) {
  Platform platform(make_config());
  const WorkflowId workflow = register_fused_chain(platform);
  const WorkflowSpec& spec = **platform.registry().find_workflow(workflow);
  ASSERT_TRUE(platform.provision(spec.stages.front(), 1).is_ok());
  platform.advance_time(util::kMillisecond);
  ASSERT_TRUE(platform
                  .invoke_chain(workflow, request_with_header("pkt"),
                                StartMode::kHorse)
                  .has_value());

  // Pre-warm ranking sees ONE arrival, for the entry function only:
  // interior stages never took a pool slot, so they must not rank.
  const std::vector<FunctionId> ranked = platform.recently_invoked(8);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked.front(), spec.stages.front());
}

TEST_F(WorkflowPlatformTest, GatedEdgeCompletesChainEarly) {
  Platform platform(make_config());
  auto deny = std::make_shared<CountingFunction>("deny", 0, /*allow=*/false);
  auto after = std::make_shared<CountingFunction>("after");
  WorkflowSpec spec;
  spec.name = "gated";
  spec.stages = {*platform.registry().add(make_spec(deny, false)),
                 *platform.registry().add(make_spec(after, false))};
  spec.edges.resize(1);
  spec.edges[0].plumbing = EdgePlumbing::kGated;
  const WorkflowId workflow = *platform.registry().add_workflow(spec);

  const auto chain = platform.invoke_chain(
      workflow, request_with_header("pkt"), StartMode::kCold);
  ASSERT_TRUE(chain.has_value());
  EXPECT_TRUE(chain->gated_early);
  EXPECT_EQ(chain->stages_executed, 1u);
  EXPECT_EQ(deny->calls(), 1);
  EXPECT_EQ(after->calls(), 0);  // gated stages never run
  EXPECT_FALSE(chain->record.response.allowed);
  EXPECT_EQ(platform.counters().chains_gated_early, 1u);
}

TEST_F(WorkflowPlatformTest, HopCursorResumesAfterMidChainFailure) {
  PlatformConfig config = make_config();
  // No ladder: a start failure surfaces instead of demoting, which is the
  // clean way to strand a chain mid-way.
  config.degradation.enabled = false;
  Platform platform(config);

  auto s0 = std::make_shared<CountingFunction>("hop-s0");
  auto s1 = std::make_shared<CountingFunction>("hop-s1");
  auto s2 = std::make_shared<CountingFunction>("hop-s2");
  WorkflowSpec spec;
  spec.name = "hop-chain";
  for (const auto& impl : {s0, s1, s2}) {
    spec.stages.push_back(*platform.registry().add(make_spec(impl, false)));
  }
  const WorkflowId workflow = *platform.registry().add_workflow(spec);

  // Only stage 0 has a warm sandbox: the chain completes hop 0, then
  // fails to start stage 1 and surfaces with the cursor at the frontier.
  ASSERT_TRUE(platform.provision(spec.stages[0], 1).is_ok());
  InvokeControls controls;
  const auto stranded = platform.invoke_chain(
      workflow, request_with_header("pkt"), StartMode::kWarm, controls);
  ASSERT_FALSE(stranded.has_value());
  EXPECT_EQ(stranded.status().code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(controls.hop, 1u);
  EXPECT_EQ(controls.hops_completed, 1u);
  EXPECT_EQ(controls.reject, SubmissionReject::kNone);
  EXPECT_EQ(s0->calls(), 1);
  EXPECT_EQ(s1->calls(), 0);

  // Resume from the cursor (the re-dispatch path): stages 1 and 2 run,
  // stage 0 is NEVER re-executed.
  ASSERT_TRUE(platform.provision(spec.stages[1], 1).is_ok());
  ASSERT_TRUE(platform.provision(spec.stages[2], 1).is_ok());
  InvokeControls resume;
  resume.hop = controls.hop;
  const auto finished = platform.invoke_chain(
      workflow, request_with_header("pkt|hop-s0"), StartMode::kWarm, resume);
  ASSERT_TRUE(finished.has_value());
  EXPECT_EQ(finished->first_hop, 1u);
  EXPECT_EQ(finished->stages_executed, 2u);
  EXPECT_EQ(resume.hops_completed, 2u);
  EXPECT_EQ(finished->record.response.rewritten_header,
            "pkt|hop-s0|hop-s1|hop-s2");
  EXPECT_EQ(s0->calls(), 1);  // completed stages stay completed
  EXPECT_EQ(s1->calls(), 1);
  EXPECT_EQ(s2->calls(), 1);
}

TEST_F(WorkflowPlatformTest, HopCursorTracksCallerCallback) {
  Platform platform(make_config());
  const WorkflowId workflow = register_fused_chain(platform);
  const WorkflowSpec& spec = **platform.registry().find_workflow(workflow);
  ASSERT_TRUE(platform.provision(spec.stages.front(), 1).is_ok());

  std::vector<std::uint32_t> hops;
  std::vector<FunctionId> functions;
  InvokeControls controls;
  controls.on_hop = [&](std::uint32_t hop, FunctionId function) {
    hops.push_back(hop);
    functions.push_back(function);
  };
  ASSERT_TRUE(platform
                  .invoke_chain(workflow, request_with_header("pkt"),
                                StartMode::kHorse, controls)
                  .has_value());
  EXPECT_EQ(hops, (std::vector<std::uint32_t>{1, 2, 3}));
  // The cursor names the NEXT stage to run (the last stage again once
  // the chain is done) — what a host's in-flight ledger re-dispatches.
  EXPECT_EQ(functions,
            (std::vector<FunctionId>{spec.stages[1], spec.stages[2],
                                     spec.stages[2]}));
}

TEST_F(WorkflowPlatformTest, DeadlineSlackAccountedPerHop) {
  Platform platform(make_config());
  // Two plain stages, each spinning ~200 µs.
  auto slow_a = std::make_shared<CountingFunction>("slow-a",
                                                   200 * util::kMicrosecond);
  auto slow_b = std::make_shared<CountingFunction>("slow-b",
                                                   200 * util::kMicrosecond);
  WorkflowSpec spec;
  spec.name = "slow-chain";
  spec.stages = {*platform.registry().add(make_spec(slow_a, false)),
                 *platform.registry().add(make_spec(slow_b, false))};
  const WorkflowId workflow = *platform.registry().add_workflow(spec);
  ASSERT_TRUE(platform.provision(spec.stages[0], 1).is_ok());
  ASSERT_TRUE(platform.provision(spec.stages[1], 1).is_ok());

  // An already-expired deadline is refused before hop 0 runs anything.
  InvokeControls expired;
  expired.now = util::monotonic_now();
  expired.deadline = expired.now;  // 0 slack
  const auto refused = platform.invoke_chain(
      workflow, request_with_header("pkt"), StartMode::kWarm, expired);
  ASSERT_FALSE(refused.has_value());
  EXPECT_EQ(expired.reject, SubmissionReject::kDeadlineExpired);
  EXPECT_EQ(slow_a->calls(), 0);

  // 100 µs of slack admits hop 0 (≈200 µs of work) but must refuse hop 1:
  // the chain's one deadline is re-checked against remaining slack per
  // hop, not only at the front door.
  InvokeControls tight;
  tight.now = util::monotonic_now();
  tight.deadline = tight.now + 100 * util::kMicrosecond;
  const auto stranded = platform.invoke_chain(
      workflow, request_with_header("pkt"), StartMode::kWarm, tight);
  ASSERT_FALSE(stranded.has_value());
  EXPECT_EQ(stranded.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(tight.reject, SubmissionReject::kDeadlineExpired);
  EXPECT_EQ(tight.hop, 1u);
  EXPECT_EQ(slow_a->calls(), 1);
  EXPECT_EQ(slow_b->calls(), 0);  // never started after the slack ran out
}

TEST(WorkflowRegistryConcurrencyTest, ConcurrentAddAndFindUnderSharedLock) {
  FunctionRegistry registry;
  const auto impl = std::make_shared<CountingFunction>("base");
  const FunctionId fn = *registry.add(make_spec(impl, true));

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 64;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&registry, fn, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        WorkflowSpec spec;
        spec.name = "wf-" + std::to_string(w) + "-" + std::to_string(i);
        spec.stages = {fn, fn};
        ASSERT_TRUE(registry.add_workflow(std::move(spec)).has_value());
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&registry, fn, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Readers must always see a consistent registry: every id below
        // the published count resolves, and stored chains are intact.
        const auto count = static_cast<WorkflowId>(registry.workflow_count());
        for (WorkflowId id = 0; id < count; ++id) {
          const auto spec = registry.find_workflow(id);
          ASSERT_TRUE(spec.has_value());
          ASSERT_EQ((*spec)->stages.size(), 2u);
          ASSERT_EQ((*spec)->stages.front(), fn);
        }
        ASSERT_TRUE(registry.find(fn).has_value());
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    threads[w].join();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::size_t i = kWriters; i < threads.size(); ++i) {
    threads[i].join();
  }
  EXPECT_EQ(registry.workflow_count(),
            static_cast<std::size_t>(kWriters * kPerWriter));
}

TEST(WorkflowInvokerTest, ChainsFlowThroughTheDispatchFrontend) {
  Platform platform;
  auto a = std::make_shared<CountingFunction>("inv-a");
  auto b = std::make_shared<CountingFunction>("inv-b");
  WorkflowSpec spec;
  spec.name = "invoker-chain";
  spec.stages = {*platform.registry().add(make_spec(a, true)),
                 *platform.registry().add(make_spec(b, true))};
  const WorkflowId workflow = *platform.registry().add_workflow(spec);
  ASSERT_TRUE(platform.provision(spec.stages.front(), 1).is_ok());

  Invoker invoker(platform, 2);
  invoker.submit_chain(workflow, request_with_header("pkt"), StartMode::kHorse);
  invoker.submit_chain(workflow + 17, request_with_header("pkt"),
                       StartMode::kHorse);  // unknown workflow
  const auto outcomes = invoker.drain();
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& outcome : outcomes) {
    if (outcome.workflow == workflow) {
      EXPECT_TRUE(outcome.status.is_ok());
      EXPECT_EQ(outcome.chain_stages, 2u);
      EXPECT_EQ(outcome.record.response.rewritten_header, "pkt|inv-a|inv-b");
    } else {
      // Unknown workflows fail typed-NotFound at execution, same late
      // contract as an unknown function id.
      EXPECT_FALSE(outcome.status.is_ok());
      EXPECT_EQ(outcome.status.code(), util::StatusCode::kNotFound);
    }
  }
  EXPECT_EQ(a->calls(), 1);
  EXPECT_EQ(b->calls(), 1);
}

}  // namespace
}  // namespace horse::faas
