#include "faas/colocation.hpp"

#include <gtest/gtest.h>

namespace horse::faas {
namespace {

sim::CostModel default_costs() {
  return sim::CostModel::defaults(vmm::VmmProfile::firecracker());
}

ColocationParams short_params(ColocationMode mode, std::uint32_t ull_vcpus) {
  ColocationParams params;
  params.mode = mode;
  params.ull_vcpus = ull_vcpus;
  params.duration = 5 * util::kSecond;  // short window keeps tests fast
  params.num_cpus = 8;
  return params;
}

TEST(ColocationTest, DefaultArrivalsCoverWindow) {
  const auto arrivals =
      default_thumbnail_arrivals(30 * util::kSecond, /*seed=*/1);
  EXPECT_GT(arrivals.size(), 10u);
  for (const auto& arrival : arrivals.arrivals()) {
    EXPECT_LT(arrival.time, 30 * util::kSecond);
  }
}

TEST(ColocationTest, VanillaRunCompletesAllInvocations) {
  const auto costs = default_costs();
  ColocationExperiment experiment(
      short_params(ColocationMode::kVanilla, 4), costs);
  const auto result = experiment.run();
  EXPECT_GT(result.completed, 0u);
  EXPECT_GT(result.mean_ns, 0.0);
  EXPECT_GE(result.p99_ns, result.p95_ns);
  EXPECT_GE(result.p95_ns, result.mean_ns * 0.2);
  EXPECT_EQ(result.ull_triggers, 5u * 10u);  // 10 per second for 5 s
}

TEST(ColocationTest, HorseRunCompletesAllInvocations) {
  const auto costs = default_costs();
  ColocationExperiment experiment(short_params(ColocationMode::kHorse, 4),
                                  costs);
  const auto result = experiment.run();
  EXPECT_GT(result.completed, 0u);
  EXPECT_GT(result.mean_ns, 0.0);
}

TEST(ColocationTest, DeterministicPerSeed) {
  const auto costs = default_costs();
  const auto a =
      ColocationExperiment(short_params(ColocationMode::kHorse, 8), costs).run();
  const auto b =
      ColocationExperiment(short_params(ColocationMode::kHorse, 8), costs).run();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.mean_ns, b.mean_ns);
  EXPECT_DOUBLE_EQ(a.p99_ns, b.p99_ns);
}

TEST(ColocationTest, SameArrivalsSameCompletionCount) {
  const auto costs = default_costs();
  const auto arrivals = default_thumbnail_arrivals(5 * util::kSecond, 3);
  const auto vanilla = ColocationExperiment(
                           short_params(ColocationMode::kVanilla, 36), costs)
                           .run(arrivals);
  const auto horse =
      ColocationExperiment(short_params(ColocationMode::kHorse, 36), costs)
          .run(arrivals);
  EXPECT_EQ(vanilla.completed, horse.completed);
  EXPECT_EQ(vanilla.completed, arrivals.size());
}

TEST(ColocationTest, HorseMeanCloseToVanillaMean) {
  // §5.4: "no difference between the mean and 95th percentile latencies".
  // Allow a small tolerance — the channels differ slightly by construction.
  const auto costs = default_costs();
  const auto arrivals = default_thumbnail_arrivals(5 * util::kSecond, 3);
  const auto vanilla = ColocationExperiment(
                           short_params(ColocationMode::kVanilla, 36), costs)
                           .run(arrivals);
  const auto horse =
      ColocationExperiment(short_params(ColocationMode::kHorse, 36), costs)
          .run(arrivals);
  EXPECT_NEAR(horse.mean_ns / vanilla.mean_ns, 1.0, 0.05);
}

TEST(ColocationTest, PreemptionsOnlyMatterInExtremes) {
  const auto costs = default_costs();
  // HORSE with 36-vCPU uLL sandboxes: merge threads do preempt.
  const auto horse =
      ColocationExperiment(short_params(ColocationMode::kHorse, 36), costs)
          .run();
  EXPECT_GT(horse.preemptions, 0u);
}

}  // namespace
}  // namespace horse::faas
