#include "faas/keepalive_policy.hpp"

#include <gtest/gtest.h>

#include "faas/platform.hpp"
#include "workloads/array_filter.hpp"

namespace horse::faas {
namespace {

KeepAlivePolicyConfig minute_bins() {
  KeepAlivePolicyConfig config;
  config.bin_width = 60 * util::kSecond;
  config.num_bins = 240;
  config.min_samples = 4;
  return config;
}

TEST(KeepAlivePolicyTest, ValidatesConfig) {
  KeepAlivePolicyConfig config;
  config.bin_width = 0;
  EXPECT_THROW(HybridHistogramPolicy{config}, std::invalid_argument);
  config = {};
  config.num_bins = 0;
  EXPECT_THROW(HybridHistogramPolicy{config}, std::invalid_argument);
  config = {};
  config.head_percentile = 99.0;
  config.tail_percentile = 5.0;
  EXPECT_THROW(HybridHistogramPolicy{config}, std::invalid_argument);
}

TEST(KeepAlivePolicyTest, UnknownFunctionFallsBack) {
  HybridHistogramPolicy policy(minute_bins());
  const auto decision = policy.decide(42);
  EXPECT_FALSE(decision.from_histogram);
  EXPECT_EQ(decision.keep_alive, policy.config().fallback_keep_alive);
  EXPECT_EQ(decision.prewarm_window, 0);
}

TEST(KeepAlivePolicyTest, TooFewSamplesFallsBack) {
  HybridHistogramPolicy policy(minute_bins());
  policy.record_invocation(0, 0);
  policy.record_invocation(0, 60 * util::kSecond);
  EXPECT_EQ(policy.sample_count(0), 1u);  // one gap from two arrivals
  EXPECT_FALSE(policy.decide(0).from_histogram);
}

TEST(KeepAlivePolicyTest, RegularPatternTightensWindows) {
  HybridHistogramPolicy policy(minute_bins());
  // Strict 5-minute period, 20 gaps.
  for (int i = 0; i <= 20; ++i) {
    policy.record_invocation(0, static_cast<util::Nanos>(i) * 5 * 60 *
                                    util::kSecond);
  }
  const auto decision = policy.decide(0);
  EXPECT_TRUE(decision.from_histogram);
  // All mass in the 5-minute bin: pre-warm just under 5 min (head cutoff
  // 6 min bin edge x 0.9 for a 5-min gap falls in bin 5 → edge 6 min).
  EXPECT_GT(decision.prewarm_window, 4 * 60 * util::kSecond);
  // Keep-alive covers the remaining window but is far below 4 hours.
  EXPECT_LT(decision.keep_alive, 10 * 60 * util::kSecond);
  EXPECT_GT(decision.keep_alive, 0);
}

TEST(KeepAlivePolicyTest, FrequentInvocationsGiveZeroPrewarm) {
  HybridHistogramPolicy policy(minute_bins());
  // Sub-minute gaps: everything lands in bin 0.
  for (int i = 0; i < 30; ++i) {
    policy.record_invocation(0,
                             static_cast<util::Nanos>(i) * 10 * util::kSecond);
  }
  const auto decision = policy.decide(0);
  ASSERT_TRUE(decision.from_histogram);
  // head cutoff = 1 bin edge (1 min) * 0.9; keep-alive small too.
  EXPECT_LE(decision.prewarm_window, 60 * util::kSecond);
  EXPECT_LE(decision.keep_alive, 5 * 60 * util::kSecond);
}

TEST(KeepAlivePolicyTest, OobDominatedFallsBack) {
  KeepAlivePolicyConfig config = minute_bins();
  config.num_bins = 10;  // anything over 10 minutes is OOB
  HybridHistogramPolicy policy(config);
  for (int i = 0; i < 20; ++i) {
    // 1-hour gaps: all OOB.
    policy.record_invocation(0, static_cast<util::Nanos>(i) * 3600 *
                                    util::kSecond);
  }
  EXPECT_EQ(policy.oob_count(0), 19u);
  const auto decision = policy.decide(0);
  EXPECT_FALSE(decision.from_histogram);
  EXPECT_EQ(decision.keep_alive, config.fallback_keep_alive);
}

TEST(KeepAlivePolicyTest, BimodalPatternSpansBothModes) {
  HybridHistogramPolicy policy(minute_bins());
  util::Nanos now = 0;
  // Alternating 2-minute and 30-minute gaps.
  for (int i = 0; i < 20; ++i) {
    now += (i % 2 == 0 ? 2 : 30) * 60 * util::kSecond;
    policy.record_invocation(0, now);
  }
  const auto decision = policy.decide(0);
  ASSERT_TRUE(decision.from_histogram);
  // Pre-warm keyed to the short mode, keep-alive reaching the long mode.
  EXPECT_LE(decision.prewarm_window, 3 * 60 * util::kSecond);
  EXPECT_GE(decision.prewarm_window + decision.keep_alive,
            30 * 60 * util::kSecond);
}

TEST(KeepAlivePolicyTest, FunctionsTrackedIndependently) {
  HybridHistogramPolicy policy(minute_bins());
  for (int i = 0; i < 10; ++i) {
    policy.record_invocation(0, static_cast<util::Nanos>(i) * 60 * util::kSecond);
    policy.record_invocation(1, static_cast<util::Nanos>(i) * 3600 *
                                    util::kSecond);
  }
  EXPECT_EQ(policy.sample_count(0), 9u);
  EXPECT_EQ(policy.sample_count(1), 9u);
  const auto fast = policy.decide(0);
  const auto slow = policy.decide(1);
  ASSERT_TRUE(fast.from_histogram);
  ASSERT_TRUE(slow.from_histogram);
  EXPECT_LT(fast.prewarm_window + fast.keep_alive,
            slow.prewarm_window + slow.keep_alive);
}

TEST(KeepAlivePolicyTest, PlatformIntegrationAdaptsEviction) {
  PlatformConfig config;
  config.num_cpus = 4;
  config.adaptive_keep_alive = true;
  config.keep_alive_policy.min_samples = 2;
  Platform platform(config);

  FunctionSpec spec;
  spec.name = "filter";
  spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = true;
  const auto id = *platform.registry().add(std::move(spec));

  workloads::Request request;
  request.payload = {1, 2, 3};
  request.threshold = 1;

  // Three invocations 30 s apart: a tight pattern the histogram learns.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(platform.invoke(id, request, StartMode::kCold).has_value());
    platform.advance_time(30 * util::kSecond);
  }
  const auto decision = platform.keep_alive_policy().decide(id);
  ASSERT_TRUE(decision.from_histogram);
  // The pool override must follow the decision on the next advance.
  platform.advance_time(1);
  EXPECT_EQ(platform.warm_pool().keep_alive_for(id), decision.keep_alive);
  // With a ~1-minute learned window, a 2-hour idle evicts the sandbox.
  platform.advance_time(2 * 3600 * util::kSecond);
  EXPECT_EQ(platform.warm_pool().available(id), 0u);
}

}  // namespace
}  // namespace horse::faas
