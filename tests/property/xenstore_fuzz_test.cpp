// XenStore fuzz: random interleavings of direct writes, transactions, and
// removals, validated against a flat reference map and the store's own
// transactional guarantees.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>

#include "util/rng.hpp"
#include "vmm/xenstore.hpp"

namespace horse::vmm {
namespace {

class XenStoreFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XenStoreFuzzTest, RandomOpsMatchReferenceMap) {
  util::Xoshiro256 rng(GetParam());
  XenStore store;
  std::map<std::string, std::string> reference;

  auto random_path = [&] {
    return "/d/" + std::to_string(rng.bounded(8)) + "/" +
           std::to_string(rng.bounded(4));
  };

  for (int step = 0; step < 600; ++step) {
    switch (rng.bounded(5)) {
      case 0: {  // direct write
        const auto path = random_path();
        const auto value = std::to_string(rng.bounded(1000));
        ASSERT_TRUE(store.write(path, value).is_ok());
        reference[path] = value;
        break;
      }
      case 1: {  // read
        const auto path = random_path();
        const auto value = store.read(path);
        const auto it = reference.find(path);
        ASSERT_EQ(value.has_value(), it != reference.end()) << path;
        if (value.has_value()) {
          ASSERT_EQ(*value, it->second);
        }
        break;
      }
      case 2: {  // recursive remove of a domain directory
        const auto dir = "/d/" + std::to_string(rng.bounded(8));
        const bool existed =
            std::any_of(reference.begin(), reference.end(),
                        [&](const auto& kv) {
                          return kv.first.rfind(dir + "/", 0) == 0 ||
                                 kv.first == dir;
                        });
        const auto status = store.remove(dir);
        ASSERT_EQ(status.is_ok(), existed) << dir;
        if (existed) {
          for (auto it = reference.begin(); it != reference.end();) {
            if (it->first.rfind(dir + "/", 0) == 0 || it->first == dir) {
              it = reference.erase(it);
            } else {
              ++it;
            }
          }
        }
        break;
      }
      case 3: {  // clean transaction: isolated then committed atomically
        const auto tx = store.tx_begin();
        std::map<std::string, std::string> staged;
        const auto writes = rng.bounded(4) + 1;
        for (std::uint64_t i = 0; i < writes; ++i) {
          const auto path = random_path();
          const auto value = "tx-" + std::to_string(rng.bounded(1000));
          ASSERT_TRUE(store.tx_write(tx, path, value).is_ok());
          staged[path] = value;
        }
        ASSERT_TRUE(store.tx_commit(tx).is_ok());
        for (auto& [path, value] : staged) {
          reference[path] = value;
        }
        break;
      }
      case 4: {  // conflicted transaction: must change nothing
        const auto path = random_path();
        // Seed the path so the transactional read sees something.
        ASSERT_TRUE(store.write(path, "before").is_ok());
        reference[path] = "before";
        const auto tx = store.tx_begin();
        (void)store.tx_read(tx, path);
        ASSERT_TRUE(store.write(path, "outside").is_ok());  // conflict
        reference[path] = "outside";
        ASSERT_TRUE(store.tx_write(tx, path, "inside").is_ok());
        ASSERT_EQ(store.tx_commit(tx).code(),
                  util::StatusCode::kFailedPrecondition);
        break;
      }
    }
  }

  // Final state equivalence.
  ASSERT_EQ(store.size(), reference.size());
  for (const auto& [path, value] : reference) {
    const auto stored = store.read(path);
    ASSERT_TRUE(stored.has_value()) << path;
    ASSERT_EQ(*stored, value) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XenStoreFuzzTest,
                         ::testing::Values(3u, 17u, 404u, 9001u, 123456u));

}  // namespace
}  // namespace horse::vmm
