// Property-based sweeps for 𝒫²𝒮ℳ: for any sorted A and B, merging must
// produce exactly std::merge's multiset in sorted order, regardless of
// list sizes, credit ranges (tie density), or executor.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/merge_crew.hpp"
#include "core/p2sm.hpp"
#include "util/rng.hpp"

namespace horse::core {
namespace {

enum class ExecutorKind { kSequential, kParallel };

struct P2smCase {
  std::size_t a_size;
  std::size_t b_size;
  std::uint64_t credit_range;  // small range = many ties
  ExecutorKind executor;
};

std::string case_name(const ::testing::TestParamInfo<P2smCase>& info) {
  const auto& param = info.param;
  std::string name = "A" + std::to_string(param.a_size) + "_B" +
                     std::to_string(param.b_size) + "_R" +
                     std::to_string(param.credit_range) + "_";
  name += param.executor == ExecutorKind::kSequential ? "seq" : "par";
  return name;
}

class P2smPropertyTest : public ::testing::TestWithParam<P2smCase> {};

TEST_P(P2smPropertyTest, MergeEqualsReferenceMerge) {
  const auto& param = GetParam();
  util::Xoshiro256 rng(1000 + param.a_size * 7 + param.b_size * 13 +
                       param.credit_range);

  SequentialMergeExecutor sequential;
  std::unique_ptr<ParallelMergeCrew> crew;
  MergeExecutor* executor = &sequential;
  if (param.executor == ExecutorKind::kParallel) {
    crew = std::make_unique<ParallelMergeCrew>(4);
    executor = crew.get();
  }

  for (int round = 0; round < 10; ++round) {
    std::vector<std::unique_ptr<sched::Vcpu>> storage;
    sched::VcpuList a;
    sched::RunQueue b(0);
    std::vector<sched::Credit> expected;

    for (std::size_t i = 0; i < param.b_size; ++i) {
      auto vcpu = std::make_unique<sched::Vcpu>();
      vcpu->credit = static_cast<sched::Credit>(rng.bounded(param.credit_range));
      expected.push_back(vcpu->credit);
      util::LockGuard guard(b.lock());
      b.insert_sorted(*vcpu);
      storage.push_back(std::move(vcpu));
    }
    std::vector<sched::Credit> a_credits;
    for (std::size_t i = 0; i < param.a_size; ++i) {
      a_credits.push_back(
          static_cast<sched::Credit>(rng.bounded(param.credit_range)));
    }
    std::sort(a_credits.begin(), a_credits.end());
    for (const sched::Credit credit : a_credits) {
      auto vcpu = std::make_unique<sched::Vcpu>();
      vcpu->credit = credit;
      expected.push_back(credit);
      a.push_back(*vcpu);
      storage.push_back(std::move(vcpu));
    }
    std::sort(expected.begin(), expected.end());

    P2smIndex index;
    index.rebuild(a, b);

    // Invariants of the precomputed structures.
    ASSERT_EQ(index.array_b_size(), param.b_size);
    std::size_t run_total = 0;
    P2smIndex::AnchorIndex prev_anchor =
        std::numeric_limits<P2smIndex::AnchorIndex>::min();
    for (const auto& [anchor, run] : index.runs()) {
      ASSERT_GT(anchor, prev_anchor);  // strictly increasing anchors
      ASSERT_GE(anchor, P2smIndex::kBeforeHead);
      ASSERT_LT(anchor, static_cast<P2smIndex::AnchorIndex>(param.b_size));
      ASSERT_GE(run.count, 1u);
      ASSERT_NE(run.head, nullptr);
      ASSERT_NE(run.tail, nullptr);
      run_total += run.count;
      prev_anchor = anchor;
    }
    ASSERT_EQ(run_total, param.a_size);

    ASSERT_TRUE(index.merge(a, b, *executor).is_ok());

    std::vector<sched::Credit> actual;
    for (const sched::Vcpu& vcpu : b.list()) {
      actual.push_back(vcpu.credit);
    }
    ASSERT_EQ(actual, expected) << "round " << round;
    ASSERT_EQ(b.size(), expected.size());
    ASSERT_TRUE(b.is_sorted());
    ASSERT_EQ(a.size(), 0u);
    b.list().clear();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, P2smPropertyTest,
    ::testing::Values(
        // Corner sizes.
        P2smCase{1, 0, 100, ExecutorKind::kSequential},
        P2smCase{1, 1, 100, ExecutorKind::kSequential},
        P2smCase{36, 0, 100, ExecutorKind::kSequential},
        P2smCase{1, 128, 100, ExecutorKind::kSequential},
        // Paper-shaped: up to 36 vCPUs into a populated queue.
        P2smCase{36, 64, 1'000, ExecutorKind::kSequential},
        P2smCase{36, 64, 1'000, ExecutorKind::kParallel},
        // Tie-dense (range 4 over 100 elements).
        P2smCase{50, 50, 4, ExecutorKind::kSequential},
        P2smCase{50, 50, 4, ExecutorKind::kParallel},
        // All-distinct (huge range).
        P2smCase{64, 64, 1'000'000'000, ExecutorKind::kSequential},
        // Large lists.
        P2smCase{512, 1024, 10'000, ExecutorKind::kSequential},
        P2smCase{512, 1024, 10'000, ExecutorKind::kParallel},
        P2smCase{1024, 64, 500, ExecutorKind::kSequential}),
    case_name);

/// Randomized sweep: 1000+ independently seeded (A, B) shapes, each merged
/// once and compared against std::merge of the credit sequences. Sizes and
/// tie density are drawn per seed, so the sweep covers the corner cases the
/// fixed table above cannot enumerate (empty A runs before the head, long
/// tie chains straddling a run boundary, single-element B, ...). The same
/// shapes are replayed through both executors; the crew is constructed once
/// and reused — arming it per merge would dominate the runtime and this
/// sweep is about merge correctness, not handshake latency (the stress
/// suite owns that).
class P2smRandomizedSweepTest : public ::testing::TestWithParam<ExecutorKind> {
};

TEST_P(P2smRandomizedSweepTest, ThousandSeedsMatchStdMerge) {
  constexpr std::uint64_t kSeeds = 1024;
  SequentialMergeExecutor sequential;
  std::unique_ptr<ParallelMergeCrew> crew;
  MergeExecutor* executor = &sequential;
  if (GetParam() == ExecutorKind::kParallel) {
    crew = std::make_unique<ParallelMergeCrew>(3);
    crew->arm();  // resume-burst mode: skip the per-merge wake cost
    executor = crew.get();
  }

  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    util::Xoshiro256 rng(0x5EEDBA5E * seed + seed);
    const std::size_t a_size = 1 + rng.bounded(24);
    const std::size_t b_size = rng.bounded(48);
    // Mix tie-dense and sparse credit spaces across seeds.
    const std::uint64_t credit_range =
        (seed % 4 == 0) ? 1 + rng.bounded(6) : 1 + rng.bounded(5'000);

    std::vector<std::unique_ptr<sched::Vcpu>> storage;
    sched::VcpuList a;
    sched::RunQueue b(0);
    std::vector<sched::Credit> a_credits;
    std::vector<sched::Credit> b_credits;

    for (std::size_t i = 0; i < b_size; ++i) {
      auto vcpu = std::make_unique<sched::Vcpu>();
      vcpu->credit = static_cast<sched::Credit>(rng.bounded(credit_range));
      b_credits.push_back(vcpu->credit);
      util::LockGuard guard(b.lock());
      b.insert_sorted(*vcpu);
      storage.push_back(std::move(vcpu));
    }
    for (std::size_t i = 0; i < a_size; ++i) {
      a_credits.push_back(
          static_cast<sched::Credit>(rng.bounded(credit_range)));
    }
    std::sort(a_credits.begin(), a_credits.end());
    for (const sched::Credit credit : a_credits) {
      auto vcpu = std::make_unique<sched::Vcpu>();
      vcpu->credit = credit;
      a.push_back(*vcpu);
      storage.push_back(std::move(vcpu));
    }

    std::sort(b_credits.begin(), b_credits.end());
    std::vector<sched::Credit> expected;
    std::merge(a_credits.begin(), a_credits.end(), b_credits.begin(),
               b_credits.end(), std::back_inserter(expected));

    P2smIndex index;
    index.rebuild(a, b);
    ASSERT_TRUE(index.merge(a, b, *executor).is_ok()) << "seed " << seed;

    std::vector<sched::Credit> actual;
    for (const sched::Vcpu& vcpu : b.list()) {
      actual.push_back(vcpu.credit);
    }
    ASSERT_EQ(actual, expected) << "seed " << seed;
    ASSERT_TRUE(b.check_invariants(/*require_sorted=*/true).is_ok())
        << "seed " << seed;
    ASSERT_EQ(a.size(), 0u) << "seed " << seed;
    b.list().clear();
  }
  if (crew) {
    crew->disarm();
  }
}

INSTANTIATE_TEST_SUITE_P(Executors, P2smRandomizedSweepTest,
                         ::testing::Values(ExecutorKind::kSequential,
                                           ExecutorKind::kParallel),
                         [](const auto& info) {
                           return info.param == ExecutorKind::kSequential
                                      ? std::string("seq")
                                      : std::string("par");
                         });

/// Incremental-maintenance property: a sequence of random insert/remove
/// operations on A must leave the index equivalent to a fresh rebuild.
class P2smIncrementalPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(P2smIncrementalPropertyTest, IncrementalMatchesRebuild) {
  util::Xoshiro256 rng(GetParam());
  std::vector<std::unique_ptr<sched::Vcpu>> storage;
  sched::VcpuList a;
  sched::RunQueue b(0);

  for (int i = 0; i < 20; ++i) {
    auto vcpu = std::make_unique<sched::Vcpu>();
    vcpu->credit = static_cast<sched::Credit>(rng.bounded(200));
    util::LockGuard guard(b.lock());
    b.insert_sorted(*vcpu);
    storage.push_back(std::move(vcpu));
  }

  P2smIndex index;
  index.rebuild(a, b);  // empty A to start

  std::vector<sched::Vcpu*> in_a;
  for (int op = 0; op < 200; ++op) {
    const bool insert = in_a.empty() || rng.bounded(3) != 0;
    if (insert) {
      auto vcpu = std::make_unique<sched::Vcpu>();
      vcpu->credit = static_cast<sched::Credit>(rng.bounded(200));
      ASSERT_TRUE(index.insert_into_a(a, *vcpu, b).is_ok());
      in_a.push_back(vcpu.get());
      storage.push_back(std::move(vcpu));
    } else {
      const auto victim = rng.bounded(in_a.size());
      ASSERT_TRUE(index.remove_from_a(a, *in_a[victim]).is_ok());
      in_a.erase(in_a.begin() + static_cast<std::ptrdiff_t>(victim));
    }

    // A stays sorted.
    sched::Credit prev = std::numeric_limits<sched::Credit>::min();
    std::size_t count = 0;
    for (const sched::Vcpu& vcpu : a) {
      ASSERT_GE(vcpu.credit, prev);
      prev = vcpu.credit;
      ++count;
    }
    ASSERT_EQ(count, in_a.size());

    // Index equivalent to a fresh rebuild over the same A/B.
    P2smIndex reference;
    sched::VcpuList a_copy;  // rebuild() only reads A, reuse it directly
    reference.rebuild(a, b);
    ASSERT_EQ(reference.run_count(), index.run_count()) << "op " << op;
    auto expected_it = reference.runs().begin();
    for (const auto& [anchor, run] : index.runs()) {
      ASSERT_EQ(anchor, expected_it->anchor);
      ASSERT_EQ(run.count, expected_it->run.count);
      ASSERT_EQ(run.head, expected_it->run.head);
      ASSERT_EQ(run.tail, expected_it->run.tail);
      ++expected_it;
    }
  }
  b.list().clear();
  a.clear();
}

INSTANTIATE_TEST_SUITE_P(Seeds, P2smIncrementalPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 77u, 1234u));

}  // namespace
}  // namespace horse::core
