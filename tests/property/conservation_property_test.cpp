// Conservation and invariance properties across the simulation plane.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "faas/colocation.hpp"
#include "metrics/histogram.hpp"
#include "sched/credit2.hpp"
#include "sim/cpu_executor.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace horse {
namespace {

/// Work conservation: however tasks are placed, preempted, and requeued,
/// the summed vCPU cpu_time equals the total submitted work.
class WorkConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkConservationTest, CpuTimeEqualsSubmittedWork) {
  util::Xoshiro256 rng(GetParam());
  sim::Simulation sim;
  sched::CpuTopology topology(3);
  topology.reserve_for_ull(2);
  sched::Credit2Scheduler scheduler(topology);
  sim::CpuExecutor executor(sim, scheduler);

  std::vector<std::unique_ptr<sched::Vcpu>> vcpus;
  util::Nanos total_work = 0;
  const int tasks = 30 + static_cast<int>(rng.bounded(30));
  int completed = 0;
  for (int i = 0; i < tasks; ++i) {
    auto vcpu = std::make_unique<sched::Vcpu>();
    vcpu->id = static_cast<sched::VcpuId>(i);
    vcpu->credit = static_cast<sched::Credit>(rng.bounded(1'000'000));
    const auto work = static_cast<util::Nanos>(rng.bounded(5'000'000) + 1);
    const auto cpu = static_cast<sched::CpuId>(rng.bounded(3));
    total_work += work;
    const util::Nanos when = static_cast<util::Nanos>(rng.bounded(1'000'000));
    sched::Vcpu* raw = vcpu.get();
    sim.schedule_at(when, [&executor, raw, cpu, work, &completed] {
      executor.submit(*raw, cpu, work, [&completed](sched::Vcpu&) {
        ++completed;
      });
    });
    vcpus.push_back(std::move(vcpu));
    // Sprinkle blackouts (resume stalls): they delay but never destroy work.
    if (i % 7 == 0) {
      const util::Nanos bt = static_cast<util::Nanos>(rng.bounded(900'000));
      sim.schedule_at(bt, [&executor, &rng] {
        executor.block_cpu(static_cast<sched::CpuId>(rng.bounded(3)), 10'000);
      });
    }
  }
  sim.run();

  ASSERT_EQ(completed, tasks);
  const util::Nanos accounted = std::accumulate(
      vcpus.begin(), vcpus.end(), util::Nanos{0},
      [](util::Nanos sum, const auto& vcpu) { return sum + vcpu->cpu_time; });
  ASSERT_EQ(accounted, total_work) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkConservationTest,
                         ::testing::Values(1u, 5u, 23u, 99u, 777u));

/// Histogram merge property: merging per-shard histograms is equivalent
/// (within bucket resolution) to recording everything into one.
class HistogramMergePropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramMergePropertyTest, ShardedEqualsMonolithic) {
  util::Xoshiro256 rng(GetParam());
  metrics::Histogram merged;
  metrics::Histogram monolithic;
  metrics::Histogram shards[4];
  for (int i = 0; i < 20'000; ++i) {
    const auto value = static_cast<util::Nanos>(rng.bounded(100'000'000));
    monolithic.record(value);
    shards[rng.bounded(4)].record(value);
  }
  for (auto& shard : shards) {
    merged.merge(shard);
  }
  ASSERT_EQ(merged.count(), monolithic.count());
  ASSERT_EQ(merged.min(), monolithic.min());
  ASSERT_EQ(merged.max(), monolithic.max());
  ASSERT_DOUBLE_EQ(merged.mean(), monolithic.mean());
  for (const double q : {0.5, 0.9, 0.99}) {
    ASSERT_EQ(merged.quantile(q), monolithic.quantile(q)) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramMergePropertyTest,
                         ::testing::Values(2u, 11u, 31u));

/// §4.2 end-to-end invariance: across the vCPU sweep, HORSE's colocation
/// run reports exactly the same DVFS energy as vanilla — the coalesced
/// load updates are observationally equivalent inputs to the governor.
class EnergyParityTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EnergyParityTest, ColocationEnergyIdentical) {
  const auto costs = sim::CostModel::defaults(vmm::VmmProfile::firecracker());
  const auto arrivals =
      faas::default_thumbnail_arrivals(3 * util::kSecond, 13);
  faas::ColocationParams params;
  params.duration = 3 * util::kSecond;
  params.num_cpus = 8;
  params.ull_vcpus = GetParam();

  params.mode = faas::ColocationMode::kVanilla;
  const auto vanilla = faas::ColocationExperiment(params, costs).run(arrivals);
  params.mode = faas::ColocationMode::kHorse;
  const auto horse = faas::ColocationExperiment(params, costs).run(arrivals);

  EXPECT_GT(vanilla.energy_joules, 0.0);
  EXPECT_NEAR(horse.energy_joules / vanilla.energy_joules, 1.0, 0.02);
  EXPECT_NEAR(horse.mean_freq_khz / vanilla.mean_freq_khz, 1.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(VcpuSweep, EnergyParityTest,
                         ::testing::Values(1u, 8u, 36u));

}  // namespace
}  // namespace horse
