// End-state equivalence between the vanilla and HORSE resume paths,
// parameterized over the paper's vCPU sweep: after resume, both must leave
// (a) every vCPU of the sandbox runnable on some queue, (b) each queue
// credit-sorted, and — when forced onto a single queue — (c) the same
// queue load. "HORSE ... with no impact on functions" is exactly this
// observational equivalence.
#include <gtest/gtest.h>

#include <memory>

#include "core/horse_resume.hpp"
#include "vmm/resume_engine.hpp"

namespace horse::core {
namespace {

class ResumeEquivalenceTest : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  static std::unique_ptr<vmm::Sandbox> make_sandbox(sched::SandboxId id,
                                                    std::uint32_t vcpus,
                                                    bool ull) {
    vmm::SandboxConfig config;
    config.name = "sweep";
    config.num_vcpus = vcpus;
    config.memory_mb = 1;
    config.ull = ull;
    auto sandbox = std::make_unique<vmm::Sandbox>(id, config);
    // Distinct, shuffled credits so sorting is observable.
    for (std::uint32_t i = 0; i < vcpus; ++i) {
      sandbox->vcpu(i).credit =
          static_cast<sched::Credit>((i * 37) % (vcpus * 3 + 1));
    }
    return sandbox;
  }
};

TEST_P(ResumeEquivalenceTest, HorseLeavesSameObservableState) {
  const std::uint32_t vcpus = GetParam();

  // HORSE side: topology with one reserved queue.
  sched::CpuTopology horse_topo(4);
  HorseResumeEngine horse(horse_topo, vmm::VmmProfile::firecracker());
  auto ull = make_sandbox(1, vcpus, true);
  ASSERT_TRUE(horse.start(*ull).is_ok());
  ASSERT_TRUE(horse.pause(*ull).is_ok());
  horse_topo.queue(3).set_load_for_test(64.0);
  ASSERT_TRUE(horse.resume(*ull).is_ok());

  // Vanilla side: same vCPU count forced onto one queue.
  sched::CpuTopology vanilla_topo(4);
  vmm::ResumeEngine vanilla(vanilla_topo, vmm::VmmProfile::firecracker());
  auto plain = make_sandbox(2, vcpus, false);
  ASSERT_TRUE(vanilla.start(*plain).is_ok());
  ASSERT_TRUE(vanilla.pause(*plain).is_ok());
  vanilla_topo.queue(0).set_load_for_test(64.0);
  vanilla_topo.queue(1).set_load_for_test(1e12);
  vanilla_topo.queue(2).set_load_for_test(1e12);
  vanilla_topo.queue(3).set_load_for_test(1e12);
  ASSERT_TRUE(vanilla.resume(*plain).is_ok());

  // (a) all vCPUs queued.
  EXPECT_EQ(horse_topo.queue(3).size(), vcpus);
  EXPECT_EQ(vanilla_topo.queue(0).size(), vcpus);

  // (b) queues sorted, same credit sequence.
  EXPECT_TRUE(horse_topo.queue(3).is_sorted());
  EXPECT_TRUE(vanilla_topo.queue(0).is_sorted());
  std::vector<sched::Credit> horse_credits;
  for (const sched::Vcpu& vcpu : horse_topo.queue(3).list()) {
    horse_credits.push_back(vcpu.credit);
  }
  std::vector<sched::Credit> vanilla_credits;
  for (const sched::Vcpu& vcpu : vanilla_topo.queue(0).list()) {
    vanilla_credits.push_back(vcpu.credit);
  }
  EXPECT_EQ(horse_credits, vanilla_credits);

  // (c) identical load (coalesced vs iterative).
  EXPECT_NEAR(horse_topo.queue(3).load(), vanilla_topo.queue(0).load(), 1e-6);

  // Sandboxes both running.
  EXPECT_EQ(ull->state(), vmm::SandboxState::kRunning);
  EXPECT_EQ(plain->state(), vmm::SandboxState::kRunning);

  ASSERT_TRUE(horse.destroy(*ull).is_ok());
  ASSERT_TRUE(vanilla.destroy(*plain).is_ok());
}

TEST_P(ResumeEquivalenceTest, HorseCyclesPreserveVcpuSet) {
  const std::uint32_t vcpus = GetParam();
  sched::CpuTopology topo(4);
  HorseResumeEngine engine(topo, vmm::VmmProfile::firecracker());
  auto sandbox = make_sandbox(1, vcpus, true);
  ASSERT_TRUE(engine.start(*sandbox).is_ok());
  for (int cycle = 0; cycle < 5; ++cycle) {
    ASSERT_TRUE(engine.pause(*sandbox).is_ok());
    ASSERT_EQ(sandbox->merge_vcpus().size(), vcpus);
    ASSERT_TRUE(engine.resume(*sandbox).is_ok());
    // Exactly the sandbox's vCPUs on the reserved queue, each linked once.
    ASSERT_EQ(topo.queue(3).size(), vcpus);
    std::size_t found = 0;
    for (const sched::Vcpu& queued : topo.queue(3).list()) {
      ASSERT_EQ(queued.sandbox, sandbox->id());
      ++found;
    }
    ASSERT_EQ(found, vcpus);
  }
  ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
}

INSTANTIATE_TEST_SUITE_P(VcpuSweep, ResumeEquivalenceTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 12u, 16u, 24u,
                                           32u, 36u));

}  // namespace
}  // namespace horse::core
