// Lifecycle fuzzing: random operation sequences against the HORSE engine,
// checked against a trivial reference state machine. Any divergence —
// an op succeeding that should fail, failing that should succeed, or a
// broken queue invariant afterwards — is a bug in the engine's state
// handling that directed tests are unlikely to reach.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/horse_resume.hpp"
#include "util/rng.hpp"

namespace horse {
namespace {

enum class Op : std::uint8_t {
  kStart,
  kPause,
  kResume,
  kHotplug,
  kUnplug,
  kDestroy,
  kRefresh,
  kCount,
};

/// Reference model: what state each sandbox should be in.
struct Model {
  vmm::SandboxState state = vmm::SandboxState::kCreated;
  std::uint32_t vcpus = 0;
};

class LifecycleFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LifecycleFuzzTest, RandomOpSequencesMatchModel) {
  util::Xoshiro256 rng(GetParam());
  sched::CpuTopology topology(6);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker());

  constexpr int kSandboxes = 4;
  std::vector<std::unique_ptr<vmm::Sandbox>> sandboxes;
  std::vector<Model> models(kSandboxes);
  for (int i = 0; i < kSandboxes; ++i) {
    vmm::SandboxConfig config;
    config.name = "fuzz";
    config.num_vcpus = 1 + static_cast<std::uint32_t>(rng.bounded(4));
    config.memory_mb = 1;
    config.ull = rng.bounded(2) == 0;
    models[static_cast<std::size_t>(i)].vcpus = config.num_vcpus;
    sandboxes.push_back(std::make_unique<vmm::Sandbox>(
        static_cast<sched::SandboxId>(i + 1), config));
  }

  auto expected_ok = [](const Model& model, Op op) {
    switch (op) {
      case Op::kStart:
        return model.state == vmm::SandboxState::kCreated;
      case Op::kPause:
        return model.state == vmm::SandboxState::kRunning;
      case Op::kResume:
        return model.state == vmm::SandboxState::kPaused;
      case Op::kHotplug:
        return model.state == vmm::SandboxState::kPaused;
      case Op::kUnplug:
        return model.state == vmm::SandboxState::kPaused && model.vcpus > 1;
      case Op::kDestroy:
        return model.state != vmm::SandboxState::kDestroyed;
      default:
        return true;
    }
  };

  for (int step = 0; step < 400; ++step) {
    const auto victim = rng.bounded(kSandboxes);
    const auto op = static_cast<Op>(rng.bounded(static_cast<std::uint64_t>(Op::kCount)));
    vmm::Sandbox& sandbox = *sandboxes[victim];
    Model& model = models[victim];

    util::Status status;
    switch (op) {
      case Op::kStart: status = engine.start(sandbox); break;
      case Op::kPause: status = engine.pause(sandbox); break;
      case Op::kResume: status = engine.resume(sandbox); break;
      case Op::kHotplug: status = engine.hotplug_vcpu(sandbox); break;
      case Op::kUnplug: status = engine.unplug_vcpu(sandbox); break;
      case Op::kDestroy: status = engine.destroy(sandbox); break;
      case Op::kRefresh:
        (void)engine.ull_manager().refresh();
        continue;
      case Op::kCount: continue;
    }

    ASSERT_EQ(status.is_ok(), expected_ok(model, op))
        << "seed " << GetParam() << " step " << step << " op "
        << static_cast<int>(op) << " sandbox " << victim << " in state "
        << to_string(model.state) << ": " << status.to_report();

    if (status.is_ok()) {
      switch (op) {
        case Op::kStart: model.state = vmm::SandboxState::kRunning; break;
        case Op::kPause: model.state = vmm::SandboxState::kPaused; break;
        case Op::kResume: model.state = vmm::SandboxState::kRunning; break;
        case Op::kHotplug: ++model.vcpus; break;
        case Op::kUnplug: --model.vcpus; break;
        case Op::kDestroy: model.state = vmm::SandboxState::kDestroyed; break;
        default: break;
      }
    }

    // Engine/model agreement and structural invariants.
    ASSERT_EQ(sandbox.state(), model.state);
    ASSERT_EQ(sandbox.num_vcpus(), model.vcpus);
    for (sched::CpuId cpu = 0; cpu < topology.num_cpus(); ++cpu) {
      ASSERT_TRUE(topology.queue(cpu).is_sorted()) << "cpu " << cpu;
    }
    // Global vCPU conservation: every non-destroyed sandbox's vCPUs are
    // either queued (running) or parked (paused).
    std::size_t queued = 0;
    for (sched::CpuId cpu = 0; cpu < topology.num_cpus(); ++cpu) {
      queued += topology.queue(cpu).size();
    }
    std::size_t expected_queued = 0;
    for (int i = 0; i < kSandboxes; ++i) {
      const Model& m = models[static_cast<std::size_t>(i)];
      if (m.state == vmm::SandboxState::kRunning) {
        expected_queued += m.vcpus;
      }
      if (m.state == vmm::SandboxState::kPaused) {
        ASSERT_EQ(sandboxes[static_cast<std::size_t>(i)]->merge_vcpus().size(),
                  m.vcpus);
      }
    }
    ASSERT_EQ(queued, expected_queued) << "seed " << GetParam() << " step "
                                       << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LifecycleFuzzTest,
                         ::testing::Values(1u, 7u, 42u, 99u, 1234u, 77777u,
                                           31337u, 2024u));

}  // namespace
}  // namespace horse
