// Property sweep for load-update coalescing: over every vCPU count the
// platform supports and a grid of PELT parameters and starting loads, the
// coalesced update must equal n iterative updates (within floating-point
// tolerance) and must never change a DVFS frequency decision.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/coalesce.hpp"
#include "sched/dvfs.hpp"
#include "sched/pelt.hpp"

namespace horse::core {
namespace {

using CoalesceCase = std::tuple<std::uint32_t /*n*/, double /*alpha*/,
                                double /*beta*/, double /*load*/>;

class CoalescePropertyTest : public ::testing::TestWithParam<CoalesceCase> {};

TEST_P(CoalescePropertyTest, ClosedFormMatchesIterative) {
  const auto [n, alpha, beta, load] = GetParam();
  sched::PeltParams params;
  params.alpha = alpha;
  params.beta = beta;
  LoadCoalescer coalescer(params);

  const auto pre = coalescer.precompute(n);
  const double coalesced = LoadCoalescer::apply(pre, load);
  const double iterative = coalescer.tracker().apply_iterative(load, n);
  const double tolerance = 1e-9 * std::max(1.0, std::abs(iterative));
  EXPECT_NEAR(coalesced, iterative, tolerance);
}

TEST_P(CoalescePropertyTest, DvfsDecisionUnchanged) {
  const auto [n, alpha, beta, load] = GetParam();
  sched::PeltParams params;
  params.alpha = alpha;
  params.beta = beta;
  LoadCoalescer coalescer(params);

  const double coalesced =
      LoadCoalescer::apply(coalescer.precompute(n), load);
  const double iterative = coalescer.tracker().apply_iterative(load, n);
  sched::DvfsGovernor governor;
  EXPECT_EQ(governor.target_freq_khz(coalesced),
            governor.target_freq_khz(iterative));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CoalescePropertyTest,
    ::testing::Combine(
        // n: every provider vCPU option the paper covers, plus extremes.
        ::testing::Values(1u, 2u, 4u, 8u, 16u, 24u, 32u, 36u, 128u),
        // alpha: PELT default, faster and slower decay.
        ::testing::Values(0.978572062087700134, 0.5, 0.99, 0.9),
        // beta: PELT default and alternatives.
        ::testing::Values(21.942208422195108, 1.0, 100.0),
        // starting load: idle to beyond capacity.
        ::testing::Values(0.0, 10.0, 512.0, 1024.0, 8192.0)));

}  // namespace
}  // namespace horse::core
