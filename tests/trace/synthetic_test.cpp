#include "trace/synthetic.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace horse::trace {
namespace {

TEST(SyntheticTraceTest, ValidatesParams) {
  SyntheticTraceParams params;
  params.num_functions = 0;
  EXPECT_THROW(SyntheticAzureTrace{params}, std::invalid_argument);
  params = {};
  params.top_rate_per_minute = 0.0;
  EXPECT_THROW(SyntheticAzureTrace{params}, std::invalid_argument);
}

TEST(SyntheticTraceTest, GeneratesRequestedShape) {
  SyntheticTraceParams params;
  params.num_functions = 10;
  params.num_minutes = 5;
  SyntheticAzureTrace generator(params);
  const auto rows = generator.generate_rows();
  ASSERT_EQ(rows.size(), 10u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.per_minute.size(), 5u);
    EXPECT_FALSE(row.function.empty());
  }
}

TEST(SyntheticTraceTest, DeterministicPerSeed) {
  SyntheticTraceParams params;
  params.seed = 123;
  const auto a = SyntheticAzureTrace(params).generate_rows();
  const auto b = SyntheticAzureTrace(params).generate_rows();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].per_minute, b[i].per_minute);
  }
}

TEST(SyntheticTraceTest, PopularityIsHeavyTailed) {
  SyntheticTraceParams params;
  params.num_functions = 50;
  params.num_minutes = 20;
  const auto rows = SyntheticAzureTrace(params).generate_rows();
  auto total = [](const FunctionRow& row) {
    return std::accumulate(row.per_minute.begin(), row.per_minute.end(), 0u);
  };
  // Rank-0 function must dominate rank-25 by a wide margin (Zipf s=1.1).
  EXPECT_GT(total(rows[0]), 10 * std::max(1u, total(rows[25])));
}

TEST(SyntheticTraceTest, ScheduleMatchesRowTotals) {
  SyntheticTraceParams params;
  params.num_functions = 5;
  params.num_minutes = 3;
  SyntheticAzureTrace generator(params);
  const auto rows = generator.generate_rows();
  std::size_t expected = 0;
  for (const auto& row : rows) {
    expected += std::accumulate(row.per_minute.begin(), row.per_minute.end(), 0u);
  }
  EXPECT_EQ(generator.generate_schedule().size(), expected);
}

TEST(DurationSamplerTest, SamplesArePositive) {
  DurationSampler sampler({});
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GT(sampler.sample(), 0);
  }
}

TEST(DurationSamplerTest, BodyCentersOnMedian) {
  DurationSampler::Params params;
  params.tail_fraction = 0.0;  // body only
  DurationSampler sampler(params, 5);
  int below = 0;
  constexpr int kSamples = 20'000;
  for (int i = 0; i < kSamples; ++i) {
    if (sampler.sample() < params.median) {
      ++below;
    }
  }
  // Median property: about half the mass below.
  EXPECT_NEAR(static_cast<double>(below) / kSamples, 0.5, 0.02);
}

TEST(DurationSamplerTest, TailFractionExceedsOneSecond) {
  DurationSampler sampler({}, 11);
  int over_1s = 0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    if (sampler.sample() >= util::kSecond) {
      ++over_1s;
    }
  }
  // "a non-negligible fraction of serverless functions has an execution
  // time longer than 1s": tail_fraction = 5% plus lognormal spill.
  const double fraction = static_cast<double>(over_1s) / kSamples;
  EXPECT_GT(fraction, 0.03);
  EXPECT_LT(fraction, 0.20);
}

TEST(DurationSamplerTest, TailStaysBounded) {
  DurationSampler::Params params;
  params.tail_fraction = 1.0;  // tail only
  DurationSampler sampler(params, 13);
  for (int i = 0; i < 5'000; ++i) {
    const auto v = sampler.sample();
    EXPECT_GE(v, params.tail_min * 99 / 100);
    EXPECT_LE(v, params.tail_max * 101 / 100);
  }
}

}  // namespace
}  // namespace horse::trace
