#include "trace/trace_stats.hpp"

#include <gtest/gtest.h>

#include "trace/synthetic.hpp"

namespace horse::trace {
namespace {

TEST(TraceStatsTest, EmptySchedule) {
  const auto stats = analyze(ArrivalSchedule{});
  EXPECT_EQ(stats.total_invocations, 0u);
  EXPECT_TRUE(stats.functions.empty());
  EXPECT_EQ(stats.top_k_share(3), 0.0);
}

TEST(TraceStatsTest, SingleFunctionRegularArrivals) {
  std::vector<Arrival> arrivals;
  for (int i = 0; i <= 10; ++i) {
    arrivals.push_back(
        {static_cast<util::Nanos>(i) * 6 * util::kSecond, 0});  // 10/minute
  }
  const auto stats = analyze(ArrivalSchedule(std::move(arrivals)));
  ASSERT_EQ(stats.functions.size(), 1u);
  const auto& fn = stats.functions.front();
  EXPECT_EQ(fn.invocations, 11u);
  EXPECT_NEAR(fn.rate_per_minute, 11.0, 0.5);
  EXPECT_DOUBLE_EQ(fn.iat_mean, 6.0 * util::kSecond);
  EXPECT_NEAR(fn.iat_cv, 0.0, 1e-9);  // perfectly regular
  EXPECT_EQ(fn.iat_p50, 6 * util::kSecond);
  EXPECT_EQ(fn.iat_max, 6 * util::kSecond);
}

TEST(TraceStatsTest, BurstyTrafficHasHighCv) {
  std::vector<Arrival> arrivals;
  util::Nanos now = 0;
  for (int burst = 0; burst < 5; ++burst) {
    for (int i = 0; i < 10; ++i) {
      arrivals.push_back({now, 0});
      now += util::kMillisecond;  // tight burst
    }
    now += 60 * util::kSecond;  // long silence
  }
  const auto stats = analyze(ArrivalSchedule(std::move(arrivals)));
  EXPECT_GT(stats.functions.front().iat_cv, 2.0);
}

TEST(TraceStatsTest, FunctionsSortedByVolume) {
  std::vector<Arrival> arrivals;
  for (int i = 0; i < 3; ++i) {
    arrivals.push_back({static_cast<util::Nanos>(i) * util::kSecond, 7});
  }
  for (int i = 0; i < 9; ++i) {
    arrivals.push_back({static_cast<util::Nanos>(i) * util::kSecond, 3});
  }
  const auto stats = analyze(ArrivalSchedule(std::move(arrivals)));
  ASSERT_EQ(stats.functions.size(), 2u);
  EXPECT_EQ(stats.functions[0].function_id, 3u);
  EXPECT_EQ(stats.functions[1].function_id, 7u);
  EXPECT_NEAR(stats.top_k_share(1), 9.0 / 12.0, 1e-9);
  EXPECT_NEAR(stats.top_k_share(2), 1.0, 1e-9);
  EXPECT_NEAR(stats.top_k_share(99), 1.0, 1e-9);  // k beyond size clamps
}

TEST(TraceStatsTest, SingleInvocationHasNoIat) {
  const auto stats = analyze(ArrivalSchedule({{5, 0}}));
  const auto& fn = stats.functions.front();
  EXPECT_EQ(fn.invocations, 1u);
  EXPECT_EQ(fn.iat_mean, 0.0);
  EXPECT_EQ(fn.iat_p99, 0);
}

TEST(TraceStatsTest, SyntheticTraceIsZipfSkewed) {
  SyntheticTraceParams params;
  params.num_functions = 40;
  params.num_minutes = 15;
  const auto schedule = SyntheticAzureTrace(params).generate_schedule();
  const auto stats = analyze(schedule);
  // The handful of hot functions must dominate, as in the Azure dataset
  // (Zipf s=1.1 over 40 functions puts ~58% of traffic on the top 5).
  EXPECT_GT(stats.top_k_share(5), 0.5);
  EXPECT_LT(stats.top_k_share(5), 0.8);
  // And the skew is strict: top-5 far exceeds a uniform 5/40 share.
  EXPECT_GT(stats.top_k_share(5), 3.0 * 5.0 / 40.0);
  EXPECT_EQ(stats.total_invocations, schedule.size());
}

}  // namespace
}  // namespace horse::trace
