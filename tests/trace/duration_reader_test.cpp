#include "trace/duration_reader.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace horse::trace {
namespace {

const char* kHeader =
    "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum,"
    "percentile_Average_0,percentile_Average_1,percentile_Average_25,"
    "percentile_Average_50,percentile_Average_75,percentile_Average_99,"
    "percentile_Average_100\n";

TEST(DurationReaderTest, ParsesRowWithHeader) {
  std::istringstream csv(std::string(kHeader) +
                         "o,a,f,250.5,1000,10,5000,10,15,120,200,350,2000,"
                         "5000\n");
  const auto rows = DurationReader::parse(csv);
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 1u);
  const auto& row = rows->front();
  EXPECT_EQ(row.function, "f");
  EXPECT_DOUBLE_EQ(row.average_ms, 250.5);
  EXPECT_DOUBLE_EQ(row.count, 1000.0);
  EXPECT_DOUBLE_EQ(row.p50_ms, 200.0);
  EXPECT_DOUBLE_EQ(row.p99_ms, 2000.0);
  EXPECT_DOUBLE_EQ(row.p100_ms, 5000.0);
}

TEST(DurationReaderTest, ParsesWithoutHeader) {
  std::istringstream csv("o,a,f,1,1,1,1,1,1,1,1,1,1,1\n");
  const auto rows = DurationReader::parse(csv);
  ASSERT_TRUE(rows.has_value());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(DurationReaderTest, RejectsWrongColumnCount) {
  std::istringstream csv("o,a,f,1,2,3\n");
  const auto rows = DurationReader::parse(csv);
  EXPECT_FALSE(rows.has_value());
  EXPECT_EQ(rows.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(DurationReaderTest, RejectsNonNumeric) {
  std::istringstream csv("o,a,f,xyz,1,1,1,1,1,1,1,1,1,1\n");
  EXPECT_FALSE(DurationReader::parse(csv).has_value());
}

TEST(DurationReaderTest, SkipsEmptyLines) {
  std::istringstream csv("\no,a,f,1,1,1,1,1,1,1,1,1,1,1\n\n");
  const auto rows = DurationReader::parse(csv);
  ASSERT_TRUE(rows.has_value());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(DurationReaderTest, FitSamplerAnchorsMedian) {
  DurationRow row;
  row.p50_ms = 200.0;
  row.p75_ms = 320.0;
  row.p99_ms = 2000.0;
  row.p100_ms = 8000.0;
  const auto params = DurationReader::fit_sampler(row);
  EXPECT_EQ(params.median, static_cast<util::Nanos>(200.0 * 1e6));
  // sigma = ln(320/200)/0.6745 ≈ 0.697.
  EXPECT_NEAR(params.sigma, std::log(1.6) / 0.6745, 1e-9);
  EXPECT_EQ(params.tail_min, static_cast<util::Nanos>(2000.0 * 1e6));
  EXPECT_EQ(params.tail_max, static_cast<util::Nanos>(8000.0 * 1e6));
}

TEST(DurationReaderTest, FitSamplerHandlesDegenerateRows) {
  DurationRow flat;  // all zeros
  const auto params = DurationReader::fit_sampler(flat);
  EXPECT_GT(params.median, 0);
  EXPECT_GE(params.sigma, 0.05);
  EXPECT_GT(params.tail_max, params.tail_min);
}

TEST(DurationReaderTest, FittedSamplerMatchesRowStatistics) {
  DurationRow row;
  row.p50_ms = 100.0;
  row.p75_ms = 150.0;
  row.p99_ms = 1000.0;
  row.p100_ms = 3000.0;
  DurationSampler sampler(DurationReader::fit_sampler(row), 21);
  // Empirical median of the fitted sampler tracks the row's p50.
  std::vector<util::Nanos> samples;
  for (int i = 0; i < 20'000; ++i) {
    samples.push_back(sampler.sample());
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  const double median_ms =
      static_cast<double>(samples[samples.size() / 2]) / 1e6;
  EXPECT_NEAR(median_ms, 100.0, 15.0);
}

}  // namespace
}  // namespace horse::trace
