#include "trace/azure_reader.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace horse::trace {
namespace {

TEST(AzureReaderTest, ParsesDataRows) {
  std::istringstream csv(
      "HashOwner,HashApp,HashFunction,Trigger,1,2,3\n"
      "o1,a1,f1,http,5,0,2\n"
      "o1,a1,f2,timer,1,1,1\n");
  const auto rows = AzureTraceReader::parse(csv);
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].function, "f1");
  EXPECT_EQ((*rows)[0].trigger, "http");
  EXPECT_EQ((*rows)[0].per_minute, (std::vector<std::uint32_t>{5, 0, 2}));
  EXPECT_EQ((*rows)[1].per_minute, (std::vector<std::uint32_t>{1, 1, 1}));
}

TEST(AzureReaderTest, WorksWithoutHeader) {
  std::istringstream csv("o1,a1,f1,queue,3,4\n");
  const auto rows = AzureTraceReader::parse(csv);
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].per_minute, (std::vector<std::uint32_t>{3, 4}));
}

TEST(AzureReaderTest, SkipsEmptyLines) {
  std::istringstream csv("o1,a1,f1,http,1\n\n\no2,a2,f2,http,2\n");
  const auto rows = AzureTraceReader::parse(csv);
  ASSERT_TRUE(rows.has_value());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(AzureReaderTest, RejectsShortRows) {
  std::istringstream csv("o1,a1,f1\n");
  const auto rows = AzureTraceReader::parse(csv);
  EXPECT_FALSE(rows.has_value());
  EXPECT_EQ(rows.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(AzureReaderTest, RejectsNonNumericCounts) {
  std::istringstream csv("o1,a1,f1,http,abc\n");
  const auto rows = AzureTraceReader::parse(csv);
  EXPECT_FALSE(rows.has_value());
}

TEST(AzureReaderTest, ExpandProducesOneArrivalPerInvocation) {
  std::istringstream csv("o1,a1,f1,http,5,3\n");
  const auto rows = AzureTraceReader::parse(csv);
  ASSERT_TRUE(rows.has_value());
  const auto schedule = AzureTraceReader::expand(*rows, 42);
  EXPECT_EQ(schedule.size(), 8u);
}

TEST(AzureReaderTest, ExpandPlacesArrivalsInCorrectMinute) {
  std::istringstream csv("o1,a1,f1,http,2,0,3\n");
  const auto rows = AzureTraceReader::parse(csv);
  const auto schedule = AzureTraceReader::expand(*rows, 42);
  int in_first = 0;
  int in_third = 0;
  for (const auto& arrival : schedule.arrivals()) {
    if (arrival.time < 60 * util::kSecond) {
      ++in_first;
    } else if (arrival.time >= 120 * util::kSecond &&
               arrival.time < 180 * util::kSecond) {
      ++in_third;
    } else {
      ADD_FAILURE() << "arrival in empty minute: " << arrival.time;
    }
  }
  EXPECT_EQ(in_first, 2);
  EXPECT_EQ(in_third, 3);
}

TEST(AzureReaderTest, ExpandIsSortedAndDeterministic) {
  std::istringstream csv("o1,a1,f1,http,50\n");
  const auto rows = AzureTraceReader::parse(csv);
  const auto a = AzureTraceReader::expand(*rows, 7);
  const auto b = AzureTraceReader::expand(*rows, 7);
  ASSERT_EQ(a.size(), b.size());
  util::Nanos prev = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.arrivals()[i].time, b.arrivals()[i].time);
    EXPECT_GE(a.arrivals()[i].time, prev);
    prev = a.arrivals()[i].time;
  }
}

TEST(ScheduleTest, WindowShiftsAndFilters) {
  ArrivalSchedule schedule({{10, 0}, {20, 1}, {30, 0}, {40, 1}});
  const auto window = schedule.window(15, 35);
  ASSERT_EQ(window.size(), 2u);
  EXPECT_EQ(window.arrivals()[0].time, 5);   // 20 - 15
  EXPECT_EQ(window.arrivals()[1].time, 15);  // 30 - 15
}

TEST(ScheduleTest, DurationIsLastArrival) {
  ArrivalSchedule schedule({{10, 0}, {99, 0}});
  EXPECT_EQ(schedule.duration(), 99);
  ArrivalSchedule empty;
  EXPECT_EQ(empty.duration(), 0);
  EXPECT_TRUE(empty.empty());
}

TEST(ScheduleTest, ConstructorSortsArrivals) {
  ArrivalSchedule schedule({{30, 0}, {10, 1}, {20, 2}});
  EXPECT_EQ(schedule.arrivals()[0].time, 10);
  EXPECT_EQ(schedule.arrivals()[2].time, 30);
}

}  // namespace
}  // namespace horse::trace
