// Deterministic interleaving explorer for HORSE's lock-free splice path.
//
// The paper's Algorithm 1 claims 𝒫²𝒮ℳ splice tasks may execute in
// parallel without locks because they write pairwise-disjoint fields.
// Production code encodes that argument; this harness *falsifies* it on
// demand. It turns the preemptive-concurrency problem into a cooperative
// one: library code is compiled (under -DHORSE_SCHED_TEST=ON) with
// HORSE_YIELD_POINT markers between the individual loads and stores whose
// ordering matters, and the explorer serialises the participating threads
// so that exactly one runs at a time, choosing who proceeds at every
// marker with a seeded PCT-style scheduler (Burckhardt et al., "A
// Randomized Scheduler with Probabilistic Guarantees of Finding Bugs"):
//
//   * each thread gets a distinct random initial priority;
//   * d-1 priority change points are sampled over the step horizon — when
//     the global step count crosses one, the running thread's priority
//     drops below every other, forcing a context switch at an adversarial
//     moment;
//   * the highest-priority runnable thread always runs.
//
// One deviation from textbook PCT: HORSE threads *spin* (armed crew
// workers, spinlock waiters). A spinning top-priority thread would
// otherwise be re-picked forever once the change points are exhausted, so
// after roughly `spin_demote_threshold` consecutive picks of the same
// thread at yield points the explorer demotes it as if a change point had
// fired. The exact burst length is jittered from a seed-derived RNG
// stream — a fixed length resonates with periodic retry loops and can
// park the same thread inside its critical section on every burst (see
// ExplorerOptions::spin_demote_threshold). All draws are pure functions
// of the seed and the schedule's own decision sequence, so replay is
// unaffected.
//
// Everything the scheduler decides is a pure function of (seed, step):
// given deterministic thread bodies, a schedule that finds a violation is
// replayed exactly by re-running with the same seed. That is the
// workflow: `ScheduleExplorer::explore` sweeps seeds until a scenario's
// audit fails, reports the seed, and the test (or a developer at a
// keyboard) re-runs that seed alone to get the identical failure.
//
// Threads the explorer did not spawn pass through yield points untouched
// (one atomic load), so unrelated machinery keeps running at full speed.
#pragma once

#if !defined(HORSE_SCHED_TEST)
#error "schedule_explorer.hpp requires -DHORSE_SCHED_TEST=ON (see CMakePresets.json)"
#endif

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/yield_point.hpp"

namespace horse::harness {

struct ExplorerOptions {
  /// Everything below is derived from this; same seed -> same schedule.
  std::uint64_t seed = 1;
  /// Hard cap on yield-point steps per schedule. Exceeding it aborts
  /// serialisation (threads are released to free-run to completion) and
  /// the report carries completed=false — treat as a livelock finding.
  std::size_t max_steps = 100'000;
  /// PCT depth d-1: number of priority change points per schedule.
  std::size_t priority_change_points = 3;
  /// Change points are sampled uniformly over [1, horizon). Scenarios
  /// here execute a few hundred to a few thousand steps, so a small
  /// horizon keeps the change points inside the interesting window.
  std::size_t change_point_horizon = 1024;
  /// Mean number of consecutive picks of one thread before it is forcibly
  /// demoted (keeps spin-wait scenarios live; see file comment). The
  /// actual burst length is jittered per event in [t/2, 3t/2) from a
  /// seed-derived stream: a FIXED threshold phase-locks with periodic
  /// loops (a retry loop whose yield-site cycle divides the threshold is
  /// parked at the same site — possibly inside its critical section —
  /// every burst, turning a live system into a deterministic livelock).
  std::size_t spin_demote_threshold = 64;
};

/// One deterministic run: spawn threads, run them under the seeded
/// scheduler, then inspect shared state. Construct → spawn() bodies →
/// run() → destroy. Single active instance at a time (asserted).
class InterleavingSchedule {
 public:
  explicit InterleavingSchedule(const ExplorerOptions& options);
  ~InterleavingSchedule();

  InterleavingSchedule(const InterleavingSchedule&) = delete;
  InterleavingSchedule& operator=(const InterleavingSchedule&) = delete;

  /// Register a thread body. Spawn order defines the thread's index and
  /// therefore its (seed-derived) initial priority — keep it fixed across
  /// runs or replay changes meaning. Call before run() only.
  void spawn(std::string name, std::function<void()> body);

  struct Report {
    /// False when the step cap was hit (livelock under this schedule).
    bool completed = false;
    /// Yield-point steps consumed.
    std::size_t steps = 0;
    /// Token handoffs between threads (= preemptions explored).
    std::size_t context_switches = 0;
  };

  /// Runs every spawned thread to completion under the seeded scheduler
  /// and joins them. The yield hook is installed for the duration and
  /// restored afterwards.
  Report run();

 private:
  enum class ThreadRunState : std::uint8_t {
    kNotStarted,
    kRunnable,
    kFinished,
  };

  struct ManagedThread {
    std::string name;
    std::function<void()> body;
    std::int64_t priority = 0;
    ThreadRunState state = ThreadRunState::kNotStarted;
    const char* last_site = "spawn";
    std::thread thread;
  };

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  static void hook_trampoline(const char* site) noexcept;
  void on_yield(const char* site) noexcept;
  void thread_main(std::size_t index);
  /// Highest-priority runnable thread, or kNone.
  [[nodiscard]] std::size_t pick_locked() const noexcept;
  void demote_locked(std::size_t index) noexcept;
  /// Draw the next spin-demotion burst length (seed-derived jitter).
  [[nodiscard]] std::size_t next_spin_burst() noexcept;

  ExplorerOptions options_;
  std::vector<std::size_t> change_points_;  // ascending step indices
  std::size_t next_change_point_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<ManagedThread>> threads_;
  std::size_t registered_ = 0;
  std::size_t finished_ = 0;
  std::size_t current_ = kNone;
  std::size_t consecutive_picks_ = 0;
  /// Burst length for the NEXT spin demotion; re-drawn (seed-derived)
  /// after every demotion to break resonance with periodic spin loops.
  std::size_t spin_burst_limit_ = 0;
  util::Xoshiro256 spin_jitter_rng_{0};
  std::int64_t demotion_floor_ = 0;  // next forced-demotion priority
  std::size_t steps_ = 0;
  std::size_t switches_ = 0;
  bool started_ = false;
  bool free_run_ = false;

  util::YieldHookFn previous_hook_ = nullptr;
};

/// Seed-sweep driver: runs `run_one(options-with-seed)` for seeds
/// base.seed, base.seed+1, ... until the scenario reports a violation
/// (non-OK status) or `max_schedules` schedules have been explored.
class ScheduleExplorer {
 public:
  struct Result {
    bool violation_found = false;
    std::uint64_t failing_seed = 0;
    std::size_t schedules_explored = 0;
    std::string message;
  };

  using ScheduleFn = std::function<util::Status(const ExplorerOptions&)>;

  static Result explore(ExplorerOptions base, std::size_t max_schedules,
                        const ScheduleFn& run_one);
};

}  // namespace horse::harness
