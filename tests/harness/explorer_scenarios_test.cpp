// Interleaving-explorer scenarios for the concurrency-sensitive pieces of
// the resume path. Four positive scenarios assert that what HORSE claims
// is safe stays safe under adversarial preemption; the negative control
// proves the harness has teeth by feeding it the exact bug class the
// 𝒫²𝒮ℳ disjointness argument exists to rule out — two splice tasks
// sharing an anchor — and demanding it is caught and replayable.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/merge_crew.hpp"
#include "core/p2sm.hpp"
#include "faas/warm_pool.hpp"
#include "harness/schedule_explorer.hpp"
#include "sched/run_queue.hpp"
#include "sched/vcpu.hpp"
#include "util/epoch.hpp"
#include "util/spinlock.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"
#include "util/yield_point.hpp"
#include "vmm/sandbox.hpp"

namespace horse::harness {
namespace {

std::unique_ptr<sched::Vcpu> make_vcpu(sched::Credit credit) {
  auto vcpu = std::make_unique<sched::Vcpu>();
  vcpu->credit = credit;
  return vcpu;
}

util::Status violation(std::string message) {
  return {util::StatusCode::kInternal, std::move(message)};
}

// ---------------------------------------------------------------------------
// Scenario 1 — parallel 𝒫²𝒮ℳ splices vs. a concurrent run-queue reader.
//
// Three splicer threads execute a real P2smIndex's splice set through the
// instrumented execute_splice while a reader thread concurrently polls the
// operations the design does declare safe during a merge: the atomic
// version counter, the lock-protected load, and the out-of-band size. Any
// interleaving must leave B a sorted, closed ring equal to std::merge of
// the credit sequences.
// ---------------------------------------------------------------------------

util::Status run_splice_vs_reader(const ExplorerOptions& options) {
  std::vector<std::unique_ptr<sched::Vcpu>> storage;
  sched::RunQueue b(0);
  sched::VcpuList a;

  const std::vector<sched::Credit> b_credits{10, 20, 30, 40, 50, 60};
  const std::vector<sched::Credit> a_credits{5, 15, 15, 35, 55, 65};
  for (const sched::Credit credit : b_credits) {
    storage.push_back(make_vcpu(credit));
    util::LockGuard guard(b.lock());
    b.insert_sorted(*storage.back());
  }
  for (const sched::Credit credit : a_credits) {
    storage.push_back(make_vcpu(credit));
    a.push_back(*storage.back());
  }

  std::vector<sched::Credit> expected;
  std::merge(b_credits.begin(), b_credits.end(), a_credits.begin(),
             a_credits.end(), std::back_inserter(expected));

  core::P2smIndex index;
  index.rebuild(a, b);

  // Materialise the splice set exactly as P2smIndex::merge does, but keep
  // the tasks in hand so distinct threads can execute distinct subsets —
  // Algorithm 1's one-thread-per-posA-key model.
  std::vector<util::ListHook*> b_hooks;
  for (sched::Vcpu& vcpu : b.list()) {
    b_hooks.push_back(&vcpu.hook);
  }
  std::vector<core::SpliceTask> tasks;
  std::size_t total = 0;
  for (const auto& [anchor, run] : index.runs()) {
    util::ListHook* anchor_hook =
        anchor == core::P2smIndex::kBeforeHead
            ? b.list().sentinel()
            : b_hooks[static_cast<std::size_t>(anchor)];
    tasks.push_back(core::SpliceTask{anchor_hook, run.head, run.tail});
    total += run.count;
  }
  (void)a.take_all();

  constexpr std::size_t kSplicers = 3;
  std::atomic<std::size_t> splicers_done{0};
  std::atomic<std::uint64_t> reader_observations{0};

  InterleavingSchedule schedule(options);
  for (std::size_t t = 0; t < kSplicers; ++t) {
    schedule.spawn("splicer", [&tasks, &splicers_done, t] {
      for (std::size_t i = t; i < tasks.size(); i += kSplicers) {
        core::execute_splice(tasks[i]);
      }
      splicers_done.fetch_add(1);
    });
  }
  schedule.spawn("reader", [&b, &splicers_done, &reader_observations] {
    // Observe-first: some schedules legitimately run every splicer to
    // completion before the reader's first pick, so the loop must not
    // gate its initial observation on splicers still being live.
    std::uint64_t last_version = 0;
    do {
      const std::uint64_t version = b.version();  // atomic
      if (version < last_version) {
        return;  // version must be monotone; flagged by count below
      }
      last_version = version;
      (void)b.load();  // spinlock-protected
      (void)b.size();  // untouched during splices
      reader_observations.fetch_add(1);
      util::yield_point("scenario.reader");
    } while (splicers_done.load() < kSplicers);
  });

  const auto report = schedule.run();
  if (!report.completed) {
    return violation("splice-vs-reader: schedule hit the step cap");
  }
  if (reader_observations.load() == 0) {
    return violation("splice-vs-reader: reader never observed the queue");
  }

  b.list().add_size(total);
  b.bump_version();
  if (auto status = b.check_invariants(/*require_sorted=*/true);
      !status.is_ok()) {
    return status;
  }
  std::vector<sched::Credit> actual;
  for (const sched::Vcpu& vcpu : b.list()) {
    actual.push_back(vcpu.credit);
  }
  if (actual != expected) {
    return violation("splice-vs-reader: merged credits differ from std::merge");
  }
  b.list().abandon_all();  // storage owns the nodes
  return util::Status::ok();
}

TEST(ExplorerScenarioTest, ParallelSplicesSafeAgainstConcurrentReader) {
  ExplorerOptions base;
  base.seed = 100;
  base.change_point_horizon = 256;
  const auto result = ScheduleExplorer::explore(base, 60, run_splice_vs_reader);
  EXPECT_FALSE(result.violation_found)
      << "seed " << result.failing_seed << ": " << result.message;
  EXPECT_EQ(result.schedules_explored, 60u);
}

// ---------------------------------------------------------------------------
// Scenario 2 — pause-time index rebuild racing an invalidating enqueue.
//
// One thread runs the pause-time precompute (rebuild under B's lock) and
// then the resume-time merge; another enqueues a vCPU into B in between,
// bumping the version. Every interleaving must either merge a fresh index
// successfully or be refused with kFailedPrecondition — never corrupt B.
// The refused path then retries rebuild+merge under one critical section,
// which must always succeed.
// ---------------------------------------------------------------------------

util::Status run_rebuild_vs_enqueue(const ExplorerOptions& options) {
  std::vector<std::unique_ptr<sched::Vcpu>> storage;
  sched::RunQueue b(0);
  sched::VcpuList a;

  for (const sched::Credit credit : {10, 20, 30, 40}) {
    storage.push_back(make_vcpu(credit));
    util::LockGuard guard(b.lock());
    b.insert_sorted(*storage.back());
  }
  for (const sched::Credit credit : {5, 25, 45}) {
    storage.push_back(make_vcpu(credit));
    a.push_back(*storage.back());
  }
  storage.push_back(make_vcpu(22));
  sched::Vcpu& invalidator = *storage.back();

  core::P2smIndex index;
  core::SequentialMergeExecutor sequential;
  std::atomic<bool> merge_ok{false};

  InterleavingSchedule schedule(options);
  schedule.spawn("resume", [&] {
    {
      util::LockGuard guard(b.lock());
      index.rebuild(a, b);
    }
    // Deliberate window: lock released between precompute and merge so
    // the enqueue can invalidate the snapshot.
    util::yield_point("scenario.precompute_window");
    {
      util::LockGuard guard(b.lock());
      util::Status status = index.merge(a, b, sequential);
      if (status.is_ok()) {
        merge_ok.store(true);
        return;
      }
      if (status.code() != util::StatusCode::kFailedPrecondition) {
        return;  // unexpected failure; flagged below via merge_ok
      }
      // Recovery path: precompute + merge inside one critical section
      // cannot be invalidated.
      index.rebuild(a, b);
      status = index.merge(a, b, sequential);
      merge_ok.store(status.is_ok());
    }
  });
  schedule.spawn("enqueue", [&] {
    util::LockGuard guard(b.lock());
    b.insert_sorted(invalidator);
  });

  const auto report = schedule.run();
  if (!report.completed) {
    return violation("rebuild-vs-enqueue: schedule hit the step cap");
  }
  if (!merge_ok.load()) {
    return violation("rebuild-vs-enqueue: merge failed even after rebuild");
  }
  if (auto status = b.check_invariants(/*require_sorted=*/true);
      !status.is_ok()) {
    return status;
  }
  const std::vector<sched::Credit> expected{5, 10, 20, 22, 25, 30, 40, 45};
  std::vector<sched::Credit> actual;
  for (const sched::Vcpu& vcpu : b.list()) {
    actual.push_back(vcpu.credit);
  }
  if (actual != expected) {
    return violation("rebuild-vs-enqueue: final queue contents wrong");
  }
  if (a.size() != 0) {
    return violation("rebuild-vs-enqueue: A not drained");
  }
  b.list().abandon_all();
  return util::Status::ok();
}

TEST(ExplorerScenarioTest, IndexRebuildRacingInvalidatingEnqueue) {
  ExplorerOptions base;
  base.seed = 200;
  base.change_point_horizon = 256;
  const auto result =
      ScheduleExplorer::explore(base, 60, run_rebuild_vs_enqueue);
  EXPECT_FALSE(result.violation_found)
      << "seed " << result.failing_seed << ": " << result.message;
}

// ---------------------------------------------------------------------------
// Scenario 3 — SpinLock / ThreadPool handoff.
//
// Cooperative half: three threads hand a Spinlock around with a yield
// point inside the critical section — mutual exclusion must hold at every
// explored preemption. Free-running half (exercised by the TSan preset):
// a real ThreadPool hammers a lock-protected RunQueue.
// ---------------------------------------------------------------------------

util::Status run_spinlock_handoff(const ExplorerOptions& options) {
  util::Spinlock lock;
  int in_critical = 0;
  int counter = 0;
  std::atomic<bool> exclusion_violated{false};
  constexpr int kThreads = 3;
  constexpr int kIterations = 8;

  InterleavingSchedule schedule(options);
  for (int t = 0; t < kThreads; ++t) {
    schedule.spawn("locker", [&] {
      for (int i = 0; i < kIterations; ++i) {
        util::LockGuard guard(lock);
        ++in_critical;
        util::yield_point("scenario.critical_section");
        if (in_critical != 1) {
          exclusion_violated.store(true);
        }
        ++counter;
        --in_critical;
      }
    });
  }
  const auto report = schedule.run();
  if (!report.completed) {
    return violation("spinlock-handoff: schedule hit the step cap "
                     "(lock handoff livelocked)");
  }
  if (exclusion_violated.load()) {
    return violation("spinlock-handoff: two threads inside the lock");
  }
  if (counter != kThreads * kIterations) {
    return violation("spinlock-handoff: lost increments under the lock");
  }
  return util::Status::ok();
}

TEST(ExplorerScenarioTest, SpinlockHandoffKeepsMutualExclusion) {
  ExplorerOptions base;
  base.seed = 300;
  base.change_point_horizon = 256;
  const auto result = ScheduleExplorer::explore(base, 60, run_spinlock_handoff);
  EXPECT_FALSE(result.violation_found)
      << "seed " << result.failing_seed << ": " << result.message;
}

TEST(ExplorerScenarioTest, ThreadPoolSpinlockHandoffFreeRunning) {
  // Free-running companion to the cooperative half: real preemption, real
  // contention; the TSan preset turns any missing happens-before into a
  // hard failure.
  constexpr std::size_t kTasks = 200;
  std::vector<std::unique_ptr<sched::Vcpu>> storage;
  storage.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    storage.push_back(make_vcpu(static_cast<sched::Credit>(i % 17)));
  }
  sched::RunQueue b(0);
  std::atomic<std::size_t> executed{0};
  {
    util::ThreadPool pool(4);
    for (std::size_t i = 0; i < kTasks; ++i) {
      sched::Vcpu* vcpu = storage[i].get();
      pool.submit([&b, &executed, vcpu] {
        {
          util::LockGuard guard(b.lock());
          b.insert_sorted(*vcpu);
        }
        b.update_load_enqueue();
        {
          util::LockGuard guard(b.lock());
          b.remove(*vcpu);
        }
        executed.fetch_add(1);
      });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(executed.load(), kTasks);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_GT(b.load(), 0.0);
  EXPECT_TRUE(b.check_invariants().is_ok());
}

// ---------------------------------------------------------------------------
// Scenario 4 — warm-pool concurrent acquire/release.
//
// Two producers park paused sandboxes while two consumers take them, all
// through a Spinlock (WarmPool itself is single-threaded by design; the
// platform serialises it exactly like this). Every explored interleaving
// must hand each sandbox to exactly one consumer and leave the accounting
// balanced.
// ---------------------------------------------------------------------------

util::Status run_warm_pool_acquire_release(const ExplorerOptions& options) {
  constexpr faas::FunctionId kFunction = 1;
  constexpr std::size_t kPerProducer = 2;
  constexpr std::size_t kProducers = 2;
  constexpr std::size_t kConsumers = 2;
  constexpr std::size_t kTotal = kPerProducer * kProducers;

  faas::WarmPool pool;
  util::Spinlock pool_lock;
  std::vector<std::vector<sched::SandboxId>> taken(kConsumers);
  std::vector<std::unique_ptr<vmm::Sandbox>> returned(kTotal);

  InterleavingSchedule schedule(options);
  for (std::size_t p = 0; p < kProducers; ++p) {
    schedule.spawn("producer", [&pool, &pool_lock, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const auto id =
            static_cast<sched::SandboxId>(p * kPerProducer + i + 1);
        auto sandbox = std::make_unique<vmm::Sandbox>(
            id, vmm::SandboxConfig{.name = "warm", .num_vcpus = 1});
        sandbox->set_state(vmm::SandboxState::kPaused);
        util::LockGuard guard(pool_lock);
        if (!pool.put(kFunction, std::move(sandbox), 0).is_ok()) {
          return;  // flagged by the post-run accounting
        }
      }
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    schedule.spawn("consumer", [&pool, &pool_lock, &taken, &returned, c] {
      while (taken[c].size() < kTotal / kConsumers) {
        std::unique_ptr<vmm::Sandbox> sandbox;
        {
          util::LockGuard guard(pool_lock);
          sandbox = pool.take(kFunction);
        }
        if (sandbox == nullptr) {
          util::yield_point("scenario.warm_retry");
          continue;
        }
        taken[c].push_back(sandbox->id());
        returned[sandbox->id() - 1] = std::move(sandbox);
      }
    });
  }

  const auto report = schedule.run();
  if (!report.completed) {
    return violation("warm-pool: schedule hit the step cap");
  }
  std::set<sched::SandboxId> distinct;
  for (const auto& ids : taken) {
    distinct.insert(ids.begin(), ids.end());
  }
  if (distinct.size() != kTotal) {
    return violation("warm-pool: a sandbox was lost or taken twice");
  }
  if (pool.total() != 0 || pool.available(kFunction) != 0) {
    return violation("warm-pool: accounting did not return to zero");
  }
  for (const auto& sandbox : returned) {
    if (sandbox == nullptr) {
      return violation("warm-pool: taken sandbox pointer missing");
    }
  }
  return util::Status::ok();
}

TEST(ExplorerScenarioTest, WarmPoolConcurrentAcquireRelease) {
  ExplorerOptions base;
  base.seed = 400;
  base.change_point_horizon = 256;
  const auto result =
      ScheduleExplorer::explore(base, 60, run_warm_pool_acquire_release);
  EXPECT_FALSE(result.violation_found)
      << "seed " << result.failing_seed << ": " << result.message;
}

// ---------------------------------------------------------------------------
// Scenario 5 — epoch-based reclamation: pinned reader vs retire+reclaim.
//
// A reader pins the queue's reclaimer and dereferences a shared node while
// an owner thread unpublishes it, retires it, and hammers try_reclaim; a
// third thread contends on the reclaim lock. The EBR claim under test:
// no interleaving — including preemptions inside pin's publish-then-verify
// window and reclaim's slot scan (the epoch.* yield points) — may destroy
// the node while the reader still holds its pin. Destruction is modelled
// as a flag flip, not a free, so a violation is detected, not UB.
// ---------------------------------------------------------------------------

util::Status run_epoch_pin_vs_reclaim(const ExplorerOptions& options) {
  struct Node {
    std::atomic<bool> alive{true};
    util::EpochRetireNode retire;
  };
  auto node = std::make_unique<Node>();
  node->retire.owner = node.get();
  node->retire.destroy = [](void* owner) {
    static_cast<Node*>(owner)->alive.store(false);
  };

  util::EpochReclaimer reclaimer;
  std::atomic<Node*> published{node.get()};
  std::atomic<bool> read_after_free{false};

  InterleavingSchedule schedule(options);
  schedule.spawn("reader", [&reclaimer, &published, &read_after_free] {
    util::EpochReclaimer::ReadGuard guard(reclaimer);
    // Pin BEFORE the lookup extracts the pointer — the ordering resume()
    // gets from UllRunQueueManager::lookup(), which pins under the
    // manager mutex while the node is still reachable. A pointer
    // obtained after pinning must stay dereferenceable until unpin.
    Node* node = published.load();
    if (node == nullptr) {
      return;  // unpublished before our lookup; nothing to protect
    }
    for (int i = 0; i < 3; ++i) {
      if (!node->alive.load()) {
        read_after_free.store(true);
      }
      util::yield_point("scenario.epoch_read");
    }
  });
  schedule.spawn("owner", [&reclaimer, &published, &node] {
    // Unpublish first (the map erase), then retire — the protocol's
    // precondition that epochs only cover already-looked-up readers.
    published.store(nullptr);
    util::yield_point("scenario.epoch_unpublish");
    reclaimer.retire(&node->retire);
    for (int i = 0; i < 6; ++i) {
      (void)reclaimer.try_reclaim();
      util::yield_point("scenario.epoch_owner_reclaim");
    }
  });
  schedule.spawn("reclaimer", [&reclaimer] {
    for (int i = 0; i < 2; ++i) {
      (void)reclaimer.try_reclaim();  // contends on the reclaim lock
      util::yield_point("scenario.epoch_contender");
    }
  });

  const auto report = schedule.run();
  if (!report.completed) {
    return violation("epoch-pin: schedule hit the step cap");
  }
  if (read_after_free.load()) {
    return violation("epoch-pin: node destroyed under a live pin");
  }
  // No reader pinned anymore: a bounded number of advances must free it.
  for (int i = 0; i < 3 && node->alive.load(); ++i) {
    (void)reclaimer.try_reclaim();
  }
  if (node->alive.load()) {
    return violation("epoch-pin: node never reclaimed after quiescence");
  }
  if (reclaimer.pending() != 0) {
    return violation("epoch-pin: reclaimer accounting did not reach zero");
  }
  return util::Status::ok();
}

TEST(ExplorerScenarioTest, EpochPinProtectsReadersFromReclaim) {
  ExplorerOptions base;
  base.seed = 500;
  base.change_point_horizon = 256;
  const auto result =
      ScheduleExplorer::explore(base, 60, run_epoch_pin_vs_reclaim);
  EXPECT_FALSE(result.violation_found)
      << "seed " << result.failing_seed << ": " << result.message;
}

// ---------------------------------------------------------------------------
// Negative control — a deliberately broken splice set.
//
// Two tasks share one anchor, violating the pairwise-disjointness that
// Algorithm 1's lock-freedom rests on. Executed strictly one-after-another
// the result happens to stay consistent (each splice is locally complete),
// so a harness that never truly interleaves would pass it; a genuine
// preemption between the anchor read and the anchor write drops a node on
// the floor. The explorer must flag that within 500 schedules and the
// failing seed must replay to the identical verdict.
// ---------------------------------------------------------------------------

util::Status run_overlapping_anchor_schedule(const ExplorerOptions& options) {
  std::vector<std::unique_ptr<sched::Vcpu>> storage;
  sched::RunQueue b(0);
  storage.push_back(make_vcpu(0));
  {
    util::LockGuard guard(b.lock());
    b.insert_sorted(*storage.front());
  }
  util::ListHook* shared_anchor = &storage.front()->hook;

  storage.push_back(make_vcpu(5));
  storage.push_back(make_vcpu(5));
  sched::Vcpu& x = *storage[1];
  sched::Vcpu& y = *storage[2];

  const core::SpliceTask task1{shared_anchor, &x.hook, &x.hook};
  const core::SpliceTask task2{shared_anchor, &y.hook, &y.hook};

  InterleavingSchedule schedule(options);
  schedule.spawn("broken-worker-1",
                 [&task1] { core::execute_splice(task1); });
  schedule.spawn("broken-worker-2",
                 [&task2] { core::execute_splice(task2); });
  const auto report = schedule.run();

  b.list().add_size(2);
  util::Status status = b.check_invariants(/*require_sorted=*/true);
  b.list().abandon_all();  // never walk a possibly-corrupt ring again
  if (!report.completed) {
    return violation("overlapping-anchor: schedule hit the step cap");
  }
  return status;
}

TEST(ExplorerScenarioTest, NegativeControlOverlappingAnchorsAreCaught) {
  ExplorerOptions base;
  base.seed = 1;
  // Each broken worker is ~6 yield points; concentrate the change points
  // inside that window so seeds differ meaningfully.
  base.change_point_horizon = 16;
  const auto result = ScheduleExplorer::explore(
      base, 500, run_overlapping_anchor_schedule);
  ASSERT_TRUE(result.violation_found)
      << "harness failed to catch an overlapping-anchor splice set in "
      << result.schedules_explored << " schedules";
  EXPECT_LE(result.schedules_explored, 500u);

  // Deterministic replay: the failing seed reproduces the identical
  // violation, twice.
  ExplorerOptions replay = base;
  replay.seed = result.failing_seed;
  const util::Status first = run_overlapping_anchor_schedule(replay);
  const util::Status second = run_overlapping_anchor_schedule(replay);
  ASSERT_FALSE(first.is_ok());
  ASSERT_FALSE(second.is_ok());
  EXPECT_EQ(first.to_report(), second.to_report());
  EXPECT_EQ(first.to_report(), result.message);
}

TEST(ExplorerScenarioTest, PositiveControlDisjointAnchorsNeverFlagged) {
  // Same shape as the negative control but with the disjoint anchors
  // 𝒫²𝒮ℳ actually produces — no schedule may report a violation.
  const auto run_disjoint = [](const ExplorerOptions& options) {
    std::vector<std::unique_ptr<sched::Vcpu>> storage;
    sched::RunQueue b(0);
    storage.push_back(make_vcpu(0));
    storage.push_back(make_vcpu(10));
    for (int i = 0; i < 2; ++i) {
      util::LockGuard guard(b.lock());
      b.insert_sorted(*storage[i]);
    }
    storage.push_back(make_vcpu(5));
    storage.push_back(make_vcpu(15));
    sched::Vcpu& x = *storage[2];
    sched::Vcpu& y = *storage[3];
    const core::SpliceTask task1{&storage[0]->hook, &x.hook, &x.hook};
    const core::SpliceTask task2{&storage[1]->hook, &y.hook, &y.hook};

    InterleavingSchedule schedule(options);
    schedule.spawn("worker-1", [&task1] { core::execute_splice(task1); });
    schedule.spawn("worker-2", [&task2] { core::execute_splice(task2); });
    const auto report = schedule.run();

    b.list().add_size(2);
    util::Status status = b.check_invariants(/*require_sorted=*/true);
    if (status.is_ok()) {
      std::vector<sched::Credit> actual;
      for (const sched::Vcpu& vcpu : b.list()) {
        actual.push_back(vcpu.credit);
      }
      if (actual != std::vector<sched::Credit>{0, 5, 10, 15}) {
        status = violation("disjoint-control: wrong final order");
      }
    }
    b.list().abandon_all();
    if (!report.completed) {
      return violation("disjoint-control: schedule hit the step cap");
    }
    return status;
  };

  ExplorerOptions base;
  base.seed = 1;
  base.change_point_horizon = 16;
  const auto result = ScheduleExplorer::explore(base, 200, run_disjoint);
  EXPECT_FALSE(result.violation_found)
      << "seed " << result.failing_seed << ": " << result.message;
  EXPECT_EQ(result.schedules_explored, 200u);
}

}  // namespace
}  // namespace horse::harness
