#include "harness/schedule_explorer.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <utility>

namespace horse::harness {

namespace {

// The trampoline needs to find the schedule that owns the calling thread
// without taking a lock: thread-locals, set by thread_main before the body
// runs. Unmanaged threads see nullptr and fall straight through.
thread_local InterleavingSchedule* tls_schedule = nullptr;
thread_local std::size_t tls_index_storage = 0;

// Single-activation guard: two live schedules would fight over the global
// hook and serialise each other's threads into a deadlock.
std::atomic<InterleavingSchedule*> g_active{nullptr};

}  // namespace

// -- construction -----------------------------------------------------------

InterleavingSchedule::InterleavingSchedule(const ExplorerOptions& options)
    : options_(options) {
  InterleavingSchedule* expected = nullptr;
  const bool won = g_active.compare_exchange_strong(expected, this);
  assert(won && "only one InterleavingSchedule may be active at a time");
  (void)won;

  // Pre-draw every scheduling decision so the schedule is a pure function
  // of the seed: change-point step indices now, initial priorities in
  // run() (they depend on the thread count).
  util::Xoshiro256 rng(options_.seed);
  change_points_.reserve(options_.priority_change_points);
  for (std::size_t i = 0; i < options_.priority_change_points; ++i) {
    change_points_.push_back(
        1 + rng.bounded(options_.change_point_horizon ? options_.change_point_horizon : 1));
  }
  std::sort(change_points_.begin(), change_points_.end());

  // Dedicated stream for spin-burst jitter: its consumption order is
  // decided by the schedule itself (one draw per forced demotion), which
  // is in turn a pure function of the seed — replay re-draws identically.
  spin_jitter_rng_ = util::Xoshiro256(options_.seed ^ 0xD1577E12C0FFEE42ULL);
  spin_burst_limit_ = next_spin_burst();
}

std::size_t InterleavingSchedule::next_spin_burst() noexcept {
  const std::size_t t = options_.spin_demote_threshold;
  if (t <= 1) {
    return 1;
  }
  // Uniform in [t/2, 3t/2): mean t, never zero, and — the actual point —
  // varying, so consecutive demotions of a thread cycling through k yield
  // sites land at different positions mod k instead of phase-locking on
  // one site (which, if that site sits inside a critical section, starves
  // every lock waiter forever; observed with the warm-pool scenario's
  // take/retry loop before the jitter existed).
  const std::size_t half = t / 2;
  return half + spin_jitter_rng_.bounded(t);
}

InterleavingSchedule::~InterleavingSchedule() {
  g_active.store(nullptr, std::memory_order_release);
}

void InterleavingSchedule::spawn(std::string name,
                                 std::function<void()> body) {
  assert(!started_ && "spawn() must precede run()");
  auto managed = std::make_unique<ManagedThread>();
  managed->name = std::move(name);
  managed->body = std::move(body);
  threads_.push_back(std::move(managed));
}

// -- the scheduler ----------------------------------------------------------

std::size_t InterleavingSchedule::pick_locked() const noexcept {
  std::size_t best = kNone;
  std::int64_t best_priority = 0;
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    const ManagedThread& t = *threads_[i];
    if (t.state != ThreadRunState::kRunnable) {
      continue;
    }
    if (best == kNone || t.priority > best_priority) {
      best = i;
      best_priority = t.priority;
    }
  }
  return best;
}

void InterleavingSchedule::demote_locked(std::size_t index) noexcept {
  threads_[index]->priority = --demotion_floor_;
}

void InterleavingSchedule::hook_trampoline(const char* site) noexcept {
  if (InterleavingSchedule* schedule = tls_schedule) {
    schedule->on_yield(site);
  }
}

void InterleavingSchedule::on_yield(const char* site) noexcept {
  const std::size_t me = tls_index_storage;
  std::unique_lock<std::mutex> lock(mu_);
  if (free_run_) {
    return;
  }
  assert(current_ == me && "a non-current managed thread executed code");
  threads_[me]->last_site = site;
  ++steps_;
  if (steps_ >= options_.max_steps) {
    // Livelock under this schedule: stop serialising, let every thread
    // free-run to completion, report completed=false.
    free_run_ = true;
    cv_.notify_all();
    return;
  }

  // PCT change points: crossing one demotes the running thread below all
  // others, forcing a switch at a seed-chosen adversarial step.
  while (next_change_point_ < change_points_.size() &&
         steps_ >= change_points_[next_change_point_]) {
    demote_locked(me);
    ++next_change_point_;
  }

  std::size_t next = pick_locked();
  if (next == me) {
    // Spin-liveness deviation from textbook PCT (see header): a thread
    // re-picked too many times in a row gets demoted so whoever it is
    // spinning on can make progress. The burst length is re-drawn per
    // demotion (see next_spin_burst) to avoid phase-locking with
    // periodic retry loops.
    if (++consecutive_picks_ >= spin_burst_limit_) {
      demote_locked(me);
      consecutive_picks_ = 0;
      spin_burst_limit_ = next_spin_burst();
      next = pick_locked();
    }
  }
  if (next == me || next == kNone) {
    return;  // keep running
  }

  current_ = next;
  ++switches_;
  consecutive_picks_ = 0;
  cv_.notify_all();
  cv_.wait(lock, [&] { return free_run_ || current_ == me; });
}

void InterleavingSchedule::thread_main(std::size_t index) {
  tls_schedule = this;
  tls_index_storage = index;
  {
    std::unique_lock<std::mutex> lock(mu_);
    threads_[index]->state = ThreadRunState::kRunnable;
    ++registered_;
    cv_.notify_all();
    cv_.wait(lock,
             [&] { return free_run_ || current_ == index; });
  }

  threads_[index]->body();

  {
    std::unique_lock<std::mutex> lock(mu_);
    threads_[index]->state = ThreadRunState::kFinished;
    threads_[index]->last_site = "finished";
    ++finished_;
    if (current_ == index) {
      const std::size_t next = pick_locked();
      current_ = next;  // kNone when everyone is done
      if (next != kNone) {
        ++switches_;
      }
      consecutive_picks_ = 0;
    }
    cv_.notify_all();
  }
  tls_schedule = nullptr;
}

InterleavingSchedule::Report InterleavingSchedule::run() {
  assert(!started_);
  started_ = true;

  // Initial priorities: a seed-derived permutation of 1..n (distinct, all
  // above the demotion floor which counts down from 0).
  {
    util::Xoshiro256 rng(options_.seed ^ 0x9e3779b97f4a7c15ULL);
    const std::size_t n = threads_.size();
    std::vector<std::int64_t> ranks(n);
    for (std::size_t i = 0; i < n; ++i) {
      ranks[i] = static_cast<std::int64_t>(i + 1);
    }
    for (std::size_t i = n; i > 1; --i) {  // Fisher-Yates
      std::swap(ranks[i - 1], ranks[rng.bounded(i)]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      threads_[i]->priority = ranks[i];
    }
  }

  previous_hook_ = util::yield_hook();
  util::set_yield_hook(&InterleavingSchedule::hook_trampoline);

  for (std::size_t i = 0; i < threads_.size(); ++i) {
    threads_[i]->thread =
        std::thread([this, i] { thread_main(i); });
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return registered_ == threads_.size(); });
    current_ = pick_locked();
    cv_.notify_all();
    cv_.wait(lock, [&] { return finished_ == threads_.size(); });
  }

  for (auto& managed : threads_) {
    managed->thread.join();
  }

  util::set_yield_hook(previous_hook_);

  Report report;
  report.completed = !free_run_;
  report.steps = steps_;
  report.context_switches = switches_;
  return report;
}

// -- seed sweep -------------------------------------------------------------

ScheduleExplorer::Result ScheduleExplorer::explore(
    ExplorerOptions base, std::size_t max_schedules,
    const ScheduleFn& run_one) {
  Result result;
  for (std::size_t i = 0; i < max_schedules; ++i) {
    ExplorerOptions options = base;
    options.seed = base.seed + i;
    const util::Status status = run_one(options);
    ++result.schedules_explored;
    if (!status.is_ok()) {
      result.violation_found = true;
      result.failing_seed = options.seed;
      result.message = status.to_report();
      return result;
    }
  }
  return result;
}

}  // namespace horse::harness
