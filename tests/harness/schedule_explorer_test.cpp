// Unit tests for the interleaving explorer itself: the harness must be
// trustworthy before any scenario result built on it means anything.
#include "harness/schedule_explorer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/yield_point.hpp"

namespace horse::harness {
namespace {

TEST(InterleavingScheduleTest, RunsEveryThreadToCompletion) {
  ExplorerOptions options;
  options.seed = 7;
  InterleavingSchedule schedule(options);
  int a = 0;
  int b = 0;
  int c = 0;
  schedule.spawn("a", [&] { a = 1; });
  schedule.spawn("b", [&] { b = 2; });
  schedule.spawn("c", [&] { c = 3; });
  const auto report = schedule.run();
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(c, 3);
}

TEST(InterleavingScheduleTest, SerialisesThreadsOneAtATime) {
  // `inside` counts threads concurrently executing the straight-line code
  // BETWEEN two yield points; under the explorer it must never exceed 1
  // even though the bodies do nothing to exclude each other. (The region
  // must not span a yield point itself: a thread parked at a yield is
  // still "between" its increment and decrement, and the next granted
  // thread legitimately overlaps it — serialisation is of execution, not
  // of region occupancy.)
  ExplorerOptions options;
  options.seed = 11;
  InterleavingSchedule schedule(options);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  for (int t = 0; t < 4; ++t) {
    schedule.spawn("worker", [&] {
      for (int i = 0; i < 50; ++i) {
        const int now = inside.fetch_add(1) + 1;
        int expected = max_inside.load();
        while (now > expected &&
               !max_inside.compare_exchange_weak(expected, now)) {
        }
        inside.fetch_sub(1);
        util::yield_point("test.body");
      }
    });
  }
  const auto report = schedule.run();
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(max_inside.load(), 1);
  EXPECT_GT(report.context_switches, 0u);
}

// A textbook lost update: non-atomic read-modify-write with a preemption
// point between the read and the write. The explorer must (a) find a
// schedule where an update is lost, and (b) replay any seed to the exact
// same outcome — that pair of properties is what the negative-control
// splice test later relies on.
int run_lost_update_schedule(std::uint64_t seed, std::size_t* switches) {
  ExplorerOptions options;
  options.seed = seed;
  // The whole schedule is ~16 yield points; concentrate the PCT change
  // points inside that window or most seeds never preempt at all.
  options.change_point_horizon = 16;
  InterleavingSchedule schedule(options);
  int counter = 0;
  for (int t = 0; t < 2; ++t) {
    schedule.spawn("incrementer", [&counter] {
      for (int i = 0; i < 4; ++i) {
        const int observed = counter;
        util::yield_point("test.between_read_and_write");
        counter = observed + 1;
      }
    });
  }
  const auto report = schedule.run();
  EXPECT_TRUE(report.completed);
  if (switches != nullptr) {
    *switches = report.context_switches;
  }
  return counter;
}

TEST(InterleavingScheduleTest, FindsLostUpdateWithinSeedSweep) {
  const auto result = ScheduleExplorer::explore(
      ExplorerOptions{.seed = 1}, 100, [](const ExplorerOptions& options) {
        const int counter = run_lost_update_schedule(options.seed, nullptr);
        if (counter != 8) {
          return util::Status{util::StatusCode::kInternal,
                              "lost update: counter " +
                                  std::to_string(counter) + " != 8"};
        }
        return util::Status::ok();
      });
  ASSERT_TRUE(result.violation_found)
      << "no lost update in " << result.schedules_explored << " schedules";
  EXPECT_LE(result.schedules_explored, 100u);

  // Replay: the failing seed must reproduce the identical interleaving —
  // same final counter, same context-switch count, twice in a row.
  std::size_t switches_first = 0;
  std::size_t switches_second = 0;
  const int replay_first =
      run_lost_update_schedule(result.failing_seed, &switches_first);
  const int replay_second =
      run_lost_update_schedule(result.failing_seed, &switches_second);
  EXPECT_NE(replay_first, 8) << "failing seed did not reproduce";
  EXPECT_EQ(replay_first, replay_second);
  EXPECT_EQ(switches_first, switches_second);
}

TEST(InterleavingScheduleTest, UnmanagedThreadsPassThroughYieldPoints) {
  // A foreign thread hammering yield points while a schedule is active
  // must neither deadlock nor be serialised into the schedule.
  ExplorerOptions options;
  options.seed = 3;
  InterleavingSchedule schedule(options);
  std::atomic<bool> foreign_done{false};
  std::thread foreign([&] {
    for (int i = 0; i < 10'000; ++i) {
      util::yield_point("foreign.site");
    }
    foreign_done.store(true);
  });
  int work = 0;
  schedule.spawn("managed", [&] {
    for (int i = 0; i < 100; ++i) {
      util::yield_point("managed.site");
      ++work;
    }
  });
  const auto report = schedule.run();
  foreign.join();
  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(foreign_done.load());
  EXPECT_EQ(work, 100);
}

TEST(InterleavingScheduleTest, StepCapReleasesThreadsToFreeRun) {
  ExplorerOptions options;
  options.seed = 5;
  options.max_steps = 10;  // far fewer than the bodies request
  InterleavingSchedule schedule(options);
  // Atomic: once the step cap trips, the threads genuinely run in
  // parallel, so their completion marker must synchronise on its own.
  std::atomic<int> done{0};
  for (int t = 0; t < 2; ++t) {
    schedule.spawn("chatty", [&done] {
      for (int i = 0; i < 1'000; ++i) {
        util::yield_point("test.chatty");
      }
      done.fetch_add(1);
    });
  }
  const auto report = schedule.run();
  EXPECT_FALSE(report.completed);
  EXPECT_LE(report.steps, options.max_steps);
  EXPECT_EQ(done.load(), 2);
}

TEST(InterleavingScheduleTest, SequentialSchedulesReuseTheHookCleanly) {
  // Back-to-back schedules must install/restore the global hook without
  // leaking state between runs.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ExplorerOptions options;
    options.seed = seed;
    InterleavingSchedule schedule(options);
    int x = 0;
    schedule.spawn("solo", [&] {
      util::yield_point("solo.site");
      x = 42;
    });
    EXPECT_TRUE(schedule.run().completed);
    EXPECT_EQ(x, 42);
  }
  EXPECT_EQ(util::yield_hook(), nullptr);
}

}  // namespace
}  // namespace horse::harness
