// Fault site `sched.epoch.stall`: a reclaim attempt that observes a
// stalled reader must decline the epoch advance. Garbage stays pending —
// bounded by what was retired, never freed under a live reader (no UAF;
// the ASan preset enforces the latter for real) — and the moment the
// stall clears, maintenance drains everything.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "core/horse_resume.hpp"
#include "util/epoch.hpp"
#include "util/fault_injection.hpp"

namespace horse::core {
namespace {

using util::FaultInjector;
using util::ScopedFault;

struct CountedNode {
  explicit CountedNode(std::atomic<int>& counter) : destroyed(&counter) {
    retire.owner = this;
    retire.destroy = [](void* owner) {
      auto* node = static_cast<CountedNode*>(owner);
      node->destroyed->fetch_add(1);
      delete node;
    };
  }
  std::atomic<int>* destroyed;
  util::EpochRetireNode retire;
};

class EpochFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::global().reset(); }
  void TearDown() override { FaultInjector::global().reset(); }
};

TEST_F(EpochFaultTest, StallFreezesEpochAndBoundsGarbage) {
  util::EpochReclaimer reclaimer;
  std::atomic<int> destroyed{0};
  constexpr int kNodes = 8;
  {
    auto fault = ScopedFault::always("sched.epoch.stall");
    for (int i = 0; i < kNodes; ++i) {
      reclaimer.retire(&(new CountedNode(destroyed))->retire);
      EXPECT_EQ(reclaimer.try_reclaim(), 0u);
    }
    // Declined on every attempt: the epoch never advanced, nothing was
    // freed, and the garbage is exactly the outstanding retirements.
    EXPECT_EQ(reclaimer.epoch(), 0u);
    EXPECT_EQ(reclaimer.reclaimed(), 0u);
    EXPECT_EQ(reclaimer.pending(), static_cast<std::uint64_t>(kNodes));
    EXPECT_EQ(destroyed.load(), 0);
  }
  // Stall cleared: three advances walk the horizon past the frozen
  // bucket and the whole backlog drains.
  std::size_t freed = 0;
  for (int i = 0; i < 3 && freed == 0; ++i) {
    freed = reclaimer.try_reclaim();
  }
  EXPECT_EQ(freed, static_cast<std::size_t>(kNodes));
  EXPECT_EQ(destroyed.load(), kNodes);
  EXPECT_EQ(reclaimer.pending(), 0u);
}

TEST_F(EpochFaultTest, NthStallSkipsExactlyOneRound) {
  util::EpochReclaimer reclaimer;
  std::atomic<int> destroyed{0};
  reclaimer.retire(&(new CountedNode(destroyed))->retire);

  auto fault = ScopedFault::nth("sched.epoch.stall", 1);
  EXPECT_EQ(reclaimer.try_reclaim(), 0u);  // the injected stall
  std::size_t freed = 0;
  for (int i = 0; i < 3 && freed == 0; ++i) {
    freed = reclaimer.try_reclaim();  // recovery needs no reset
  }
  EXPECT_EQ(freed, 1u);
  EXPECT_EQ(destroyed.load(), 1);
}

TEST_F(EpochFaultTest, ResumePathSurvivesAPermanentStall) {
  // Whole-engine run with reclamation permanently declined: every resume
  // keeps retiring its index node, none is ever freed, and the resumes
  // themselves must stay correct (the retired nodes are unreachable for
  // new lookups, so deferred-forever is safe, just unbounded in memory —
  // bounded here by the cycle count).
  sched::CpuTopology topology(4);
  HorseConfig config;
  config.num_ull_runqueues = 1;
  config.epoch_reclaim = true;
  HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker(), config,
                           HorseFeatures::all());
  vmm::SandboxConfig sandbox_config;
  sandbox_config.name = "probe";
  sandbox_config.num_vcpus = 2;
  sandbox_config.memory_mb = 1;
  sandbox_config.ull = true;
  vmm::Sandbox probe(1, sandbox_config);
  ASSERT_TRUE(engine.start(probe).is_ok());

  util::EpochReclaimer& epoch = topology.queue(3).epoch();
  constexpr int kCycles = 6;
  {
    auto fault = ScopedFault::always("sched.epoch.stall");
    for (int i = 0; i < kCycles; ++i) {
      ASSERT_TRUE(engine.pause(probe).is_ok());
      ASSERT_TRUE(engine.resume(probe).is_ok());
    }
    EXPECT_EQ(epoch.reclaimed(), 0u);
    EXPECT_GE(epoch.retired(), static_cast<std::uint64_t>(kCycles));
    EXPECT_EQ(epoch.pending(), epoch.retired());
  }

  // Stall cleared: the next maintenance passes (pause-time track pumps
  // the reclaimer once per cycle) start freeing the backlog.
  const std::uint64_t backlog = epoch.pending();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.pause(probe).is_ok());
    ASSERT_TRUE(engine.resume(probe).is_ok());
  }
  EXPECT_GT(epoch.reclaimed(), 0u);
  EXPECT_LT(epoch.pending(), backlog + 4);
  ASSERT_TRUE(engine.destroy(probe).is_ok());
  // Engine/topology teardown drains the rest; ASan would flag any leak
  // or double free.
}

}  // namespace
}  // namespace horse::core
