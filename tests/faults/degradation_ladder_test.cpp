// The graceful-degradation ladder, rung by rung, driven by injected
// faults:
//
//   crew rung      — a stalled/dead merge worker is stolen from by the
//                    dispatcher watchdog, quarantined, and respawned; with
//                    the respawn budget exhausted the crew demotes itself
//                    to a full sequential executor. The resume succeeds
//                    either way.
//   engine rung    — a stale or poisoned 𝒫²𝒮ℳ index demotes one resume to
//                    the vanilla sorted-merge walk and schedules the index
//                    rebuild off the hot path. The resume succeeds.
//   platform rung  — a failed start attempt demotes the invocation one
//                    rung colder (kHorse → kWarm → kRestore → kCold), and
//                    a sandbox whose resume fails repeatedly is
//                    quarantined. The invocation succeeds at a colder
//                    rung.
//
// Every scenario is deterministic: faults are armed by exact hit count
// (arm_nth / arm_always) on the process-global injector and disarmed via
// ScopedFault, so each test stands alone.
#include <gtest/gtest.h>

#include <memory>

#include "core/horse_resume.hpp"
#include "faas/platform.hpp"
#include "util/fault_injection.hpp"
#include "vmm/snapshot.hpp"
#include "workloads/array_filter.hpp"

namespace horse {
namespace {

using util::FaultInjector;
using util::ScopedFault;

std::unique_ptr<vmm::Sandbox> make_ull_sandbox(sched::SandboxId id,
                                               std::uint32_t vcpus) {
  vmm::SandboxConfig config;
  config.name = "ull-fn";
  config.num_vcpus = vcpus;
  config.memory_mb = 1;
  config.ull = true;
  return std::make_unique<vmm::Sandbox>(id, config);
}

class FaultLadderTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::global().reset(); }
  void TearDown() override { FaultInjector::global().reset(); }
};

// ---------------------------------------------------------------------------
// Crew rung: watchdog steal, quarantine, respawn, full sequential demotion.
// ---------------------------------------------------------------------------

core::HorseConfig parallel_config() {
  core::HorseConfig config;
  config.merge_mode = core::MergeMode::kParallel;
  config.crew_size = 2;
  config.crew_watchdog_timeout = 5 * util::kMillisecond;
  // The crew-rung scenarios inject faults into crew workers, so every
  // merge must actually dispatch to the crew — disable the adaptive
  // inline-splice shortcut.
  config.inline_splice_max_runs = 0;
  return config;
}

TEST_F(FaultLadderTest, WatchdogStealsFromStalledWorkerAndRespawns) {
  sched::CpuTopology topology(8);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker(),
                                 parallel_config());
  auto sandbox = make_ull_sandbox(1, 4);
  ASSERT_TRUE(engine.start(*sandbox).is_ok());
  ASSERT_TRUE(engine.pause(*sandbox).is_ok());

  {
    auto fault = ScopedFault::nth("crew.worker_stall", 1);
    ASSERT_TRUE(engine.resume(*sandbox).is_ok());
  }

  // The splice completed exactly once despite the stall: all vCPUs landed
  // on the reserved queue and it stayed sorted.
  EXPECT_EQ(topology.queue(7).size(), 4u);
  EXPECT_TRUE(topology.queue(7).is_sorted());

  ASSERT_NE(engine.crew(), nullptr);
  const core::MergeCrewStats stats = engine.crew()->stats();
  EXPECT_GE(stats.watchdog_steals, 1u);
  EXPECT_GE(stats.workers_quarantined, 1u);
  EXPECT_GE(stats.workers_respawned, 1u);
  EXPECT_EQ(stats.full_sequential_fallbacks, 0u);
  // The quarantined slot was refilled: the crew is back to full strength.
  EXPECT_EQ(engine.crew()->healthy_workers(), 2u);
  // The degraded chunk never degraded the *resume*: the index was fine.
  EXPECT_EQ(engine.degradation_stats().fallback_merges, 0u);

  ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
}

TEST_F(FaultLadderTest, WatchdogStealsFromDeadWorker) {
  sched::CpuTopology topology(8);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker(),
                                 parallel_config());
  auto sandbox = make_ull_sandbox(1, 4);
  ASSERT_TRUE(engine.start(*sandbox).is_ok());
  ASSERT_TRUE(engine.pause(*sandbox).is_ok());

  {
    auto fault = ScopedFault::nth("crew.worker_death", 1);
    ASSERT_TRUE(engine.resume(*sandbox).is_ok());
  }

  EXPECT_EQ(topology.queue(7).size(), 4u);
  EXPECT_TRUE(topology.queue(7).is_sorted());
  const core::MergeCrewStats stats = engine.crew()->stats();
  EXPECT_GE(stats.watchdog_steals, 1u);
  EXPECT_GE(stats.workers_quarantined, 1u);
  EXPECT_GE(stats.workers_respawned, 1u);
  EXPECT_EQ(engine.crew()->healthy_workers(), 2u);

  ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
}

TEST_F(FaultLadderTest, ExhaustedRespawnBudgetDemotesToFullSequential) {
  sched::CpuTopology topology(8);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker(),
                                 parallel_config());
  ASSERT_NE(engine.crew(), nullptr);
  engine.crew()->set_max_respawns_per_slot(0);  // fail-static: never respawn

  auto sandbox = make_ull_sandbox(1, 4);
  ASSERT_TRUE(engine.start(*sandbox).is_ok());

  // Every worker that picks up a chunk dies. With no respawn budget, each
  // resume burns through one worker until none are left; from then on the
  // crew runs every dispatch inline. All resumes must still succeed.
  auto fault = ScopedFault::always("crew.worker_death");
  for (int cycle = 0; cycle < 4; ++cycle) {
    ASSERT_TRUE(engine.pause(*sandbox).is_ok());
    ASSERT_TRUE(engine.resume(*sandbox).is_ok()) << "cycle " << cycle;
    EXPECT_EQ(topology.queue(7).size(), 4u);
    EXPECT_TRUE(topology.queue(7).is_sorted());
  }

  const core::MergeCrewStats stats = engine.crew()->stats();
  EXPECT_EQ(engine.crew()->healthy_workers(), 0u);
  EXPECT_EQ(stats.workers_respawned, 0u);
  EXPECT_GE(stats.workers_quarantined, 1u);
  EXPECT_GE(stats.full_sequential_fallbacks, 1u);

  ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
}

// ---------------------------------------------------------------------------
// Engine rung: untrusted 𝒫²𝒮ℳ index → vanilla merge fallback + deferred
// off-hot-path rebuild.
// ---------------------------------------------------------------------------

TEST_F(FaultLadderTest, StaleIndexFallsBackToVanillaMerge) {
  sched::CpuTopology topology(8);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  auto sandbox = make_ull_sandbox(1, 4);
  ASSERT_TRUE(engine.start(*sandbox).is_ok());
  ASSERT_TRUE(engine.pause(*sandbox).is_ok());

  {
    auto fault = ScopedFault::nth("horse.resume.stale_index", 1);
    ASSERT_TRUE(engine.resume(*sandbox).is_ok());
  }

  // Degraded but correct: every vCPU scheduled, queue sorted.
  EXPECT_EQ(sandbox->state(), vmm::SandboxState::kRunning);
  EXPECT_EQ(topology.queue(7).size(), 4u);
  EXPECT_TRUE(topology.queue(7).is_sorted());
  for (const auto& vcpu : sandbox->vcpus()) {
    EXPECT_EQ(vcpu->state, sched::VcpuState::kRunnable);
    EXPECT_EQ(vcpu->last_cpu, 7u);
  }

  const core::ResumeDegradationStats stats = engine.degradation_stats();
  EXPECT_EQ(stats.fallback_merges, 1u);
  EXPECT_EQ(stats.stale_index_fallbacks, 1u);
  EXPECT_EQ(stats.poisoned_index_fallbacks, 0u);
  EXPECT_EQ(stats.deferred_refreshes, 1u);

  // The fault fired once; the next cycle takes the fast path again.
  ASSERT_TRUE(engine.pause(*sandbox).is_ok());
  ASSERT_TRUE(engine.resume(*sandbox).is_ok());
  EXPECT_EQ(engine.degradation_stats().fallback_merges, 1u);

  ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
}

TEST_F(FaultLadderTest, PoisonedIndexFallsBackToVanillaMerge) {
  sched::CpuTopology topology(8);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  auto sandbox = make_ull_sandbox(1, 3);
  ASSERT_TRUE(engine.start(*sandbox).is_ok());

  {
    // Corrupt the index at build time (pause), then resume against it.
    auto fault = ScopedFault::nth("p2sm.rebuild.corrupt_anchor", 1);
    ASSERT_TRUE(engine.pause(*sandbox).is_ok());
  }
  ASSERT_TRUE(engine.resume(*sandbox).is_ok());

  EXPECT_EQ(topology.queue(7).size(), 3u);
  EXPECT_TRUE(topology.queue(7).is_sorted());
  const core::ResumeDegradationStats stats = engine.degradation_stats();
  EXPECT_EQ(stats.fallback_merges, 1u);
  EXPECT_EQ(stats.poisoned_index_fallbacks, 1u);
  EXPECT_EQ(stats.stale_index_fallbacks, 0u);
  EXPECT_EQ(stats.deferred_refreshes, 1u);

  // A clean pause rebuilds a healthy index: fast path restored.
  ASSERT_TRUE(engine.pause(*sandbox).is_ok());
  ASSERT_TRUE(engine.resume(*sandbox).is_ok());
  EXPECT_EQ(engine.degradation_stats().fallback_merges, 1u);

  ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
}

TEST_F(FaultLadderTest, ResumePrologueFaultsLeaveSandboxRetryable) {
  sched::CpuTopology topology(4);
  vmm::ResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  vmm::SandboxConfig config;
  config.name = "plain";
  config.num_vcpus = 2;
  config.memory_mb = 1;
  vmm::Sandbox sandbox(1, config);
  ASSERT_TRUE(engine.start(sandbox).is_ok());
  ASSERT_TRUE(engine.pause(sandbox).is_ok());

  {
    auto fault = ScopedFault::nth("resume.parse.fault", 1);
    const util::Status status = engine.resume(sandbox);
    EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(sandbox.state(), vmm::SandboxState::kPaused);

  {
    auto fault = ScopedFault::nth("resume.sanity.fault", 1);
    const util::Status status = engine.resume(sandbox);
    EXPECT_EQ(status.code(), util::StatusCode::kInternal);
  }
  EXPECT_EQ(sandbox.state(), vmm::SandboxState::kPaused);

  // Both failures were transient: the very next resume succeeds.
  ASSERT_TRUE(engine.resume(sandbox).is_ok());
  ASSERT_TRUE(engine.destroy(sandbox).is_ok());
}

// ---------------------------------------------------------------------------
// Snapshot + warm-pool fault sites (the platform ladder's raw material).
// ---------------------------------------------------------------------------

TEST_F(FaultLadderTest, CorruptSnapshotRestoreIsDetected) {
  sched::CpuTopology topology(2);
  vmm::ResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  vmm::SnapshotManager manager(vmm::VmmProfile::firecracker());
  vmm::SandboxConfig config;
  config.name = "snap";
  config.num_vcpus = 1;
  config.memory_mb = 1;
  vmm::Sandbox sandbox(1, config);
  ASSERT_TRUE(engine.start(sandbox).is_ok());
  ASSERT_TRUE(engine.pause(sandbox).is_ok());
  const auto snapshot = manager.take(sandbox);
  ASSERT_TRUE(snapshot.has_value());

  {
    auto fault = ScopedFault::nth("snapshot.restore.corrupt", 1);
    const auto restored = manager.restore(*snapshot, 2);
    ASSERT_FALSE(restored.has_value());
    EXPECT_EQ(restored.status().code(), util::StatusCode::kInternal);
  }
  // The snapshot itself is fine; only that restore attempt was corrupt.
  const auto retried = manager.restore(*snapshot, 3);
  EXPECT_TRUE(retried.has_value());
  ASSERT_TRUE(engine.destroy(sandbox).is_ok());
}

TEST_F(FaultLadderTest, WarmPoolFaultSitesKeepAccountingConsistent) {
  faas::WarmPool pool;
  vmm::SandboxConfig config;
  config.name = "pooled";
  config.num_vcpus = 1;
  config.memory_mb = 1;
  auto sandbox = std::make_unique<vmm::Sandbox>(1, config);
  sandbox->set_state(vmm::SandboxState::kPaused);

  {
    // Injected park rejection: the sandbox comes back to the caller.
    auto fault = ScopedFault::nth("warm_pool.park.reject", 1);
    std::unique_ptr<vmm::Sandbox> rejected;
    const auto status = pool.put(0, std::move(sandbox), 0, &rejected);
    EXPECT_EQ(status.code(), util::StatusCode::kResourceExhausted);
    ASSERT_NE(rejected, nullptr);
    EXPECT_EQ(pool.available(0), 0u);
    sandbox = std::move(rejected);
  }
  ASSERT_TRUE(pool.put(0, std::move(sandbox), 0).is_ok());
  EXPECT_EQ(pool.available(0), 1u);

  {
    // Injected take miss: the entry stays parked.
    auto fault = ScopedFault::nth("warm_pool.take.miss", 1);
    EXPECT_EQ(pool.take(0), nullptr);
  }
  EXPECT_EQ(pool.available(0), 1u);
  EXPECT_NE(pool.take(0), nullptr);
}

// ---------------------------------------------------------------------------
// Platform rung: the retry ladder and sandbox health quarantine.
// ---------------------------------------------------------------------------

class PlatformLadderTest : public FaultLadderTest {
 protected:
  PlatformLadderTest() : platform_(make_config()) {
    faas::FunctionSpec spec;
    spec.name = "filter";
    spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
    spec.sandbox.name = "filter-sb";
    spec.sandbox.num_vcpus = 1;
    spec.sandbox.memory_mb = 1;
    spec.sandbox.ull = true;
    function_ = *platform_.registry().add(std::move(spec));
  }

  static faas::PlatformConfig make_config() {
    faas::PlatformConfig config;
    config.num_cpus = 4;
    config.seed = 7;
    return config;
  }

  static workloads::Request request() {
    workloads::Request r;
    r.payload = {1, 5, 10};
    r.threshold = 4;
    return r;
  }

  faas::Platform platform_;
  faas::FunctionId function_ = 0;
};

TEST_F(PlatformLadderTest, TakeMissDemotesHorseToWarm) {
  ASSERT_TRUE(platform_.provision(function_, 1).is_ok());
  auto fault = ScopedFault::nth("warm_pool.take.miss", 1);
  const auto record =
      platform_.invoke(function_, request(), faas::StartMode::kHorse);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->requested, faas::StartMode::kHorse);
  EXPECT_EQ(record->mode, faas::StartMode::kWarm);
  EXPECT_EQ(record->fallbacks, 1u);
  EXPECT_GT(record->retry_backoff, 0);
  const auto counters = platform_.counters();
  EXPECT_EQ(counters.rung_fallbacks, 1u);
  EXPECT_EQ(counters.degraded_invocations, 1u);
  EXPECT_EQ(counters.warm, 1u);
  EXPECT_EQ(counters.horse, 0u);
}

TEST_F(PlatformLadderTest, CorruptSnapshotDemotesRestoreToCold) {
  auto fault = ScopedFault::nth("snapshot.restore.corrupt", 1);
  const auto record =
      platform_.invoke(function_, request(), faas::StartMode::kRestore);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->requested, faas::StartMode::kRestore);
  EXPECT_EQ(record->mode, faas::StartMode::kCold);
  EXPECT_EQ(record->fallbacks, 1u);

  // The corrupt snapshot was dropped; the next restore rebuilds a fresh
  // one and succeeds at the requested rung.
  const auto retried =
      platform_.invoke(function_, request(), faas::StartMode::kRestore);
  ASSERT_TRUE(retried.has_value());
  EXPECT_EQ(retried->mode, faas::StartMode::kRestore);
}

TEST_F(PlatformLadderTest, RepeatedResumeFailureQuarantinesSandbox) {
  ASSERT_TRUE(platform_.provision(function_, 1).is_ok());
  // Every resume attempt fails at the control-plane sanity step. The
  // default quarantine threshold is 2: strike one re-pools the sandbox,
  // strike two destroys it, and the ladder completes the invocation via
  // a snapshot restore (which never resumes).
  auto fault = ScopedFault::always("resume.sanity.fault");
  const auto record =
      platform_.invoke(function_, request(), faas::StartMode::kHorse);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->requested, faas::StartMode::kHorse);
  EXPECT_EQ(record->mode, faas::StartMode::kRestore);
  EXPECT_EQ(record->fallbacks, 2u);

  const auto counters = platform_.counters();
  EXPECT_EQ(counters.rung_fallbacks, 2u);
  EXPECT_EQ(counters.degraded_invocations, 1u);
  EXPECT_EQ(counters.sandboxes_quarantined, 1u);
  EXPECT_EQ(counters.restore, 1u);
  EXPECT_EQ(counters.failed, 0u);
}

TEST_F(PlatformLadderTest, StaleIndexDegradesResumeWithoutDemotion) {
  ASSERT_TRUE(platform_.provision(function_, 1).is_ok());
  // A stale index is handled INSIDE the engine (vanilla-merge fallback):
  // the resume still succeeds, so the platform never demotes the rung.
  auto fault = ScopedFault::nth("horse.resume.stale_index", 1);
  const auto record =
      platform_.invoke(function_, request(), faas::StartMode::kHorse);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->mode, faas::StartMode::kHorse);
  EXPECT_EQ(record->fallbacks, 0u);
  const auto stats = platform_.horse_engine().degradation_stats();
  EXPECT_EQ(stats.fallback_merges, 1u);
  EXPECT_EQ(stats.stale_index_fallbacks, 1u);
  EXPECT_EQ(platform_.counters().rung_fallbacks, 0u);
}

TEST_F(PlatformLadderTest, ParkRejectionTearsDownSandboxProperly) {
  // The post-execution re-pool is NOT ladder material: a park rejection
  // fails the invocation, but the sandbox must be torn down fully (no
  // leaked engine tracking) and counted.
  auto fault = ScopedFault::nth("warm_pool.park.reject", 1);
  const auto record =
      platform_.invoke(function_, request(), faas::StartMode::kCold);
  EXPECT_FALSE(record.has_value());
  const auto counters = platform_.counters();
  EXPECT_EQ(counters.failed, 1u);
  EXPECT_EQ(counters.pool_overflow_destroyed, 1u);
  EXPECT_EQ(platform_.warm_pool().available(function_), 0u);

  // The platform is healthy afterwards: a fresh cold start pools fine.
  const auto retried =
      platform_.invoke(function_, request(), faas::StartMode::kCold);
  ASSERT_TRUE(retried.has_value());
  EXPECT_EQ(platform_.warm_pool().available(function_), 1u);
}

TEST_F(PlatformLadderTest, DisabledLadderSurfacesRawErrors) {
  faas::PlatformConfig config = make_config();
  config.degradation.enabled = false;
  faas::Platform platform(config);
  faas::FunctionSpec spec;
  spec.name = "filter";
  spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  spec.sandbox.name = "filter-sb";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = true;
  const auto id = *platform.registry().add(std::move(spec));

  auto fault = ScopedFault::nth("snapshot.restore.corrupt", 1);
  const auto record =
      platform.invoke(id, request(), faas::StartMode::kRestore);
  EXPECT_FALSE(record.has_value());
  EXPECT_EQ(record.status().code(), util::StatusCode::kInternal);
  EXPECT_EQ(platform.counters().rung_fallbacks, 0u);
}

}  // namespace
}  // namespace horse
