// Fault-ladder tests for the overload-control sites:
//
//   admission.spurious_shed — fires on the cluster submit path and sheds
//     a healthy submission. Proves a shed is a TYPED outcome surfaced
//     from drain() (never a silent loss) and that the cluster's
//     completed + shed accounting still covers every submission.
//   breaker.stuck_open — suppresses a breaker's open → half-open edge, so
//     the tests can hold a breaker open deterministically and prove that
//     recovery probing (not time alone) is what closes it.
//
// Plus the platform-side composition these sites exist to exercise: the
// per-function breaker opening on repeated resume failures (driven by the
// existing resume.sanity.fault site) and the host-wide retry budget
// degrading ladder escalation into a typed rejection when exhausted.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cluster/scheduler.hpp"
#include "faas/admission.hpp"
#include "faas/platform.hpp"
#include "util/fault_injection.hpp"
#include "workloads/array_filter.hpp"

namespace horse {
namespace {

using util::FaultInjector;
using util::ScopedFault;

faas::FunctionSpec filter_spec() {
  faas::FunctionSpec spec;
  spec.name = "filter";
  spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  spec.sandbox.name = "filter-sb";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = true;
  return spec;
}

workloads::Request filter_request() {
  workloads::Request request;
  request.payload = {5, 10, 15};
  request.threshold = 7;
  return request;
}

class OverloadFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::global().reset(); }
  void TearDown() override { FaultInjector::global().reset(); }

  static faas::PlatformConfig breaker_config() {
    faas::PlatformConfig config;
    config.num_cpus = 4;
    config.admission.breaker_enabled = true;
    config.admission.breaker.window = 4;
    config.admission.breaker.min_samples = 2;
    config.admission.breaker.failure_rate = 0.5;
    config.admission.breaker.cooldown_base = 1 * util::kMillisecond;
    config.admission.breaker.cooldown_cap = 10 * util::kMillisecond;
    config.admission.breaker.half_open_probes = 1;
    return config;
  }

  /// Drive `platform`'s breaker for `function` open at logical time `now`
  /// by forcing resume-sanity failures through the ladder (each invoke
  /// still succeeds at a colder rung — the breaker watches the resume
  /// rungs, not the final outcome).
  static void open_breaker(faas::Platform& platform, faas::FunctionId function,
                           util::Nanos now) {
    auto fault = ScopedFault::always("resume.sanity.fault");
    for (int i = 0; i < 4 &&
                    platform.breaker_state(function) !=
                        faas::CircuitBreaker::State::kOpen;
         ++i) {
      ASSERT_TRUE(platform.provision(function, 1).is_ok());
      faas::InvokeControls controls;
      controls.now = now;
      const auto record = platform.invoke(function, filter_request(),
                                          faas::StartMode::kHorse, controls);
      ASSERT_TRUE(record.has_value()) << record.status().to_report();
      EXPECT_NE(record->mode, faas::StartMode::kHorse)
          << "resume.sanity.fault should have demoted the rung";
    }
    ASSERT_EQ(platform.breaker_state(function),
              faas::CircuitBreaker::State::kOpen);
  }
};

// ---------------------------------------------------------------------------
// Circuit breaker: open on resume failures, typed rejection while open.
// ---------------------------------------------------------------------------

TEST_F(OverloadFaultTest, BreakerOpensOnResumeFailuresAndRejectsTyped) {
  faas::Platform platform(breaker_config());
  const auto function = platform.registry().add(filter_spec());
  ASSERT_TRUE(function);
  const util::Nanos t0 = 1'000'000;
  open_breaker(platform, *function, t0);
  EXPECT_EQ(platform.breaker_stats(*function).opens, 1u);
  EXPECT_EQ(platform.counters().breaker_opens, 1u);

  // While open (cooldown drawn from (0, 1ms] past t0), a request at t0 is
  // refused with a typed reject — the function body never runs.
  faas::InvokeControls controls;
  controls.now = t0;
  const auto rejected = platform.invoke(*function, filter_request(),
                                        faas::StartMode::kHorse, controls);
  ASSERT_FALSE(rejected.has_value());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(controls.reject, faas::SubmissionReject::kBreakerOpen);
  EXPECT_EQ(platform.counters().breaker_rejections, 1u);
}

TEST_F(OverloadFaultTest, StuckOpenFaultHoldsBreakerPastCooldown) {
  faas::Platform platform(breaker_config());
  const auto function = platform.registry().add(filter_spec());
  ASSERT_TRUE(function);
  const util::Nanos t0 = 1'000'000;
  open_breaker(platform, *function, t0);
  const util::Nanos cap = breaker_config().admission.breaker.cooldown_cap;

  {
    // Well past any cooldown the breaker could have drawn — without the
    // fault this WOULD be the open → half-open edge.
    auto fault = ScopedFault::always("breaker.stuck_open");
    faas::InvokeControls controls;
    controls.now = t0 + cap + 1;
    const auto rejected = platform.invoke(*function, filter_request(),
                                          faas::StartMode::kHorse, controls);
    ASSERT_FALSE(rejected.has_value());
    EXPECT_EQ(controls.reject, faas::SubmissionReject::kBreakerOpen);
    EXPECT_EQ(platform.breaker_state(*function),
              faas::CircuitBreaker::State::kOpen);
    EXPECT_EQ(platform.breaker_stats(*function).stuck_open, 1u);
    EXPECT_EQ(platform.breaker_stats(*function).probe_rounds, 0u)
        << "the fault must suppress the half-open transition";
  }

  // Fault disarmed and resume healthy again: the next attempt past the
  // re-armed cooldown is the half-open probe, and its success closes the
  // breaker (half_open_probes = 1).
  ASSERT_TRUE(platform.provision(*function, 1).is_ok());
  faas::InvokeControls probe;
  probe.now = t0 + 3 * cap;  // past the stuck-open re-armed window too
  const auto recovered = platform.invoke(*function, filter_request(),
                                         faas::StartMode::kHorse, probe);
  ASSERT_TRUE(recovered.has_value()) << recovered.status().to_report();
  EXPECT_EQ(recovered->mode, faas::StartMode::kHorse);
  EXPECT_EQ(probe.reject, faas::SubmissionReject::kNone);
  EXPECT_EQ(platform.breaker_state(*function),
            faas::CircuitBreaker::State::kClosed);
  EXPECT_EQ(platform.breaker_stats(*function).probe_rounds, 1u);
}

// ---------------------------------------------------------------------------
// Retry budget: exhaustion turns escalation into a typed rejection.
// ---------------------------------------------------------------------------

TEST_F(OverloadFaultTest, ExhaustedRetryBudgetDeniesLadderEscalation) {
  faas::PlatformConfig config;
  config.num_cpus = 4;
  config.admission.retry_budget_enabled = true;
  config.admission.retry_budget.initial = 1;
  config.admission.retry_budget.deposit_per_request = 0.0;  // no refunds
  faas::Platform platform(config);
  const auto function = platform.registry().add(filter_spec());
  ASSERT_TRUE(function);

  auto fault = ScopedFault::always("resume.sanity.fault");

  // First invocation: resume fails, the ladder escalates to kRestore and
  // spends the single budgeted token doing so — but completes.
  ASSERT_TRUE(platform.provision(*function, 1).is_ok());
  faas::InvokeControls first;
  const auto completed = platform.invoke(*function, filter_request(),
                                         faas::StartMode::kHorse, first);
  ASSERT_TRUE(completed.has_value()) << completed.status().to_report();
  EXPECT_NE(completed->mode, faas::StartMode::kHorse);
  EXPECT_EQ(platform.retry_budget().withdrawals(), 1u);
  EXPECT_EQ(platform.retry_budget().available(), 0u);

  // Second invocation: same failure, but the budget is dry — escalation
  // is refused with a typed rejection instead of piling on a restore.
  ASSERT_TRUE(platform.provision(*function, 1).is_ok());
  faas::InvokeControls second;
  const auto denied = platform.invoke(*function, filter_request(),
                                      faas::StartMode::kHorse, second);
  ASSERT_FALSE(denied.has_value());
  EXPECT_EQ(denied.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(second.reject, faas::SubmissionReject::kRetryBudgetExhausted);
  EXPECT_EQ(platform.counters().budget_denied_escalations, 1u);
  EXPECT_GE(platform.retry_budget().denials(), 1u);
}

// ---------------------------------------------------------------------------
// admission.spurious_shed: a shed is a typed outcome, never a silent loss.
// ---------------------------------------------------------------------------

TEST_F(OverloadFaultTest, SpuriousShedSurfacesTypedOutcomeFromDrain) {
  cluster::ClusterConfig config;
  config.num_hosts = 2;
  config.workers_per_host = 2;
  config.dispatch = cluster::DispatchMode::kPush;
  config.platform.num_cpus = 4;
  cluster::ClusterScheduler cluster(config);
  const auto function = cluster.register_function(filter_spec);
  ASSERT_TRUE(function);

  auto fault = ScopedFault::nth("admission.spurious_shed", 1);
  for (int i = 0; i < 10; ++i) {
    cluster.submit(*function, filter_request(), faas::StartMode::kCold);
  }
  const auto outcomes = cluster.drain();
  ASSERT_EQ(outcomes.size(), 10u) << "a shed submission vanished from drain";
  std::set<std::uint64_t> seqs;
  int shed = 0;
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(seqs.insert(outcome.seq).second)
        << "seq " << outcome.seq << " reported twice";
    if (outcome.reject != faas::SubmissionReject::kNone) {
      ++shed;
      EXPECT_EQ(outcome.reject, faas::SubmissionReject::kQueueShed);
      EXPECT_FALSE(outcome.status.is_ok());
    } else {
      EXPECT_TRUE(outcome.status.is_ok()) << outcome.status.to_report();
    }
  }
  EXPECT_EQ(shed, 1);

  const cluster::ClusterCounters counters = cluster.counters();
  EXPECT_EQ(counters.submitted, 10u);
  EXPECT_EQ(counters.shed, 1u);
  EXPECT_EQ(counters.spurious_sheds, 1u);
  EXPECT_EQ(counters.completed, 9u);
  EXPECT_EQ(counters.completed + counters.shed, counters.submitted)
      << "completed + shed must cover every submission";
}

}  // namespace
}  // namespace horse
