// Fault site `p2sm.repair.corrupt_delta`: a corrupt journal entry read
// during delta repair must poison the index (the precomputed structures
// can no longer be trusted) and degrade the maintenance path to the full
// rebuild — never splice from a repaired-but-wrong index.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/p2sm.hpp"
#include "core/ull_manager.hpp"
#include "sched/run_queue.hpp"
#include "util/fault_injection.hpp"
#include "vmm/resume_engine.hpp"

namespace horse::core {
namespace {

using util::FaultInjector;
using util::ScopedFault;

class P2smRepairFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::global().reset(); }
  void TearDown() override { FaultInjector::global().reset(); }

  sched::Vcpu& make_vcpu(sched::Credit credit) {
    auto vcpu = std::make_unique<sched::Vcpu>();
    vcpu->id = static_cast<sched::VcpuId>(storage_.size());
    vcpu->credit = credit;
    storage_.push_back(std::move(vcpu));
    return *storage_.back();
  }

  std::vector<std::unique_ptr<sched::Vcpu>> storage_;
};

TEST_F(P2smRepairFaultTest, CorruptDeltaPoisonsIndexAndRebuildCures) {
  sched::RunQueue b(0);
  b.insert_sorted(make_vcpu(10));
  b.insert_sorted(make_vcpu(30));
  sched::VcpuList a;
  a.push_back(make_vcpu(20));

  P2smIndex index;
  index.rebuild(a, b);
  b.insert_sorted(make_vcpu(40));  // make the index stale
  ASSERT_FALSE(index.fresh(b));

  {
    auto fault = ScopedFault::nth("p2sm.repair.corrupt_delta", 1);
    const util::Status status = index.repair(a, b);
    EXPECT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), util::StatusCode::kInternal);
  }
  // The bad entry did not just fail the repair — it marked the whole
  // index untrustworthy.
  EXPECT_TRUE(index.poisoned());
  EXPECT_EQ(index.stats().repair_fallbacks, 1u);
  EXPECT_EQ(index.stats().repairs, 0u);

  // A poisoned index refuses further repairs even with no fault armed.
  EXPECT_FALSE(index.repair(a, b).is_ok());
  EXPECT_EQ(index.stats().repair_fallbacks, 2u);

  // The documented degradation: rebuild cures poisoning and freshness.
  index.rebuild(a, b);
  EXPECT_FALSE(index.poisoned());
  EXPECT_TRUE(index.fresh(b));
  EXPECT_TRUE(index.audit(a, b).is_ok());

  SequentialMergeExecutor executor;
  ASSERT_TRUE(index.merge(a, b, executor).is_ok());
  EXPECT_TRUE(b.is_sorted());
  EXPECT_EQ(b.size(), 4u);
}

TEST_F(P2smRepairFaultTest, ManagerRefreshDegradesToRebuildOnCorruptDelta) {
  sched::CpuTopology topology(8);
  HorseConfig config;
  config.num_ull_runqueues = 1;
  UllRunQueueManager manager(topology, config);

  vmm::SandboxConfig sandbox_config;
  sandbox_config.name = "ull-fault";
  sandbox_config.num_vcpus = 2;
  sandbox_config.memory_mb = 1;
  sandbox_config.ull = true;
  vmm::Sandbox sandbox(1, sandbox_config);
  vmm::ResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  ASSERT_TRUE(engine.start(sandbox).is_ok());
  ASSERT_TRUE(engine.pause(sandbox).is_ok());

  const sched::CpuId cpu = manager.assign(sandbox);
  ASSERT_TRUE(manager.track(sandbox).is_ok());
  const P2smIndex* index = manager.index_of(sandbox.id());
  ASSERT_NE(index, nullptr);
  ASSERT_EQ(index->stats().rebuilds, 1u);

  // Foreign structural mutation on the tracked queue.
  sched::RunQueue& queue = topology.queue(cpu);
  sched::Vcpu& foreign = make_vcpu(7);
  {
    util::LockGuard guard(queue.lock());
    queue.insert_sorted(foreign);
  }

  // refresh() tries repair first; the injected corruption forces the
  // rebuild rung of the ladder. The caller still sees one refreshed
  // index — degradation is invisible upward, visible in the stats.
  {
    auto fault = ScopedFault::nth("p2sm.repair.corrupt_delta", 1);
    EXPECT_EQ(manager.refresh(), 1u);
  }
  EXPECT_TRUE(index->fresh(queue));
  EXPECT_FALSE(index->poisoned());
  EXPECT_EQ(index->stats().repair_fallbacks, 1u);
  EXPECT_EQ(index->stats().repairs, 0u);
  EXPECT_EQ(index->stats().rebuilds, 2u);

  // With no fault armed, the same staleness is handled by repair alone.
  {
    util::LockGuard guard(queue.lock());
    queue.remove(foreign);
  }
  EXPECT_EQ(manager.refresh(), 1u);
  EXPECT_EQ(index->stats().repairs, 1u);
  EXPECT_EQ(index->stats().rebuilds, 2u);

  manager.untrack(sandbox.id());
}

}  // namespace
}  // namespace horse::core
