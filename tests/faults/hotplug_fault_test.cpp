// Hot(un)plug incremental repair of the 𝒫²𝒮ℳ index under injected
// faults. The invariants:
//
//   * a failed incremental insert rolls the added vCPU back out, leaving
//     sandbox and index consistent (the next resume takes the fast path);
//   * a failed incremental remove leaves the vCPU in place;
//   * a poisoned index is cured by the rebuild the hotplug path runs
//     before its insert.
#include <gtest/gtest.h>

#include <memory>

#include "core/horse_resume.hpp"
#include "util/fault_injection.hpp"

namespace horse {
namespace {

using util::FaultInjector;
using util::ScopedFault;

class HotplugFaultTest : public ::testing::Test {
 protected:
  HotplugFaultTest()
      : topology_(8), engine_(topology_, vmm::VmmProfile::firecracker()) {
    FaultInjector::global().reset();
  }
  void TearDown() override { FaultInjector::global().reset(); }

  std::unique_ptr<vmm::Sandbox> paused_ull_sandbox(std::uint32_t vcpus) {
    vmm::SandboxConfig config;
    config.name = "hp-ull";
    config.num_vcpus = vcpus;
    config.memory_mb = 1;
    config.ull = true;
    auto sandbox = std::make_unique<vmm::Sandbox>(next_id_++, config);
    EXPECT_TRUE(engine_.start(*sandbox).is_ok());
    EXPECT_TRUE(engine_.pause(*sandbox).is_ok());
    return sandbox;
  }

  sched::CpuTopology topology_;
  core::HorseResumeEngine engine_;
  sched::SandboxId next_id_ = 1;
};

TEST_F(HotplugFaultTest, FailedInsertRollsBackAddedVcpu) {
  auto sandbox = paused_ull_sandbox(3);
  {
    auto fault = ScopedFault::nth("p2sm.insert.fault", 1);
    const util::Status status = engine_.hotplug_vcpu(*sandbox);
    EXPECT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), util::StatusCode::kInternal);
  }
  // Rolled back: the sandbox never grew, the merge list is intact.
  EXPECT_EQ(sandbox->num_vcpus(), 3u);
  EXPECT_EQ(sandbox->merge_vcpus().size(), 3u);
  EXPECT_EQ(sandbox->config().num_vcpus, 3u);

  // The index survived untouched: the resume still takes the O(1) path.
  ASSERT_TRUE(engine_.resume(*sandbox).is_ok());
  EXPECT_EQ(topology_.queue(7).size(), 3u);
  EXPECT_TRUE(topology_.queue(7).is_sorted());
  EXPECT_EQ(engine_.degradation_stats().fallback_merges, 0u);
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(HotplugFaultTest, HotplugRetriesCleanlyAfterFault) {
  auto sandbox = paused_ull_sandbox(2);
  {
    auto fault = ScopedFault::nth("p2sm.insert.fault", 1);
    EXPECT_FALSE(engine_.hotplug_vcpu(*sandbox).is_ok());
  }
  // The fault was transient: the retry succeeds and the repaired index
  // carries all three vCPUs through a fast-path resume.
  ASSERT_TRUE(engine_.hotplug_vcpu(*sandbox).is_ok());
  EXPECT_EQ(sandbox->num_vcpus(), 3u);
  ASSERT_TRUE(engine_.resume(*sandbox).is_ok());
  EXPECT_EQ(topology_.queue(7).size(), 3u);
  EXPECT_TRUE(topology_.queue(7).is_sorted());
  EXPECT_EQ(engine_.degradation_stats().fallback_merges, 0u);
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(HotplugFaultTest, FailedRemoveLeavesVcpuInPlace) {
  auto sandbox = paused_ull_sandbox(3);
  {
    auto fault = ScopedFault::nth("p2sm.remove.fault", 1);
    const util::Status status = engine_.unplug_vcpu(*sandbox);
    EXPECT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), util::StatusCode::kInternal);
  }
  EXPECT_EQ(sandbox->num_vcpus(), 3u);
  EXPECT_EQ(sandbox->merge_vcpus().size(), 3u);

  // Retry works, and the shrunken sandbox resumes on the fast path.
  ASSERT_TRUE(engine_.unplug_vcpu(*sandbox).is_ok());
  EXPECT_EQ(sandbox->num_vcpus(), 2u);
  ASSERT_TRUE(engine_.resume(*sandbox).is_ok());
  EXPECT_EQ(topology_.queue(7).size(), 2u);
  EXPECT_TRUE(topology_.queue(7).is_sorted());
  EXPECT_EQ(engine_.degradation_stats().fallback_merges, 0u);
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(HotplugFaultTest, HotplugRebuildCuresPoisonedIndex) {
  vmm::SandboxConfig config;
  config.name = "hp-ull";
  config.num_vcpus = 2;
  config.memory_mb = 1;
  config.ull = true;
  auto sandbox = std::make_unique<vmm::Sandbox>(next_id_++, config);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  {
    // Poison the index at pause-time build.
    auto fault = ScopedFault::nth("p2sm.rebuild.corrupt_anchor", 1);
    ASSERT_TRUE(engine_.pause(*sandbox).is_ok());
  }

  // The hotplug path refuses to trust a poisoned index: it rebuilds
  // first (clean this time — the fault is spent), then inserts.
  ASSERT_TRUE(engine_.hotplug_vcpu(*sandbox).is_ok());
  EXPECT_EQ(sandbox->num_vcpus(), 3u);

  // The cured index serves the fast path: no degraded resume.
  ASSERT_TRUE(engine_.resume(*sandbox).is_ok());
  EXPECT_EQ(topology_.queue(7).size(), 3u);
  EXPECT_TRUE(topology_.queue(7).is_sorted());
  const core::ResumeDegradationStats stats = engine_.degradation_stats();
  EXPECT_EQ(stats.fallback_merges, 0u);
  EXPECT_EQ(stats.poisoned_index_fallbacks, 0u);
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(HotplugFaultTest, CoalesceFactorsTrackVcpuCountAcrossFaults) {
  auto sandbox = paused_ull_sandbox(2);
  const double alpha_before = sandbox->coalesce().alpha_n;
  {
    auto fault = ScopedFault::nth("p2sm.insert.fault", 1);
    EXPECT_FALSE(engine_.hotplug_vcpu(*sandbox).is_ok());
  }
  // The failed hotplug never recomputed the factors for a count that was
  // rolled back: they still match the 2-vCPU precompute.
  EXPECT_EQ(sandbox->coalesce().alpha_n, alpha_before);
  ASSERT_TRUE(engine_.hotplug_vcpu(*sandbox).is_ok());
  EXPECT_NE(sandbox->coalesce().alpha_n, alpha_before);
  ASSERT_TRUE(engine_.resume(*sandbox).is_ok());
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

}  // namespace
}  // namespace horse
