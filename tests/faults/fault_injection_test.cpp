// Unit tests for the seeded fault injector itself: arming modes, fire
// bounds, per-site statistics, RAII disarming, and seed-replay
// determinism. The ladder tests build on these semantics, so they are
// pinned here first.
#include "util/fault_injection.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace horse::util {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::global().reset(); }
  void TearDown() override { FaultInjector::global().reset(); }
};

TEST_F(FaultInjectorTest, UnarmedSiteNeverFires) {
  EXPECT_FALSE(HORSE_FAULT_POINT("nothing.armed.here"));
  EXPECT_EQ(FaultInjector::global().total_hits(), 0u);
  EXPECT_EQ(FaultInjector::global().total_fires(), 0u);
}

TEST_F(FaultInjectorTest, ArmAlwaysFiresEveryHit) {
  auto fault = ScopedFault::always("site.a");
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(HORSE_FAULT_POINT("site.a"));
  }
  const auto stats = FaultInjector::global().site_stats("site.a");
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_EQ(stats.fires, 5u);
}

TEST_F(FaultInjectorTest, MaxFiresBoundsAlwaysMode) {
  auto fault = ScopedFault::always("site.bounded", /*max_fires=*/2);
  EXPECT_TRUE(HORSE_FAULT_POINT("site.bounded"));
  EXPECT_TRUE(HORSE_FAULT_POINT("site.bounded"));
  EXPECT_FALSE(HORSE_FAULT_POINT("site.bounded"));
  EXPECT_FALSE(HORSE_FAULT_POINT("site.bounded"));
  const auto stats = FaultInjector::global().site_stats("site.bounded");
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.fires, 2u);
}

TEST_F(FaultInjectorTest, NthFiresExactlyOnNthHit) {
  auto fault = ScopedFault::nth("site.nth", /*nth=*/3);
  EXPECT_FALSE(HORSE_FAULT_POINT("site.nth"));
  EXPECT_FALSE(HORSE_FAULT_POINT("site.nth"));
  EXPECT_TRUE(HORSE_FAULT_POINT("site.nth"));
  EXPECT_FALSE(HORSE_FAULT_POINT("site.nth"));  // default max_fires = 1
  const auto stats = FaultInjector::global().site_stats("site.nth");
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.fires, 1u);
}

TEST_F(FaultInjectorTest, SitesAreIndependent) {
  auto fault_a = ScopedFault::always("site.x");
  EXPECT_TRUE(HORSE_FAULT_POINT("site.x"));
  EXPECT_FALSE(HORSE_FAULT_POINT("site.y"));
  // Hits on unarmed sites are not recorded anywhere.
  EXPECT_EQ(FaultInjector::global().total_hits(), 1u);
}

TEST_F(FaultInjectorTest, ScopedFaultDisarmsOnExit) {
  {
    auto fault = ScopedFault::always("site.scoped");
    EXPECT_TRUE(HORSE_FAULT_POINT("site.scoped"));
  }
  EXPECT_FALSE(HORSE_FAULT_POINT("site.scoped"));
  EXPECT_TRUE(FaultInjector::global().armed_sites().empty());
}

TEST_F(FaultInjectorTest, ProbabilityZeroAndOneAreDegenerate) {
  auto never = ScopedFault::probability("site.never", 0.0);
  auto always = ScopedFault::probability("site.sure", 1.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(HORSE_FAULT_POINT("site.never"));
    EXPECT_TRUE(HORSE_FAULT_POINT("site.sure"));
  }
}

TEST_F(FaultInjectorTest, ProbabilityCampaignReplaysFromSeed) {
  auto run_campaign = [] {
    FaultInjector::global().reset();
    FaultInjector::global().reseed(0xfeedULL);
    auto fault = ScopedFault::probability("site.p", 0.3);
    std::vector<bool> fired;
    fired.reserve(200);
    for (int i = 0; i < 200; ++i) {
      fired.push_back(HORSE_FAULT_POINT("site.p"));
    }
    return fired;
  };
  const auto first = run_campaign();
  const auto second = run_campaign();
  EXPECT_EQ(first, second);
  // The stream is not degenerate: some hits fire, some don't.
  bool any_true = false;
  bool any_false = false;
  for (const bool b : first) {
    (b ? any_true : any_false) = true;
  }
  EXPECT_TRUE(any_true);
  EXPECT_TRUE(any_false);
}

TEST_F(FaultInjectorTest, ArmedSitesSnapshotCarriesCounters) {
  auto fault_a = ScopedFault::always("site.one");
  auto fault_b = ScopedFault::nth("site.two", 5);
  (void)HORSE_FAULT_POINT("site.one");
  (void)HORSE_FAULT_POINT("site.two");
  const auto sites = FaultInjector::global().armed_sites();
  ASSERT_EQ(sites.size(), 2u);
  // std::map order: "site.one" < "site.two".
  EXPECT_EQ(sites[0].first, "site.one");
  EXPECT_EQ(sites[0].second.fires, 1u);
  EXPECT_EQ(sites[1].first, "site.two");
  EXPECT_EQ(sites[1].second.hits, 1u);
  EXPECT_EQ(sites[1].second.fires, 0u);
}

TEST_F(FaultInjectorTest, ResetClearsEverything) {
  FaultInjector::global().arm_always("site.gone");
  (void)HORSE_FAULT_POINT("site.gone");
  FaultInjector::global().reset();
  EXPECT_FALSE(HORSE_FAULT_POINT("site.gone"));
  EXPECT_EQ(FaultInjector::global().total_hits(), 0u);
  EXPECT_EQ(FaultInjector::global().total_fires(), 0u);
  EXPECT_TRUE(FaultInjector::global().armed_sites().empty());
}

}  // namespace
}  // namespace horse::util
