#include <gtest/gtest.h>

#include "workloads/array_filter.hpp"
#include "workloads/cpu_burner.hpp"
#include "workloads/firewall.hpp"
#include "workloads/nat.hpp"
#include "workloads/thumbnail.hpp"

namespace horse::workloads {
namespace {

// ---------------------------------------------------------------- firewall

TEST(HeaderParseTest, ParsesValidHeader) {
  const auto header =
      parse_header("src=10.2.3.4 dst=192.168.0.1 port=443 proto=tcp");
  ASSERT_TRUE(header.valid);
  EXPECT_EQ(header.src, (10u << 24) | (2u << 16) | (3u << 8) | 4u);
  EXPECT_EQ(header.dst, (192u << 24) | (168u << 16) | 1u);
  EXPECT_EQ(header.port, 443);
  EXPECT_EQ(header.proto, 6);
}

TEST(HeaderParseTest, ParsesUdp) {
  const auto header = parse_header("src=1.1.1.1 dst=2.2.2.2 port=53 proto=udp");
  ASSERT_TRUE(header.valid);
  EXPECT_EQ(header.proto, 17);
}

TEST(HeaderParseTest, RejectsMalformedInputs) {
  EXPECT_FALSE(parse_header("").valid);
  EXPECT_FALSE(parse_header("src=1.2.3 dst=1.1.1.1 port=1 proto=tcp").valid);
  EXPECT_FALSE(parse_header("src=1.2.3.4 dst=1.1.1.1 port=99999 proto=tcp").valid);
  EXPECT_FALSE(parse_header("src=1.2.3.4 dst=1.1.1.1 port=1 proto=icmp").valid);
  EXPECT_FALSE(parse_header("src=256.0.0.1 dst=1.1.1.1 port=1 proto=tcp").valid);
  EXPECT_FALSE(parse_header("dst=1.1.1.1 port=1 proto=tcp").valid);
}

TEST(FirewallTest, ExplicitRuleAllowsMatchingPacket) {
  FirewallFunction firewall(0);  // empty generated list
  FirewallRule rule;
  rule.src_prefix = (10u << 24);
  rule.src_mask = 0xff000000;  // 10.0.0.0/8
  rule.dst_addr = (192u << 24) | (168u << 16) | 1u;
  rule.port_lo = 400;
  rule.port_hi = 500;
  rule.proto = 6;
  firewall.add_rule(rule);

  Request request;
  request.header = "src=10.9.9.9 dst=192.168.0.1 port=443 proto=tcp";
  EXPECT_TRUE(firewall.invoke(request).allowed);

  request.header = "src=11.9.9.9 dst=192.168.0.1 port=443 proto=tcp";
  EXPECT_FALSE(firewall.invoke(request).allowed);  // wrong prefix
  request.header = "src=10.9.9.9 dst=192.168.0.1 port=501 proto=tcp";
  EXPECT_FALSE(firewall.invoke(request).allowed);  // port out of range
  request.header = "src=10.9.9.9 dst=192.168.0.1 port=443 proto=udp";
  EXPECT_FALSE(firewall.invoke(request).allowed);  // wrong proto
}

TEST(FirewallTest, InvalidHeaderDenied) {
  FirewallFunction firewall(16);
  Request request;
  request.header = "garbage";
  EXPECT_FALSE(firewall.invoke(request).allowed);
}

TEST(FirewallTest, MetadataMatchesCategory1) {
  FirewallFunction firewall;
  EXPECT_EQ(firewall.category(), Category::kCategory1);
  EXPECT_TRUE(is_ull(firewall.category()));
  EXPECT_EQ(firewall.nominal_duration(), 17 * util::kMicrosecond);
  EXPECT_EQ(firewall.rule_count(), 4096u);
}

TEST(FirewallTest, DeterministicAcrossInstances) {
  FirewallFunction a(256, 9);
  FirewallFunction b(256, 9);
  Request request;
  request.header = "src=10.2.3.4 dst=1.2.3.4 port=80 proto=tcp";
  EXPECT_EQ(a.invoke(request).checksum, b.invoke(request).checksum);
}

// --------------------------------------------------------------------- nat

TEST(NatTest, RewritesMatchingHeader) {
  NatFunction nat(0);
  const std::uint32_t dst = (203u << 24) | (0u << 16) | (113u << 8) | 10u;
  nat.add_rule(dst, 8080, NatRule{(10u << 24) | 5u, 80});
  Request request;
  request.header = "src=1.2.3.4 dst=203.0.113.10 port=8080 proto=tcp";
  const auto response = nat.invoke(request);
  EXPECT_TRUE(response.allowed);
  EXPECT_EQ(response.rewritten_header,
            "src=1.2.3.4 dst=10.0.0.5 port=80 proto=tcp");
}

TEST(NatTest, PassThroughWithoutRule) {
  NatFunction nat(0);
  Request request;
  request.header = "src=1.2.3.4 dst=9.9.9.9 port=1234 proto=udp";
  const auto response = nat.invoke(request);
  EXPECT_FALSE(response.allowed);
  EXPECT_EQ(response.rewritten_header,
            "src=1.2.3.4 dst=9.9.9.9 port=1234 proto=udp");
}

TEST(NatTest, InvalidHeaderReturnsEmpty) {
  NatFunction nat(8);
  Request request;
  request.header = "not a packet";
  const auto response = nat.invoke(request);
  EXPECT_TRUE(response.rewritten_header.empty());
}

TEST(NatTest, MetadataMatchesCategory2) {
  NatFunction nat;
  EXPECT_EQ(nat.category(), Category::kCategory2);
  EXPECT_EQ(nat.nominal_duration(), 1'500);
  EXPECT_EQ(nat.rule_count(), 1024u);
}

// ------------------------------------------------------------ array filter

TEST(ArrayFilterTest, FindsIndexesAboveThreshold) {
  ArrayFilterFunction filter;
  Request request;
  request.payload = {5, 10, 3, 20, 10};
  request.threshold = 9;
  const auto response = filter.invoke(request);
  EXPECT_EQ(response.indexes, (std::vector<std::int32_t>{1, 3, 4}));
  EXPECT_TRUE(response.allowed);
  EXPECT_EQ(response.checksum, 1u + 3u + 4u);
}

TEST(ArrayFilterTest, NoMatches) {
  ArrayFilterFunction filter;
  Request request;
  request.payload = {1, 2, 3};
  request.threshold = 100;
  const auto response = filter.invoke(request);
  EXPECT_TRUE(response.indexes.empty());
  EXPECT_FALSE(response.allowed);
}

TEST(ArrayFilterTest, EmptyPayload) {
  ArrayFilterFunction filter;
  Request request;
  EXPECT_TRUE(filter.invoke(request).indexes.empty());
}

TEST(ArrayFilterTest, DefaultPayloadHas3000Integers) {
  const auto payload = ArrayFilterFunction::default_payload();
  EXPECT_EQ(payload.size(), ArrayFilterFunction::kDefaultArraySize);
  EXPECT_EQ(payload.size(), 3000u);  // the paper's exact array size
  // Deterministic.
  EXPECT_EQ(ArrayFilterFunction::default_payload(), payload);
}

TEST(ArrayFilterTest, MetadataMatchesCategory3) {
  ArrayFilterFunction filter;
  EXPECT_EQ(filter.category(), Category::kCategory3);
  EXPECT_EQ(filter.nominal_duration(), 700);
}

// --------------------------------------------------------------- thumbnail

TEST(ThumbnailTest, DownscaleDimensions) {
  const auto source = Image::synthetic(64, 32, 1);
  const auto thumb = downscale(source, 8);
  EXPECT_EQ(thumb.width, 8u);
  EXPECT_EQ(thumb.height, 4u);
  EXPECT_EQ(thumb.rgb.size(), 8u * 4 * 3);
}

TEST(ThumbnailTest, DownscaleAveragesUniformRegion) {
  Image source;
  source.width = 4;
  source.height = 4;
  source.rgb.assign(4 * 4 * 3, 100);
  const auto thumb = downscale(source, 4);
  ASSERT_EQ(thumb.rgb.size(), 3u);
  EXPECT_EQ(thumb.rgb[0], 100);
  EXPECT_EQ(thumb.rgb[1], 100);
  EXPECT_EQ(thumb.rgb[2], 100);
}

TEST(ThumbnailTest, DownscaleInvalidFactorReturnsEmpty) {
  const auto source = Image::synthetic(8, 8, 1);
  EXPECT_TRUE(downscale(source, 0).rgb.empty());
  EXPECT_TRUE(downscale(source, 16).rgb.empty());
}

TEST(ThumbnailTest, InvokeProducesThumbnail) {
  ThumbnailFunction thumbnail(64, 8);
  Request request;
  request.threshold = 1;
  const auto response = thumbnail.invoke(request);
  EXPECT_TRUE(response.allowed);
  EXPECT_NE(response.checksum, 0u);
  EXPECT_EQ(thumbnail.last_thumbnail().width, 8u);
}

TEST(ThumbnailTest, DistinctSourcesGiveDistinctChecksums) {
  ThumbnailFunction thumbnail(64, 8);
  Request a;
  a.threshold = 0;
  Request b;
  b.threshold = 1;
  EXPECT_NE(thumbnail.invoke(a).checksum, thumbnail.invoke(b).checksum);
}

TEST(ThumbnailTest, ServiceTimesAreHeavyTailedPositive) {
  ThumbnailFunction thumbnail;
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(thumbnail.sample_service_time(rng), 0);
  }
  EXPECT_EQ(thumbnail.category(), Category::kLongRunning);
  EXPECT_FALSE(is_ull(thumbnail.category()));
}

// -------------------------------------------------------------- cpu burner

TEST(CpuBurnerTest, CountsPrimesCorrectly) {
  EXPECT_EQ(CpuBurnerFunction::count_primes_below(10), 4u);   // 2,3,5,7
  EXPECT_EQ(CpuBurnerFunction::count_primes_below(100), 25u);
  EXPECT_EQ(CpuBurnerFunction::count_primes_below(2), 0u);
}

TEST(CpuBurnerTest, InvokeUsesThresholdOverride) {
  CpuBurnerFunction burner(1000);
  Request request;
  request.threshold = 10;
  EXPECT_EQ(burner.invoke(request).checksum, 4u);
  request.threshold = 0;  // falls back to constructor limit
  EXPECT_EQ(burner.invoke(request).checksum, 168u);  // primes below 1000
}

TEST(CpuBurnerTest, CategoryIsBackground) {
  CpuBurnerFunction burner;
  EXPECT_EQ(burner.category(), Category::kBackground);
}

TEST(CategoryTest, ToStringAll) {
  EXPECT_EQ(to_string(Category::kCategory1), "category1");
  EXPECT_EQ(to_string(Category::kCategory2), "category2");
  EXPECT_EQ(to_string(Category::kCategory3), "category3");
  EXPECT_EQ(to_string(Category::kLongRunning), "long-running");
  EXPECT_EQ(to_string(Category::kBackground), "background");
}

}  // namespace
}  // namespace horse::workloads
