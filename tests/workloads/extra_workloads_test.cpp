#include <gtest/gtest.h>

#include "workloads/kv_store.hpp"
#include "workloads/ml_inference.hpp"

namespace horse::workloads {
namespace {

// ---------------------------------------------------------------- kv store

TEST(KvStoreTest, PrepopulatedGetsHit) {
  KvStoreFunction store(100, 16);
  EXPECT_EQ(store.size(), 100u);
  Request request;
  request.header = "GET " + KvStoreFunction::key_name(42);
  const auto response = store.invoke(request);
  EXPECT_TRUE(response.allowed);
  EXPECT_EQ(response.rewritten_header.size(), 16u);
  EXPECT_NE(response.checksum, 0u);
}

TEST(KvStoreTest, MissingKeyMisses) {
  KvStoreFunction store(10);
  Request request;
  request.header = "GET no-such-key";
  const auto response = store.invoke(request);
  EXPECT_FALSE(response.allowed);
  EXPECT_TRUE(response.rewritten_header.empty());
}

TEST(KvStoreTest, SetThenGetRoundTrip) {
  KvStoreFunction store(0);
  Request set;
  set.header = "SET answer 42";
  const auto set_response = store.invoke(set);
  EXPECT_TRUE(set_response.allowed);
  EXPECT_EQ(set_response.checksum, 1u);  // store size after the insert

  Request get;
  get.header = "GET answer";
  const auto get_response = store.invoke(get);
  EXPECT_TRUE(get_response.allowed);
  EXPECT_EQ(get_response.rewritten_header, "42");
}

TEST(KvStoreTest, SetOverwrites) {
  KvStoreFunction store(0);
  Request set;
  set.header = "SET k v1";
  (void)store.invoke(set);
  set.header = "SET k v2";
  (void)store.invoke(set);
  EXPECT_EQ(store.size(), 1u);
  Request get;
  get.header = "GET k";
  EXPECT_EQ(store.invoke(get).rewritten_header, "v2");
}

TEST(KvStoreTest, MalformedCommandsRejected) {
  KvStoreFunction store(0);
  for (const char* command : {"", "DEL k", "GETk", "SET onlykey"}) {
    Request request;
    request.header = command;
    EXPECT_FALSE(store.invoke(request).allowed) << command;
  }
}

TEST(KvStoreTest, ValuesAreDeterministicPerSeed) {
  KvStoreFunction a(10, 8, 5);
  KvStoreFunction b(10, 8, 5);
  Request request;
  request.header = "GET " + KvStoreFunction::key_name(3);
  EXPECT_EQ(a.invoke(request).rewritten_header,
            b.invoke(request).rewritten_header);
}

TEST(KvStoreTest, CategoryIsUll) {
  KvStoreFunction store(1);
  EXPECT_EQ(store.category(), Category::kCategory2);
  EXPECT_TRUE(is_ull(store.category()));
}

// ------------------------------------------------------------ ml inference

TEST(MlInferenceTest, ScoreIsAProbability) {
  MlInferenceFunction model(64);
  std::vector<std::int32_t> features(64, 500);
  const double p = model.score(features);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(MlInferenceTest, EmptyFeaturesUseBiasOnly) {
  MlInferenceFunction model(8, 3);
  const double p = model.score({});
  // Sigmoid of a small bias: near 0.5.
  EXPECT_NEAR(p, 0.5, 0.2);
}

TEST(MlInferenceTest, ExtraFeaturesIgnored) {
  MlInferenceFunction model(4, 3);
  std::vector<std::int32_t> exact(4, 1000);
  std::vector<std::int32_t> padded(100, 1000);
  EXPECT_DOUBLE_EQ(model.score(exact), model.score(padded));
}

TEST(MlInferenceTest, InvokeChecksumEncodesScore) {
  MlInferenceFunction model(16, 7);
  Request request;
  request.payload.assign(16, 2000);
  const auto response = model.invoke(request);
  const double p = model.score(request.payload);
  EXPECT_EQ(response.checksum, static_cast<std::uint64_t>(p * 1e6));
  EXPECT_EQ(response.allowed, p >= 0.5);
}

TEST(MlInferenceTest, DeterministicPerSeed) {
  MlInferenceFunction a(32, 11);
  MlInferenceFunction b(32, 11);
  std::vector<std::int32_t> features(32, 700);
  EXPECT_DOUBLE_EQ(a.score(features), b.score(features));
}

TEST(MlInferenceTest, DifferentInputsDifferentScores) {
  MlInferenceFunction model(32, 11);
  std::vector<std::int32_t> low(32, -3000);
  std::vector<std::int32_t> high(32, 3000);
  EXPECT_NE(model.score(low), model.score(high));
}

}  // namespace
}  // namespace horse::workloads
