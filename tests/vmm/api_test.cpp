#include "vmm/api.hpp"

#include <gtest/gtest.h>

#include "core/horse_resume.hpp"

namespace horse::vmm {
namespace {

class ApiTest : public ::testing::Test {
 protected:
  ApiTest()
      : topology_(4),
        engine_(topology_, VmmProfile::firecracker()),
        api_(engine_) {}

  sched::CpuTopology topology_;
  core::HorseResumeEngine engine_;
  ApiServer api_;
};

TEST_F(ApiTest, FullLifecycleThroughCommands) {
  EXPECT_TRUE(api_.handle("create id=1 vcpus=2 memory_mb=4").ok());
  EXPECT_EQ(api_.sandbox_count(), 1u);
  EXPECT_TRUE(api_.handle("start id=1").ok());
  EXPECT_TRUE(api_.handle("pause id=1").ok());
  const auto resumed = api_.handle("resume id=1");
  EXPECT_TRUE(resumed.ok());
  EXPECT_NE(resumed.body.find("resumed in"), std::string::npos);
  const auto state = api_.handle("state id=1");
  EXPECT_EQ(state.body, "running vcpus=2");
  EXPECT_TRUE(api_.handle("destroy id=1").ok());
  EXPECT_EQ(api_.sandbox_count(), 0u);
}

TEST_F(ApiTest, UllFlagRoutesToFastPath) {
  ASSERT_TRUE(api_.handle("create id=5 vcpus=3 memory_mb=1 ull").ok());
  ASSERT_TRUE(api_.handle("start id=5").ok());
  ASSERT_TRUE(api_.handle("pause id=5").ok());
  // Fast-path state was installed by the HORSE engine's pause.
  EXPECT_NE(engine_.ull_manager().index_of(5), nullptr);
  ASSERT_TRUE(api_.handle("resume id=5").ok());
  EXPECT_EQ(topology_.queue(3).size(), 3u);  // reserved queue
}

TEST_F(ApiTest, HotplugCommands) {
  ASSERT_TRUE(api_.handle("create id=2 vcpus=1 memory_mb=1 ull").ok());
  ASSERT_TRUE(api_.handle("start id=2").ok());
  ASSERT_TRUE(api_.handle("pause id=2").ok());
  EXPECT_TRUE(api_.handle("hotplug id=2").ok());
  EXPECT_TRUE(api_.handle("hotplug id=2").ok());
  EXPECT_EQ(api_.handle("state id=2").body, "paused vcpus=3");
  EXPECT_TRUE(api_.handle("unplug id=2").ok());
  EXPECT_EQ(api_.handle("state id=2").body, "paused vcpus=2");
}

TEST_F(ApiTest, ListShowsAllSandboxes) {
  EXPECT_EQ(api_.handle("list").body, "(none)");
  ASSERT_TRUE(api_.handle("create id=1 vcpus=1 memory_mb=1").ok());
  ASSERT_TRUE(api_.handle("create id=2 vcpus=1 memory_mb=1").ok());
  ASSERT_TRUE(api_.handle("start id=2").ok());
  const auto list = api_.handle("list");
  EXPECT_NE(list.body.find("1:created"), std::string::npos);
  EXPECT_NE(list.body.find("2:running"), std::string::npos);
}

TEST_F(ApiTest, MalformedCommandsRejected) {
  for (const char* bad : {
           "",                                   // empty
           "create vcpus=1 memory_mb=1",         // missing id
           "create id=1 vcpus=abc memory_mb=1",  // non-numeric
           "create id=1 vcpus=1",                // missing memory
           "frobnicate id=1",                    // unknown verb (needs id ok)
           "start id=99",                        // unknown sandbox
           "start",                              // missing id
           "create id=1 vcpus=1 memory_mb=1 =x", // malformed key=value
       }) {
    EXPECT_FALSE(api_.handle(bad).ok()) << "'" << bad << "'";
  }
}

TEST_F(ApiTest, DuplicateIdRejected) {
  ASSERT_TRUE(api_.handle("create id=1 vcpus=1 memory_mb=1").ok());
  const auto dup = api_.handle("create id=1 vcpus=1 memory_mb=1");
  EXPECT_EQ(dup.status.code(), util::StatusCode::kAlreadyExists);
}

TEST_F(ApiTest, InvalidConfigSurfacesAsStatus) {
  const auto zero = api_.handle("create id=1 vcpus=0 memory_mb=1");
  EXPECT_EQ(zero.status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(api_.sandbox_count(), 0u);
}

TEST_F(ApiTest, LifecycleErrorsPropagate) {
  ASSERT_TRUE(api_.handle("create id=1 vcpus=1 memory_mb=1").ok());
  // Resume before start: the engine's precondition failure flows through.
  EXPECT_EQ(api_.handle("resume id=1").status.code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(api_.handle("pause id=1").status.code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(ApiTest, DestructorCleansUpLiveSandboxes) {
  sched::CpuTopology topology(2);
  ResumeEngine engine(topology, VmmProfile::firecracker());
  {
    ApiServer api(engine);
    ASSERT_TRUE(api.handle("create id=1 vcpus=2 memory_mb=1").ok());
    ASSERT_TRUE(api.handle("start id=1").ok());
    EXPECT_EQ(topology.queue(0).size() + topology.queue(1).size(), 2u);
  }  // ApiServer destruction destroys the running sandbox
  EXPECT_EQ(topology.queue(0).size() + topology.queue(1).size(), 0u);
}

}  // namespace
}  // namespace horse::vmm
