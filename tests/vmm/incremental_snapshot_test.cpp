#include <gtest/gtest.h>

#include "sched/topology.hpp"
#include "vmm/resume_engine.hpp"
#include "vmm/snapshot.hpp"

namespace horse::vmm {
namespace {

SandboxConfig small_config() {
  SandboxConfig config;
  config.name = "fn";
  config.num_vcpus = 1;
  config.memory_mb = 4;  // 64 KiB scaled image = 16 pages
  return config;
}

class IncrementalSnapshotTest : public ::testing::Test {
 protected:
  IncrementalSnapshotTest()
      : topology_(2),
        engine_(topology_, VmmProfile::firecracker()),
        manager_(VmmProfile::firecracker()) {}

  /// Start+pause a sandbox with a deterministic memory pattern.
  std::unique_ptr<Sandbox> make_paused(sched::SandboxId id) {
    auto sandbox = std::make_unique<Sandbox>(id, small_config());
    auto& memory = sandbox->guest_memory();
    for (std::size_t i = 0; i < memory.size(); ++i) {
      memory[i] = static_cast<std::byte>(i & 0xff);
    }
    (void)engine_.start(*sandbox);
    (void)engine_.pause(*sandbox);
    return sandbox;
  }

  sched::CpuTopology topology_;
  ResumeEngine engine_;
  SnapshotManager manager_;
};

TEST_F(IncrementalSnapshotTest, DirtyTrackerMarksPages) {
  DirtyTracker tracker(10 * DirtyTracker::kPageSize);
  EXPECT_EQ(tracker.page_count(), 10u);
  EXPECT_EQ(tracker.dirty_count(), 0u);
  tracker.mark(0);
  tracker.mark(5 * DirtyTracker::kPageSize + 17);
  EXPECT_TRUE(tracker.is_dirty(0));
  EXPECT_TRUE(tracker.is_dirty(5));
  EXPECT_FALSE(tracker.is_dirty(1));
  EXPECT_EQ(tracker.dirty_count(), 2u);
  EXPECT_EQ(tracker.dirty_pages(), (std::vector<std::size_t>{0, 5}));
  tracker.clear();
  EXPECT_EQ(tracker.dirty_count(), 0u);
}

TEST_F(IncrementalSnapshotTest, MarkRangeSpansPages) {
  DirtyTracker tracker(10 * DirtyTracker::kPageSize);
  // Range straddling pages 2..4.
  tracker.mark_range(2 * DirtyTracker::kPageSize + 100,
                     2 * DirtyTracker::kPageSize);
  EXPECT_EQ(tracker.dirty_pages(), (std::vector<std::size_t>{2, 3, 4}));
  tracker.mark_range(0, 0);  // empty range is a no-op
  EXPECT_EQ(tracker.dirty_count(), 3u);
}

TEST_F(IncrementalSnapshotTest, TrackedWriteUpdatesImageAndDirt) {
  std::vector<std::byte> image(4 * DirtyTracker::kPageSize, std::byte{0});
  DirtyTracker tracker(image.size());
  const std::byte payload[3] = {std::byte{1}, std::byte{2}, std::byte{3}};
  tracker.write(image, DirtyTracker::kPageSize - 1, payload, 3);
  EXPECT_EQ(image[DirtyTracker::kPageSize - 1], std::byte{1});
  EXPECT_EQ(image[DirtyTracker::kPageSize + 1], std::byte{3});
  EXPECT_EQ(tracker.dirty_pages(), (std::vector<std::size_t>{0, 1}));
}

TEST_F(IncrementalSnapshotTest, DeltaRoundTripReconstructsImage) {
  auto sandbox = make_paused(1);
  const auto base = manager_.take(*sandbox);
  ASSERT_TRUE(base.has_value());

  // Mutate a few pages through the tracker (resume first: writes happen
  // while running; pause again before the delta).
  ASSERT_TRUE(engine_.resume(*sandbox).is_ok());
  DirtyTracker tracker(sandbox->guest_memory().size());
  const std::byte marker[8] = {std::byte{0xde}, std::byte{0xad},
                               std::byte{0xbe}, std::byte{0xef},
                               std::byte{0xca}, std::byte{0xfe},
                               std::byte{0xba}, std::byte{0xbe}};
  tracker.write(sandbox->guest_memory(), 3 * DirtyTracker::kPageSize, marker, 8);
  tracker.write(sandbox->guest_memory(), 9 * DirtyTracker::kPageSize + 42,
                marker, 8);
  ASSERT_TRUE(engine_.pause(*sandbox).is_ok());

  const auto delta = manager_.take_delta(*sandbox, *base, tracker);
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->pages.size(), 2u);
  EXPECT_EQ(delta->page_data.size(), 2u * DirtyTracker::kPageSize);

  auto restored = manager_.restore_incremental(*base, *delta, 2);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->sandbox->guest_memory(), sandbox->guest_memory());
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(IncrementalSnapshotTest, DeltaAgainstWrongBaseRejected) {
  auto sandbox = make_paused(1);
  const auto base = manager_.take(*sandbox);
  ASSERT_TRUE(base.has_value());
  DirtyTracker tracker(sandbox->guest_memory().size());
  tracker.mark(0);
  const auto delta = manager_.take_delta(*sandbox, *base, tracker);
  ASSERT_TRUE(delta.has_value());

  Snapshot other_base = *base;
  other_base.checksum ^= 0xff;  // different lineage
  const auto restored = manager_.restore_incremental(other_base, *delta, 2);
  EXPECT_FALSE(restored.has_value());
  EXPECT_EQ(restored.status().code(), util::StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(IncrementalSnapshotTest, DeltaRequiresPausedSandbox) {
  auto sandbox = make_paused(1);
  const auto base = manager_.take(*sandbox);
  ASSERT_TRUE(engine_.resume(*sandbox).is_ok());
  DirtyTracker tracker(sandbox->guest_memory().size());
  const auto delta = manager_.take_delta(*sandbox, *base, tracker);
  EXPECT_FALSE(delta.has_value());
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(IncrementalSnapshotTest, EmptyDeltaRestoresExactBase) {
  auto sandbox = make_paused(1);
  const auto base = manager_.take(*sandbox);
  DirtyTracker tracker(sandbox->guest_memory().size());
  const auto delta = manager_.take_delta(*sandbox, *base, tracker);
  ASSERT_TRUE(delta.has_value());
  EXPECT_TRUE(delta->pages.empty());
  auto restored = manager_.restore_incremental(*base, *delta, 2);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(SnapshotManager::compute_checksum(restored->sandbox->guest_memory()),
            base->checksum);
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(IncrementalSnapshotTest, DeltaSmallerThanFullSnapshotForSmallWorkingSet) {
  auto sandbox = make_paused(1);
  const auto base = manager_.take(*sandbox);
  DirtyTracker tracker(sandbox->guest_memory().size());
  tracker.mark(1);
  const auto delta = manager_.take_delta(*sandbox, *base, tracker);
  ASSERT_TRUE(delta.has_value());
  // 1 dirty page of 16: the delta carries ~6% of the full image.
  EXPECT_LT(delta->page_data.size(), base->memory_image.size() / 8);
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

}  // namespace
}  // namespace horse::vmm
