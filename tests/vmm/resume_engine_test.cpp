#include "vmm/resume_engine.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace horse::vmm {
namespace {

class ResumeEngineTest : public ::testing::Test {
 protected:
  ResumeEngineTest()
      : topology_(4), engine_(topology_, VmmProfile::firecracker()) {}

  std::unique_ptr<Sandbox> make_sandbox(std::uint32_t vcpus) {
    SandboxConfig config;
    config.name = "fn";
    config.num_vcpus = vcpus;
    config.memory_mb = 1;
    return std::make_unique<Sandbox>(next_id_++, config);
  }

  std::size_t total_queued() const {
    std::size_t total = 0;
    for (sched::CpuId cpu = 0; cpu < topology_.num_cpus(); ++cpu) {
      total += topology_.queue(cpu).size();
    }
    return total;
  }

  sched::CpuTopology topology_;
  ResumeEngine engine_;
  sched::SandboxId next_id_ = 1;
};

TEST_F(ResumeEngineTest, StartPlacesAllVcpus) {
  auto sandbox = make_sandbox(4);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  EXPECT_EQ(sandbox->state(), SandboxState::kRunning);
  EXPECT_EQ(total_queued(), 4u);
  for (const auto& vcpu : sandbox->vcpus()) {
    EXPECT_EQ(vcpu->state, sched::VcpuState::kRunnable);
    EXPECT_TRUE(vcpu->hook.is_linked());
  }
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(ResumeEngineTest, StartTwiceFails) {
  auto sandbox = make_sandbox(1);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  const auto status = engine_.start(*sandbox);
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(ResumeEngineTest, PauseParksVcpusSorted) {
  auto sandbox = make_sandbox(4);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  // Give the vCPUs shuffled credits so sortedness is observable.
  sandbox->vcpu(0).credit = 40;
  sandbox->vcpu(1).credit = 10;
  sandbox->vcpu(2).credit = 30;
  sandbox->vcpu(3).credit = 20;
  ASSERT_TRUE(engine_.pause(*sandbox).is_ok());
  EXPECT_EQ(sandbox->state(), SandboxState::kPaused);
  EXPECT_EQ(total_queued(), 0u);
  EXPECT_EQ(sandbox->merge_vcpus().size(), 4u);
  sched::Credit prev = -1;
  for (const sched::Vcpu& vcpu : sandbox->merge_vcpus()) {
    EXPECT_GE(vcpu.credit, prev);
    prev = vcpu.credit;
    EXPECT_EQ(vcpu.state, sched::VcpuState::kPaused);
  }
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(ResumeEngineTest, PauseRequiresRunning) {
  auto sandbox = make_sandbox(1);
  EXPECT_EQ(engine_.pause(*sandbox).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(ResumeEngineTest, ResumeRequiresPaused) {
  auto sandbox = make_sandbox(1);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  EXPECT_EQ(engine_.resume(*sandbox).code(),
            util::StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(ResumeEngineTest, ResumeRestoresAllVcpusToQueues) {
  auto sandbox = make_sandbox(6);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  ASSERT_TRUE(engine_.pause(*sandbox).is_ok());
  ResumeBreakdown breakdown;
  ASSERT_TRUE(engine_.resume(*sandbox, &breakdown).is_ok());
  EXPECT_EQ(sandbox->state(), SandboxState::kRunning);
  EXPECT_EQ(total_queued(), 6u);
  EXPECT_EQ(sandbox->merge_vcpus().size(), 0u);
  for (sched::CpuId cpu = 0; cpu < topology_.num_cpus(); ++cpu) {
    EXPECT_TRUE(topology_.queue(cpu).is_sorted());
  }
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(ResumeEngineTest, BreakdownCoversAllSteps) {
  auto sandbox = make_sandbox(8);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  ASSERT_TRUE(engine_.pause(*sandbox).is_ok());
  ResumeBreakdown breakdown;
  ASSERT_TRUE(engine_.resume(*sandbox, &breakdown).is_ok());
  EXPECT_GT(breakdown.total(), 0);
  EXPECT_GT(breakdown.parse, 0);    // includes modelled control plane
  EXPECT_GT(breakdown.merge, 0);    // 8 sorted inserts + per-vCPU tax
  EXPECT_GE(breakdown.load_update, 0);
  EXPECT_GE(breakdown.contested_fraction(), 0.0);
  EXPECT_LE(breakdown.contested_fraction(), 1.0);
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(ResumeEngineTest, ResumeUpdatesLoadPerVcpu) {
  auto sandbox = make_sandbox(4);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  ASSERT_TRUE(engine_.pause(*sandbox).is_ok());
  double load_before = 0.0;
  for (sched::CpuId cpu = 0; cpu < topology_.num_cpus(); ++cpu) {
    load_before += topology_.queue(cpu).load();
  }
  ASSERT_TRUE(engine_.resume(*sandbox).is_ok());
  double load_after = 0.0;
  for (sched::CpuId cpu = 0; cpu < topology_.num_cpus(); ++cpu) {
    load_after += topology_.queue(cpu).load();
  }
  EXPECT_GT(load_after, load_before);
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(ResumeEngineTest, PauseResumeCycleIsRepeatable) {
  auto sandbox = make_sandbox(3);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine_.pause(*sandbox).is_ok()) << "cycle " << i;
    ASSERT_TRUE(engine_.resume(*sandbox).is_ok()) << "cycle " << i;
  }
  EXPECT_EQ(total_queued(), 3u);
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(ResumeEngineTest, DestroyWhilePausedCleansMergeList) {
  auto sandbox = make_sandbox(2);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  ASSERT_TRUE(engine_.pause(*sandbox).is_ok());
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
  EXPECT_EQ(sandbox->state(), SandboxState::kDestroyed);
  EXPECT_EQ(sandbox->merge_vcpus().size(), 0u);
}

TEST_F(ResumeEngineTest, DestroyTwiceFails) {
  auto sandbox = make_sandbox(1);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
  EXPECT_EQ(engine_.destroy(*sandbox).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(ResumeEngineTest, VanillaPlacementBalancesAcrossQueues) {
  // With 4 CPUs and 8 vCPUs, least-loaded placement should not put
  // everything on one queue.
  auto sandbox = make_sandbox(8);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  std::size_t used = 0;
  for (sched::CpuId cpu = 0; cpu < topology_.num_cpus(); ++cpu) {
    if (!topology_.queue(cpu).empty()) {
      ++used;
    }
  }
  EXPECT_GT(used, 1u);
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(ResumeEngineTest, MergeTimeGrowsWithVcpuCount) {
  // The Figure-2 premise: step ④+⑤ dominate and grow with vCPU count.
  // Compare 1 vs 32 vCPUs with background queue occupancy.
  auto background = make_sandbox(16);
  ASSERT_TRUE(engine_.start(*background).is_ok());

  auto measure = [&](std::uint32_t vcpus) {
    auto sandbox = make_sandbox(vcpus);
    (void)engine_.start(*sandbox);
    util::Nanos best = std::numeric_limits<util::Nanos>::max();
    for (int i = 0; i < 15; ++i) {
      (void)engine_.pause(*sandbox);
      ResumeBreakdown breakdown;
      (void)engine_.resume(*sandbox, &breakdown);
      best = std::min(best, breakdown.merge + breakdown.load_update);
    }
    (void)engine_.destroy(*sandbox);
    return best;
  };

  const util::Nanos small = measure(1);
  const util::Nanos large = measure(32);
  EXPECT_GT(large, small);
  ASSERT_TRUE(engine_.destroy(*background).is_ok());
}

}  // namespace
}  // namespace horse::vmm
