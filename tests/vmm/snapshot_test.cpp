#include "vmm/snapshot.hpp"

#include <gtest/gtest.h>

#include "sched/topology.hpp"
#include "vmm/boot.hpp"
#include "vmm/resume_engine.hpp"

namespace horse::vmm {
namespace {

SandboxConfig small_config() {
  SandboxConfig config;
  config.name = "fn";
  config.num_vcpus = 2;
  config.memory_mb = 4;
  return config;
}

TEST(SnapshotTest, TakeRequiresPausedSandbox) {
  SnapshotManager manager(VmmProfile::firecracker());
  Sandbox sandbox(1, small_config());
  const auto snapshot = manager.take(sandbox);
  EXPECT_FALSE(snapshot.has_value());
  EXPECT_EQ(snapshot.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, RoundTripPreservesMemoryImage) {
  sched::CpuTopology topology(2);
  ResumeEngine engine(topology, VmmProfile::firecracker());
  SnapshotManager manager(VmmProfile::firecracker());

  Sandbox sandbox(1, small_config());
  // Write a recognisable pattern into guest memory.
  auto& memory = sandbox.guest_memory();
  for (std::size_t i = 0; i < memory.size(); ++i) {
    memory[i] = static_cast<std::byte>(i * 7 & 0xff);
  }
  ASSERT_TRUE(engine.start(sandbox).is_ok());
  ASSERT_TRUE(engine.pause(sandbox).is_ok());

  const auto snapshot = manager.take(sandbox);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->memory_image.size(), memory.size());
  EXPECT_EQ(snapshot->checksum,
            SnapshotManager::compute_checksum(snapshot->memory_image));

  auto restored = manager.restore(*snapshot, 2);
  ASSERT_TRUE(restored.has_value()) << restored.status().to_report();
  ASSERT_NE(restored->sandbox, nullptr);
  EXPECT_EQ(restored->sandbox->id(), 2u);
  EXPECT_EQ(restored->sandbox->guest_memory(), memory);
  EXPECT_EQ(SnapshotManager::compute_checksum(restored->sandbox->guest_memory()),
            snapshot->checksum);
  ASSERT_TRUE(engine.destroy(sandbox).is_ok());
}

TEST(SnapshotTest, RestoreReportsBothTimeComponents) {
  SnapshotManager manager(VmmProfile::firecracker());
  Snapshot snapshot;
  snapshot.config = small_config();
  snapshot.memory_image.resize(1024, std::byte{0});
  // Restore verifies integrity, so a hand-built snapshot needs a checksum.
  snapshot.checksum = SnapshotManager::compute_checksum(snapshot.memory_image);
  auto restored = manager.restore(snapshot, 5);
  ASSERT_TRUE(restored.has_value()) << restored.status().to_report();
  EXPECT_GE(restored->copy_time, 0);
  EXPECT_GT(restored->modelled_time, 0);
  // Modelled latency stays within ±10% of the profile constant.
  const auto nominal = VmmProfile::firecracker().snapshot_restore;
  EXPECT_GE(restored->modelled_time, nominal * 9 / 10);
  EXPECT_LE(restored->modelled_time, nominal * 11 / 10);
  EXPECT_EQ(restored->total_time(),
            restored->copy_time + restored->modelled_time);
}

TEST(SnapshotTest, ChecksumDetectsCorruption) {
  std::vector<std::byte> image(256, std::byte{1});
  const auto original = SnapshotManager::compute_checksum(image);
  image[100] = std::byte{2};
  EXPECT_NE(SnapshotManager::compute_checksum(image), original);
}

TEST(SnapshotTest, RestoredSandboxIsStartable) {
  sched::CpuTopology topology(2);
  ResumeEngine engine(topology, VmmProfile::firecracker());
  SnapshotManager manager(VmmProfile::firecracker());

  Sandbox sandbox(1, small_config());
  ASSERT_TRUE(engine.start(sandbox).is_ok());
  ASSERT_TRUE(engine.pause(sandbox).is_ok());
  const auto snapshot = manager.take(sandbox);
  ASSERT_TRUE(snapshot.has_value());
  ASSERT_TRUE(engine.destroy(sandbox).is_ok());

  auto restored = manager.restore(*snapshot, 2);
  ASSERT_TRUE(restored.has_value()) << restored.status().to_report();
  ASSERT_TRUE(engine.start(*restored->sandbox).is_ok());
  EXPECT_EQ(restored->sandbox->state(), SandboxState::kRunning);
  ASSERT_TRUE(engine.destroy(*restored->sandbox).is_ok());
}

TEST(BootModelTest, ColdBootAroundProfileConstant) {
  BootModel boot(VmmProfile::firecracker());
  auto result = boot.cold_boot(1, small_config());
  ASSERT_NE(result.sandbox, nullptr);
  const auto nominal = VmmProfile::firecracker().cold_boot;
  EXPECT_GE(result.boot_time, nominal * 85 / 100);
  EXPECT_LE(result.boot_time, nominal * 125 / 100);
}

TEST(BootModelTest, XenColdBootSlowerThanFirecracker) {
  EXPECT_GT(VmmProfile::xen().cold_boot, VmmProfile::firecracker().cold_boot);
}

TEST(VmmProfileTest, FlavourConstantsSane) {
  const auto fc = VmmProfile::firecracker();
  const auto xen = VmmProfile::xen();
  EXPECT_EQ(fc.kind, VmmKind::kFirecracker);
  EXPECT_EQ(xen.kind, VmmKind::kXen);
  // Table 1 anchors.
  EXPECT_EQ(fc.cold_boot, 1'500 * util::kMillisecond);
  EXPECT_EQ(fc.snapshot_restore, 1'300 * util::kMicrosecond);
  EXPECT_GT(xen.resume_control_plane, fc.resume_control_plane);
}

}  // namespace
}  // namespace horse::vmm
