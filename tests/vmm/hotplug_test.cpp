// vCPU hot(un)plug of paused sandboxes — the lifecycle event that forces
// HORSE's pause-time precomputations (coalescing factors, 𝒫²𝒮ℳ index) to
// be repaired incrementally.
#include <gtest/gtest.h>

#include <memory>

#include "core/horse_resume.hpp"
#include "vmm/resume_engine.hpp"

namespace horse {
namespace {

std::unique_ptr<vmm::Sandbox> make_sandbox(sched::SandboxId id,
                                           std::uint32_t vcpus, bool ull) {
  vmm::SandboxConfig config;
  config.name = "hp";
  config.num_vcpus = vcpus;
  config.memory_mb = 1;
  config.ull = ull;
  return std::make_unique<vmm::Sandbox>(id, config);
}

TEST(HotplugTest, SandboxAddVcpuRequiresPaused) {
  auto sandbox = make_sandbox(1, 1, false);
  EXPECT_FALSE(sandbox->add_vcpu().has_value());
  sandbox->set_state(vmm::SandboxState::kPaused);
  const auto vcpu = sandbox->add_vcpu();
  ASSERT_TRUE(vcpu.has_value());
  EXPECT_EQ((*vcpu)->id, 1u);
  EXPECT_EQ(sandbox->num_vcpus(), 2u);
  EXPECT_EQ(sandbox->config().num_vcpus, 2u);
}

TEST(HotplugTest, SandboxRemoveLastGuards) {
  auto sandbox = make_sandbox(1, 2, false);
  EXPECT_FALSE(sandbox->remove_last_vcpu().is_ok());  // not paused
  sandbox->set_state(vmm::SandboxState::kPaused);
  ASSERT_TRUE(sandbox->remove_last_vcpu().is_ok());
  EXPECT_EQ(sandbox->num_vcpus(), 1u);
  EXPECT_FALSE(sandbox->remove_last_vcpu().is_ok());  // last vCPU
}

TEST(HotplugTest, VanillaEngineHotplugJoinsMergeList) {
  sched::CpuTopology topology(4);
  vmm::ResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  auto sandbox = make_sandbox(1, 2, false);
  ASSERT_TRUE(engine.start(*sandbox).is_ok());
  ASSERT_TRUE(engine.pause(*sandbox).is_ok());

  ASSERT_TRUE(engine.hotplug_vcpu(*sandbox).is_ok());
  EXPECT_EQ(sandbox->num_vcpus(), 3u);
  EXPECT_EQ(sandbox->merge_vcpus().size(), 3u);

  // The resumed sandbox schedules all three vCPUs.
  ASSERT_TRUE(engine.resume(*sandbox).is_ok());
  std::size_t queued = 0;
  for (sched::CpuId cpu = 0; cpu < topology.num_cpus(); ++cpu) {
    queued += topology.queue(cpu).size();
  }
  EXPECT_EQ(queued, 3u);
  ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
}

TEST(HotplugTest, VanillaEngineUnplugShrinks) {
  sched::CpuTopology topology(4);
  vmm::ResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  auto sandbox = make_sandbox(1, 3, false);
  ASSERT_TRUE(engine.start(*sandbox).is_ok());
  ASSERT_TRUE(engine.pause(*sandbox).is_ok());
  ASSERT_TRUE(engine.unplug_vcpu(*sandbox).is_ok());
  EXPECT_EQ(sandbox->num_vcpus(), 2u);
  EXPECT_EQ(sandbox->merge_vcpus().size(), 2u);
  ASSERT_TRUE(engine.resume(*sandbox).is_ok());
  ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
}

TEST(HotplugTest, HotplugRequiresPausedThroughEngine) {
  sched::CpuTopology topology(4);
  vmm::ResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  auto sandbox = make_sandbox(1, 1, false);
  ASSERT_TRUE(engine.start(*sandbox).is_ok());
  EXPECT_FALSE(engine.hotplug_vcpu(*sandbox).is_ok());
  EXPECT_FALSE(engine.unplug_vcpu(*sandbox).is_ok());
  ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
}

TEST(HotplugTest, HorseHotplugRepairsFastPathState) {
  sched::CpuTopology topology(4);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  auto sandbox = make_sandbox(1, 2, true);
  ASSERT_TRUE(engine.start(*sandbox).is_ok());
  ASSERT_TRUE(engine.pause(*sandbox).is_ok());

  const auto pre_before = sandbox->coalesce();
  ASSERT_TRUE(engine.hotplug_vcpu(*sandbox).is_ok());
  EXPECT_EQ(sandbox->num_vcpus(), 3u);

  // Coalescing factors recomputed for n=3.
  const auto& pre_after = sandbox->coalesce();
  EXPECT_TRUE(pre_after.valid);
  EXPECT_LT(pre_after.alpha_n, pre_before.alpha_n);  // alpha^3 < alpha^2

  // Index extended incrementally, not rebuilt from scratch.
  core::P2smIndex* index = engine.ull_manager().index_of(sandbox->id());
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->stats().incremental_inserts, 1u);

  // Resume is still the O(1) fast path and lands 3 vCPUs on the queue.
  vmm::ResumeBreakdown breakdown;
  ASSERT_TRUE(engine.resume(*sandbox, &breakdown).is_ok());
  EXPECT_EQ(topology.queue(3).size(), 3u);
  EXPECT_TRUE(topology.queue(3).is_sorted());
  ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
}

TEST(HotplugTest, HorseUnplugUsesIncrementalRemove) {
  sched::CpuTopology topology(4);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  auto sandbox = make_sandbox(1, 4, true);
  ASSERT_TRUE(engine.start(*sandbox).is_ok());
  ASSERT_TRUE(engine.pause(*sandbox).is_ok());

  ASSERT_TRUE(engine.unplug_vcpu(*sandbox).is_ok());
  EXPECT_EQ(sandbox->num_vcpus(), 3u);
  EXPECT_EQ(sandbox->merge_vcpus().size(), 3u);
  core::P2smIndex* index = engine.ull_manager().index_of(sandbox->id());
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->stats().incremental_removes, 1u);

  ASSERT_TRUE(engine.resume(*sandbox).is_ok());
  EXPECT_EQ(topology.queue(3).size(), 3u);
  ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
}

TEST(HotplugTest, HorseHotplugCycleStress) {
  sched::CpuTopology topology(4);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  auto sandbox = make_sandbox(1, 1, true);
  ASSERT_TRUE(engine.start(*sandbox).is_ok());
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(engine.pause(*sandbox).is_ok());
    ASSERT_TRUE(engine.hotplug_vcpu(*sandbox).is_ok());
    ASSERT_TRUE(engine.hotplug_vcpu(*sandbox).is_ok());
    ASSERT_TRUE(engine.unplug_vcpu(*sandbox).is_ok());
    ASSERT_TRUE(engine.resume(*sandbox).is_ok());
    ASSERT_TRUE(topology.queue(3).is_sorted());
  }
  EXPECT_EQ(sandbox->num_vcpus(), 11u);  // +1 net per round
  EXPECT_EQ(topology.queue(3).size(), 11u);
  ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
}

TEST(HotplugTest, CoalescePrecomputeMatchesNewCount) {
  sched::CpuTopology topology(4);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  auto sandbox = make_sandbox(1, 2, true);
  ASSERT_TRUE(engine.start(*sandbox).is_ok());
  ASSERT_TRUE(engine.pause(*sandbox).is_ok());
  ASSERT_TRUE(engine.hotplug_vcpu(*sandbox).is_ok());

  // Resume applies a 3-update coalesce; compare against 3 iterative
  // updates on a twin queue starting from the same load.
  sched::RunQueue reference(0);
  reference.set_load_for_test(topology.queue(3).load());
  for (int i = 0; i < 3; ++i) {
    reference.update_load_enqueue();
  }
  ASSERT_TRUE(engine.resume(*sandbox).is_ok());
  EXPECT_NEAR(topology.queue(3).load(), reference.load(), 1e-9);
  ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
}

}  // namespace
}  // namespace horse
