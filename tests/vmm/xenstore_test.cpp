#include "vmm/xenstore.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sched/topology.hpp"
#include "vmm/resume_engine.hpp"

namespace horse::vmm {
namespace {

TEST(XenStoreTest, WriteReadRoundTrip) {
  XenStore store;
  ASSERT_TRUE(store.write("/local/domain/1/state", "running").is_ok());
  const auto value = store.read("/local/domain/1/state");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "running");
}

TEST(XenStoreTest, ReadMissingPathFails) {
  XenStore store;
  EXPECT_EQ(store.read("/nope").status().code(), util::StatusCode::kNotFound);
}

TEST(XenStoreTest, RejectsMalformedPaths) {
  XenStore store;
  EXPECT_FALSE(store.write("relative/path", "x").is_ok());
  EXPECT_FALSE(store.write("", "x").is_ok());
  EXPECT_FALSE(store.write("/trailing/", "x").is_ok());
}

TEST(XenStoreTest, OverwriteReplacesValue) {
  XenStore store;
  ASSERT_TRUE(store.write("/a", "1").is_ok());
  ASSERT_TRUE(store.write("/a", "2").is_ok());
  EXPECT_EQ(*store.read("/a"), "2");
  EXPECT_EQ(store.size(), 1u);
}

TEST(XenStoreTest, ListReturnsImmediateChildren) {
  XenStore store;
  ASSERT_TRUE(store.write("/local/domain/1/state", "running").is_ok());
  ASSERT_TRUE(store.write("/local/domain/1/vcpus", "4").is_ok());
  ASSERT_TRUE(store.write("/local/domain/2/state", "paused").is_ok());
  const auto domains = store.list("/local/domain");
  EXPECT_EQ(domains, (std::vector<std::string>{"1", "2"}));
  const auto dom1 = store.list("/local/domain/1");
  EXPECT_EQ(dom1, (std::vector<std::string>{"state", "vcpus"}));
}

TEST(XenStoreTest, ListEmptyDirectory) {
  XenStore store;
  EXPECT_TRUE(store.list("/empty").empty());
}

TEST(XenStoreTest, RemoveIsRecursive) {
  XenStore store;
  ASSERT_TRUE(store.write("/local/domain/1/state", "x").is_ok());
  ASSERT_TRUE(store.write("/local/domain/1/vcpu/0", "y").is_ok());
  ASSERT_TRUE(store.write("/local/domain/2/state", "z").is_ok());
  ASSERT_TRUE(store.remove("/local/domain/1").is_ok());
  EXPECT_FALSE(store.exists("/local/domain/1/state"));
  EXPECT_FALSE(store.exists("/local/domain/1/vcpu/0"));
  EXPECT_TRUE(store.exists("/local/domain/2/state"));
}

TEST(XenStoreTest, RemoveMissingFails) {
  XenStore store;
  EXPECT_EQ(store.remove("/ghost").code(), util::StatusCode::kNotFound);
}

TEST(XenStoreTest, RemoveDoesNotEatSiblingsWithSharedPrefix) {
  XenStore store;
  ASSERT_TRUE(store.write("/a/b", "1").is_ok());
  ASSERT_TRUE(store.write("/a/bc", "2").is_ok());  // NOT under /a/b
  ASSERT_TRUE(store.remove("/a/b").is_ok());
  EXPECT_TRUE(store.exists("/a/bc"));
}

TEST(XenStoreTest, TransactionCommitAppliesWrites) {
  XenStore store;
  const auto tx = store.tx_begin();
  ASSERT_TRUE(store.tx_write(tx, "/d/state", "paused").is_ok());
  EXPECT_FALSE(store.exists("/d/state"));  // isolated until commit
  ASSERT_TRUE(store.tx_commit(tx).is_ok());
  EXPECT_EQ(*store.read("/d/state"), "paused");
}

TEST(XenStoreTest, TransactionReadsOwnWrites) {
  XenStore store;
  const auto tx = store.tx_begin();
  ASSERT_TRUE(store.tx_write(tx, "/k", "v").is_ok());
  const auto value = store.tx_read(tx, "/k");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "v");
  store.tx_abort(tx);
}

TEST(XenStoreTest, TransactionAbortDiscards) {
  XenStore store;
  const auto tx = store.tx_begin();
  ASSERT_TRUE(store.tx_write(tx, "/k", "v").is_ok());
  store.tx_abort(tx);
  EXPECT_FALSE(store.exists("/k"));
  // Committing an aborted transaction fails.
  EXPECT_EQ(store.tx_commit(tx).code(), util::StatusCode::kNotFound);
}

TEST(XenStoreTest, ConflictingCommitFailsLikeEagain) {
  XenStore store;
  ASSERT_TRUE(store.write("/d/state", "running").is_ok());

  const auto tx = store.tx_begin();
  const auto observed = store.tx_read(tx, "/d/state");
  ASSERT_TRUE(observed.has_value());

  // Outside write invalidates the transaction's snapshot.
  ASSERT_TRUE(store.write("/d/state", "destroyed").is_ok());
  ASSERT_TRUE(store.tx_write(tx, "/d/state", "paused").is_ok());
  EXPECT_EQ(store.tx_commit(tx).code(), util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(*store.read("/d/state"), "destroyed");  // untouched by tx
}

TEST(XenStoreTest, NonConflictingTransactionsBothCommit) {
  XenStore store;
  const auto tx1 = store.tx_begin();
  const auto tx2 = store.tx_begin();
  ASSERT_TRUE(store.tx_write(tx1, "/a", "1").is_ok());
  ASSERT_TRUE(store.tx_write(tx2, "/b", "2").is_ok());
  EXPECT_TRUE(store.tx_commit(tx1).is_ok());
  EXPECT_TRUE(store.tx_commit(tx2).is_ok());
  EXPECT_EQ(*store.read("/a"), "1");
  EXPECT_EQ(*store.read("/b"), "2");
}

TEST(XenStoreTest, WriteWriteConflictDetected) {
  XenStore store;
  const auto tx1 = store.tx_begin();
  const auto tx2 = store.tx_begin();
  ASSERT_TRUE(store.tx_write(tx1, "/k", "1").is_ok());
  ASSERT_TRUE(store.tx_write(tx2, "/k", "2").is_ok());
  EXPECT_TRUE(store.tx_commit(tx1).is_ok());
  EXPECT_EQ(store.tx_commit(tx2).code(), util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(*store.read("/k"), "1");
}

TEST(XenStoreTest, ChangeCountTracksSubtree) {
  XenStore store;
  EXPECT_EQ(store.change_count("/local"), 0u);
  ASSERT_TRUE(store.write("/local/domain/1/state", "a").is_ok());
  const auto first = store.change_count("/local/domain/1");
  EXPECT_GT(first, 0u);
  ASSERT_TRUE(store.write("/local/domain/1/state", "b").is_ok());
  EXPECT_GT(store.change_count("/local/domain/1"), first);
  // Unrelated subtree unaffected.
  EXPECT_EQ(store.change_count("/other"), 0u);
}

TEST(XenStoreTest, ConcurrentWritersStayConsistent) {
  XenStore store;
  constexpr int kThreads = 4;
  constexpr int kWrites = 500;
  std::vector<std::jthread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kWrites; ++i) {
        const std::string path =
            "/stress/" + std::to_string(t) + "/" + std::to_string(i % 10);
        (void)store.write(path, std::to_string(i));
      }
    });
  }
  threads.clear();
  // 4 threads x 10 distinct keys each.
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kThreads) * 10);
}

TEST(XenStoreResumeIntegrationTest, XenEngineMaintainsDomainState) {
  sched::CpuTopology topology(4);
  ResumeEngine engine(topology, VmmProfile::xen());
  ASSERT_NE(engine.xenstore(), nullptr);

  SandboxConfig config;
  config.name = "dom";
  config.num_vcpus = 2;
  config.memory_mb = 1;
  Sandbox sandbox(7, config);
  const std::string state_path = XenStore::domain_path(7) + "/state";

  ASSERT_TRUE(engine.start(sandbox).is_ok());
  EXPECT_EQ(*engine.xenstore()->read(state_path), "running");
  ASSERT_TRUE(engine.pause(sandbox).is_ok());
  EXPECT_EQ(*engine.xenstore()->read(state_path), "paused");
  ASSERT_TRUE(engine.resume(sandbox).is_ok());
  EXPECT_EQ(*engine.xenstore()->read(state_path), "running");
  EXPECT_EQ(*engine.xenstore()->read(XenStore::domain_path(7) + "/vcpus"), "2");
  ASSERT_TRUE(engine.destroy(sandbox).is_ok());
  EXPECT_FALSE(engine.xenstore()->exists(state_path));
}

TEST(XenStoreResumeIntegrationTest, TamperedStateFailsSanityCheck) {
  sched::CpuTopology topology(4);
  ResumeEngine engine(topology, VmmProfile::xen());
  SandboxConfig config;
  config.name = "dom";
  config.num_vcpus = 1;
  config.memory_mb = 1;
  Sandbox sandbox(9, config);
  ASSERT_TRUE(engine.start(sandbox).is_ok());
  ASSERT_TRUE(engine.pause(sandbox).is_ok());
  // Control-plane/state-machine divergence must be caught by step ③.
  ASSERT_TRUE(engine.xenstore()
                  ->write(XenStore::domain_path(9) + "/state", "destroyed")
                  .is_ok());
  EXPECT_EQ(engine.resume(sandbox).code(),
            util::StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine.destroy(sandbox).is_ok());
}

TEST(XenStoreResumeIntegrationTest, FirecrackerEngineHasNoStore) {
  sched::CpuTopology topology(2);
  ResumeEngine engine(topology, VmmProfile::firecracker());
  EXPECT_EQ(engine.xenstore(), nullptr);
}

}  // namespace
}  // namespace horse::vmm
