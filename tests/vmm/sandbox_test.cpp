#include "vmm/sandbox.hpp"

#include <gtest/gtest.h>

namespace horse::vmm {
namespace {

TEST(SandboxTest, ConstructsWithConfiguredVcpus) {
  SandboxConfig config;
  config.name = "fn";
  config.num_vcpus = 4;
  config.memory_mb = 128;
  Sandbox sandbox(7, config);
  EXPECT_EQ(sandbox.id(), 7u);
  EXPECT_EQ(sandbox.num_vcpus(), 4u);
  EXPECT_EQ(sandbox.state(), SandboxState::kCreated);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sandbox.vcpu(i).id, i);
    EXPECT_EQ(sandbox.vcpu(i).sandbox, 7u);
    EXPECT_EQ(sandbox.vcpu(i).state, sched::VcpuState::kOffline);
  }
}

TEST(SandboxTest, RejectsZeroVcpus) {
  SandboxConfig config;
  config.num_vcpus = 0;
  EXPECT_THROW(Sandbox(1, config), std::invalid_argument);
}

TEST(SandboxTest, RejectsZeroMemory) {
  SandboxConfig config;
  config.memory_mb = 0;
  EXPECT_THROW(Sandbox(1, config), std::invalid_argument);
}

TEST(SandboxTest, GuestMemoryScaled) {
  SandboxConfig config;
  config.memory_mb = 64;
  Sandbox sandbox(1, config);
  EXPECT_EQ(sandbox.guest_memory().size(),
            64u * 1024 * 1024 / Sandbox::kMemoryScaleDenominator);
}

TEST(SandboxTest, MergeVcpusStartsEmpty) {
  SandboxConfig config;
  Sandbox sandbox(1, config);
  EXPECT_EQ(sandbox.merge_vcpus().size(), 0u);
}

TEST(SandboxTest, CoalescePrecomputeStartsInvalid) {
  SandboxConfig config;
  Sandbox sandbox(1, config);
  EXPECT_FALSE(sandbox.coalesce().valid);
}

TEST(SandboxTest, StateToString) {
  EXPECT_EQ(to_string(SandboxState::kCreated), "created");
  EXPECT_EQ(to_string(SandboxState::kRunning), "running");
  EXPECT_EQ(to_string(SandboxState::kPaused), "paused");
  EXPECT_EQ(to_string(SandboxState::kDestroyed), "destroyed");
}

TEST(SandboxTest, VcpuAddressesStable) {
  SandboxConfig config;
  config.num_vcpus = 8;
  Sandbox sandbox(1, config);
  sched::Vcpu* first = &sandbox.vcpu(0);
  // Accessing other vCPUs must not move the first (they are heap-pinned;
  // intrusive hooks depend on this).
  sched::Vcpu* again = &sandbox.vcpu(0);
  EXPECT_EQ(first, again);
}

}  // namespace
}  // namespace horse::vmm
