#include "vmm/boot.hpp"

#include <gtest/gtest.h>

namespace horse::vmm {
namespace {

SandboxConfig config_of(std::uint32_t vcpus) {
  SandboxConfig config;
  config.name = "boot";
  config.num_vcpus = vcpus;
  config.memory_mb = 1;
  return config;
}

TEST(BootModelTest, DeterministicPerSeed) {
  BootModel a(VmmProfile::firecracker(), 7);
  BootModel b(VmmProfile::firecracker(), 7);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a.cold_boot(1, config_of(1)).boot_time,
              b.cold_boot(1, config_of(1)).boot_time);
  }
}

TEST(BootModelTest, DifferentSeedsJitterDifferently) {
  BootModel a(VmmProfile::firecracker(), 1);
  BootModel b(VmmProfile::firecracker(), 2);
  int equal = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.cold_boot(1, config_of(1)).boot_time ==
        b.cold_boot(1, config_of(1)).boot_time) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(BootModelTest, SandboxComesOutCreatedWithVcpus) {
  BootModel boot(VmmProfile::firecracker());
  auto result = boot.cold_boot(42, config_of(4));
  ASSERT_NE(result.sandbox, nullptr);
  EXPECT_EQ(result.sandbox->id(), 42u);
  EXPECT_EQ(result.sandbox->num_vcpus(), 4u);
  EXPECT_EQ(result.sandbox->state(), SandboxState::kCreated);
}

TEST(BootModelTest, JitterStaysWithinClampedBand) {
  BootModel boot(VmmProfile::xen(), 9);
  const auto nominal = VmmProfile::xen().cold_boot;
  for (int i = 0; i < 50; ++i) {
    const auto time = boot.cold_boot(1, config_of(1)).boot_time;
    EXPECT_GE(time, nominal * 9 / 10);
    EXPECT_LE(time, nominal * 12 / 10);
  }
}

}  // namespace
}  // namespace horse::vmm
