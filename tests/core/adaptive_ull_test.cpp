#include "core/adaptive_ull.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/horse_resume.hpp"

namespace horse::core {
namespace {

class AdaptiveUllTest : public ::testing::Test {
 protected:
  AdaptiveUllTest() : topology_(16), manager_(topology_, HorseConfig{}) {}

  sched::CpuTopology topology_;
  UllRunQueueManager manager_;
};

TEST_F(AdaptiveUllTest, ParamsValidate) {
  AdaptiveUllParams params;
  params.triggers_per_queue_per_sec = 0.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.grow_threshold = 0.3;
  params.shrink_threshold = 0.5;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.ewma_alpha = 0.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST_F(AdaptiveUllTest, GrowReservesNextCpuDown) {
  EXPECT_EQ(manager_.ull_cpus(), (std::vector<sched::CpuId>{15}));
  ASSERT_TRUE(manager_.grow().is_ok());
  EXPECT_EQ(manager_.ull_cpus(), (std::vector<sched::CpuId>{15, 14}));
  EXPECT_TRUE(topology_.is_reserved(14));
}

TEST_F(AdaptiveUllTest, ShrinkReleasesLastQueue) {
  ASSERT_TRUE(manager_.grow().is_ok());
  ASSERT_TRUE(manager_.shrink().is_ok());
  EXPECT_EQ(manager_.ull_cpus().size(), 1u);
  EXPECT_FALSE(topology_.is_reserved(14));
}

TEST_F(AdaptiveUllTest, ShrinkBelowOneFails) {
  EXPECT_EQ(manager_.shrink().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(AdaptiveUllTest, ShrinkBlockedByAssignedSandbox) {
  ASSERT_TRUE(manager_.grow().is_ok());
  // Pause a sandbox; balancing assigns it to the new (emptier) queue 14.
  vmm::SandboxConfig config;
  config.name = "ull";
  config.num_vcpus = 1;
  config.memory_mb = 1;
  config.ull = true;
  vmm::Sandbox sandbox(1, config);
  const auto cpu = manager_.assign(sandbox);
  if (cpu == 14) {
    EXPECT_EQ(manager_.shrink().code(), util::StatusCode::kFailedPrecondition);
  }
  manager_.untrack(sandbox.id());
  EXPECT_TRUE(manager_.shrink().is_ok());
}

TEST_F(AdaptiveUllTest, GrowStopsBeforeConsumingAllCpus) {
  util::Status status;
  int grown = 0;
  while ((status = manager_.grow()).is_ok()) {
    ++grown;
    ASSERT_LT(grown, 16);
  }
  EXPECT_EQ(status.code(), util::StatusCode::kResourceExhausted);
  // At least one general CPU must survive.
  EXPECT_NO_THROW((void)topology_.least_loaded_general());
}

TEST_F(AdaptiveUllTest, ScalerGrowsUnderSustainedHighRate) {
  AdaptiveUllParams params;
  params.triggers_per_queue_per_sec = 1000.0;
  params.max_queues = 4;
  AdaptiveUllScaler scaler(manager_, params);
  // 900 triggers/s against a 1000/s single queue: above the 0.8 threshold.
  std::size_t queues = 1;
  for (int i = 0; i < 10; ++i) {
    queues = scaler.observe(900, util::kSecond);
  }
  EXPECT_GT(queues, 1u);
  EXPECT_GT(scaler.grows(), 0u);
  EXPECT_NEAR(scaler.rate_estimate(), 900.0, 1.0);
}

TEST_F(AdaptiveUllTest, ScalerShrinksWhenQuiet) {
  AdaptiveUllParams params;
  params.triggers_per_queue_per_sec = 1000.0;
  params.max_queues = 4;
  AdaptiveUllScaler scaler(manager_, params);
  for (int i = 0; i < 10; ++i) {
    (void)scaler.observe(1700, util::kSecond);  // forces 2+ queues
  }
  const std::size_t peak = manager_.ull_cpus().size();
  ASSERT_GT(peak, 1u);
  for (int i = 0; i < 20; ++i) {
    (void)scaler.observe(10, util::kSecond);  // traffic collapses
  }
  EXPECT_EQ(manager_.ull_cpus().size(), 1u);
  EXPECT_GT(scaler.shrinks(), 0u);
}

TEST_F(AdaptiveUllTest, ScalerHysteresisAvoidsFlapping) {
  AdaptiveUllParams params;
  params.triggers_per_queue_per_sec = 1000.0;
  params.max_queues = 4;
  AdaptiveUllScaler scaler(manager_, params);
  // Rate right between thresholds for 2 queues after one grow:
  // 900/s grows to 2 queues (cap 2000); shrink would need < 0.4*1000=400.
  for (int i = 0; i < 30; ++i) {
    (void)scaler.observe(900, util::kSecond);
  }
  EXPECT_EQ(manager_.ull_cpus().size(), 2u);
  EXPECT_EQ(scaler.grows(), 1u);
  EXPECT_EQ(scaler.shrinks(), 0u);
}

TEST_F(AdaptiveUllTest, ScalerRespectsMaxQueues) {
  AdaptiveUllParams params;
  params.triggers_per_queue_per_sec = 10.0;
  params.max_queues = 3;
  AdaptiveUllScaler scaler(manager_, params);
  for (int i = 0; i < 50; ++i) {
    (void)scaler.observe(100'000, util::kSecond);
  }
  EXPECT_EQ(manager_.ull_cpus().size(), 3u);
}

TEST_F(AdaptiveUllTest, ZeroWindowIgnored) {
  AdaptiveUllScaler scaler(manager_);
  EXPECT_EQ(scaler.observe(100, 0), 1u);
  EXPECT_EQ(scaler.rate_estimate(), 0.0);
}

TEST_F(AdaptiveUllTest, HorseEngineWorksAcrossGrownQueues) {
  // End-to-end: grow to 2 queues, pause/resume sandboxes that land on
  // both, verify isolation still holds.
  sched::CpuTopology topology(8);
  HorseConfig config;
  config.num_ull_runqueues = 2;
  HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker(), config);

  std::vector<std::unique_ptr<vmm::Sandbox>> sandboxes;
  for (int i = 0; i < 4; ++i) {
    vmm::SandboxConfig sandbox_config;
    sandbox_config.name = "ull";
    sandbox_config.num_vcpus = 2;
    sandbox_config.memory_mb = 1;
    sandbox_config.ull = true;
    auto sandbox = std::make_unique<vmm::Sandbox>(50 + i, sandbox_config);
    ASSERT_TRUE(engine.start(*sandbox).is_ok());
    ASSERT_TRUE(engine.pause(*sandbox).is_ok());
    sandboxes.push_back(std::move(sandbox));
  }
  for (auto& sandbox : sandboxes) {
    (void)engine.ull_manager().refresh();
    ASSERT_TRUE(engine.resume(*sandbox).is_ok());
  }
  // All vCPUs ended on the two reserved queues, both sorted.
  EXPECT_EQ(topology.queue(7).size() + topology.queue(6).size(), 8u);
  EXPECT_TRUE(topology.queue(7).is_sorted());
  EXPECT_TRUE(topology.queue(6).is_sorted());
  for (auto& sandbox : sandboxes) {
    ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
  }
}

}  // namespace
}  // namespace horse::core
