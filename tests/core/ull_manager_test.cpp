#include "core/ull_manager.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "util/epoch.hpp"
#include "vmm/resume_engine.hpp"

namespace horse::core {
namespace {

class UllManagerTest : public ::testing::Test {
 protected:
  UllManagerTest() : topology_(8) {}

  HorseConfig config(std::uint32_t queues) {
    HorseConfig cfg;
    cfg.num_ull_runqueues = queues;
    return cfg;
  }

  std::unique_ptr<vmm::Sandbox> paused_sandbox(std::uint32_t vcpus) {
    vmm::SandboxConfig cfg;
    cfg.name = "ull";
    cfg.num_vcpus = vcpus;
    cfg.memory_mb = 1;
    cfg.ull = true;
    auto sandbox = std::make_unique<vmm::Sandbox>(next_id_++, cfg);
    vmm::ResumeEngine engine(topology_, vmm::VmmProfile::firecracker());
    (void)engine.start(*sandbox);
    (void)engine.pause(*sandbox);
    return sandbox;
  }

  sched::CpuTopology topology_;
  sched::SandboxId next_id_ = 1;
};

TEST_F(UllManagerTest, ReservesHighestCpus) {
  UllRunQueueManager manager(topology_, config(2));
  EXPECT_EQ(manager.ull_cpus(), (std::vector<sched::CpuId>{7, 6}));
  EXPECT_TRUE(topology_.is_reserved(7));
  EXPECT_TRUE(topology_.is_reserved(6));
  EXPECT_FALSE(topology_.is_reserved(5));
}

TEST_F(UllManagerTest, RejectsReservingEveryCpu) {
  sched::CpuTopology tiny(2);
  EXPECT_THROW(UllRunQueueManager(tiny, config(2)), std::invalid_argument);
}

TEST_F(UllManagerTest, AssignBalancesByPausedCount) {
  UllRunQueueManager manager(topology_, config(2));
  auto s1 = paused_sandbox(1);
  auto s2 = paused_sandbox(1);
  auto s3 = paused_sandbox(1);
  const auto c1 = manager.assign(*s1);
  ASSERT_TRUE(manager.track(*s1).is_ok());
  const auto c2 = manager.assign(*s2);
  ASSERT_TRUE(manager.track(*s2).is_ok());
  EXPECT_NE(c1, c2);  // second sandbox goes to the other queue
  const auto c3 = manager.assign(*s3);
  ASSERT_TRUE(manager.track(*s3).is_ok());
  // Third joins whichever queue has one sandbox — both do, so any
  // reserved queue is fine; occupancy must stay balanced 2/1.
  EXPECT_TRUE(c3 == c1 || c3 == c2);
  EXPECT_EQ(manager.tracked_count(), 3u);
}

TEST_F(UllManagerTest, AssignmentLookup) {
  UllRunQueueManager manager(topology_, config(1));
  auto sandbox = paused_sandbox(2);
  EXPECT_FALSE(manager.assignment(sandbox->id()).has_value());
  const auto cpu = manager.assign(*sandbox);
  const auto looked_up = manager.assignment(sandbox->id());
  ASSERT_TRUE(looked_up.has_value());
  EXPECT_EQ(*looked_up, cpu);
}

TEST_F(UllManagerTest, TrackRequiresAssignment) {
  UllRunQueueManager manager(topology_, config(1));
  auto sandbox = paused_sandbox(1);
  EXPECT_EQ(manager.track(*sandbox).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(UllManagerTest, TrackRequiresParkedVcpus) {
  UllRunQueueManager manager(topology_, config(1));
  vmm::SandboxConfig cfg;
  cfg.num_vcpus = 1;
  cfg.ull = true;
  vmm::Sandbox sandbox(99, cfg);  // never started/paused
  (void)manager.assign(sandbox);
  EXPECT_EQ(manager.track(sandbox).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(UllManagerTest, TrackBuildsFreshIndex) {
  UllRunQueueManager manager(topology_, config(1));
  auto sandbox = paused_sandbox(4);
  (void)manager.assign(*sandbox);
  ASSERT_TRUE(manager.track(*sandbox).is_ok());
  P2smIndex* index = manager.index_of(sandbox->id());
  ASSERT_NE(index, nullptr);
  EXPECT_TRUE(index->fresh(topology_.queue(7)));
}

TEST_F(UllManagerTest, RefreshRebuildsStaleIndexes) {
  UllRunQueueManager manager(topology_, config(1));
  auto sandbox = paused_sandbox(2);
  (void)manager.assign(*sandbox);
  ASSERT_TRUE(manager.track(*sandbox).is_ok());
  EXPECT_EQ(manager.refresh(), 0u);  // fresh right after track

  // Mutate the ull queue: index goes stale, refresh rebuilds it.
  sched::Vcpu intruder;
  intruder.credit = 5;
  {
    util::LockGuard guard(topology_.queue(7).lock());
    topology_.queue(7).insert_sorted(intruder);
  }
  EXPECT_EQ(manager.refresh(), 1u);
  EXPECT_TRUE(manager.index_of(sandbox->id())->fresh(topology_.queue(7)));
  {
    util::LockGuard guard(topology_.queue(7).lock());
    topology_.queue(7).remove(intruder);
  }
}

TEST_F(UllManagerTest, UntrackDropsState) {
  UllRunQueueManager manager(topology_, config(1));
  auto sandbox = paused_sandbox(1);
  (void)manager.assign(*sandbox);
  ASSERT_TRUE(manager.track(*sandbox).is_ok());
  manager.untrack(sandbox->id());
  EXPECT_EQ(manager.tracked_count(), 0u);
  EXPECT_EQ(manager.index_of(sandbox->id()), nullptr);
  EXPECT_FALSE(manager.assignment(sandbox->id()).has_value());
}

TEST_F(UllManagerTest, LookupPinProtectsIndexAcrossUntrackAndReclaim) {
  // Regression: the resume path's pin must be published inside lookup(),
  // under the manager mutex, while the node is still tracked. Pinning
  // after lookup() returned left a window where a concurrent untrack plus
  // maintenance reclaim pumps freed the index under the reader.
  HorseConfig cfg = config(1);
  cfg.epoch_reclaim = true;
  UllRunQueueManager manager(topology_, cfg);
  auto sandbox = paused_sandbox(2);
  (void)manager.assign(*sandbox);
  ASSERT_TRUE(manager.track(*sandbox).is_ok());

  util::EpochReclaimer& epoch = topology_.queue(7).epoch();
  std::optional<util::EpochReclaimer::ReadGuard> pin;
  const auto looked = manager.lookup(sandbox->id(), &pin);
  ASSERT_TRUE(looked.has_value());
  ASSERT_NE((*looked).index, nullptr);
  ASSERT_TRUE(pin.has_value());

  // Rogue destroy racing the resume: the node is retired, but no number
  // of reclaim attempts may free it while the lookup's pin is live.
  manager.untrack(sandbox->id());
  EXPECT_EQ(epoch.pending(), 1u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(epoch.try_reclaim(), 0u);
  }
  // Still dereferenceable — the ASan preset turns a stale free here into
  // a hard use-after-free failure.
  EXPECT_TRUE((*looked).index->built());

  pin.reset();
  std::size_t freed = 0;
  for (int i = 0; i < 3 && freed == 0; ++i) {
    freed = epoch.try_reclaim();
  }
  EXPECT_EQ(freed, 1u);
  EXPECT_EQ(epoch.pending(), 0u);
}

TEST_F(UllManagerTest, LookupWithoutEpochReclaimLeavesPinEmpty) {
  HorseConfig cfg = config(1);
  cfg.epoch_reclaim = false;
  UllRunQueueManager manager(topology_, cfg);
  auto sandbox = paused_sandbox(1);
  (void)manager.assign(*sandbox);
  ASSERT_TRUE(manager.track(*sandbox).is_ok());
  std::optional<util::EpochReclaimer::ReadGuard> pin;
  const auto looked = manager.lookup(sandbox->id(), &pin);
  ASSERT_TRUE(looked.has_value());
  EXPECT_NE((*looked).index, nullptr);
  EXPECT_FALSE(pin.has_value());
}

TEST_F(UllManagerTest, MemoryAccountingGrowsWithSandboxes) {
  UllRunQueueManager manager(topology_, config(1));
  EXPECT_EQ(manager.total_index_bytes(), 0u);
  std::vector<std::unique_ptr<vmm::Sandbox>> sandboxes;
  std::size_t previous = 0;
  for (int i = 0; i < 10; ++i) {
    auto sandbox = paused_sandbox(4);
    (void)manager.assign(*sandbox);
    ASSERT_TRUE(manager.track(*sandbox).is_ok());
    sandboxes.push_back(std::move(sandbox));
    const std::size_t bytes = manager.total_index_bytes();
    EXPECT_GT(bytes, previous);
    previous = bytes;
  }
  // §5.2 band: 10 paused uLL sandboxes cost ~528 KB in the kernel
  // implementation; our user-space structures must stay the same order of
  // magnitude (well under 1 MB).
  EXPECT_LT(previous, 1024u * 1024u);
}

}  // namespace
}  // namespace horse::core
