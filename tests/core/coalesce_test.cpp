#include "core/coalesce.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace horse::core {
namespace {

TEST(CoalesceTest, PrecomputeMarksValid) {
  LoadCoalescer coalescer;
  const auto pre = coalescer.precompute(4);
  EXPECT_TRUE(pre.valid);
  EXPECT_GT(pre.alpha_n, 0.0);
  EXPECT_LT(pre.alpha_n, 1.0);
  EXPECT_GT(pre.beta_geo_sum, 0.0);
}

TEST(CoalesceTest, PrecomputeN1IsSingleUpdate) {
  LoadCoalescer coalescer;
  const auto pre = coalescer.precompute(1);
  const auto& params = coalescer.tracker().params();
  EXPECT_NEAR(pre.alpha_n, params.alpha, 1e-12);
  EXPECT_NEAR(pre.beta_geo_sum, params.beta, 1e-9);
  EXPECT_NEAR(LoadCoalescer::apply(pre, 100.0),
              coalescer.tracker().apply_once(100.0), 1e-9);
}

TEST(CoalesceTest, ApplyEqualsIterativeForAllVcpuCounts) {
  LoadCoalescer coalescer;
  for (std::uint32_t n = 1; n <= 36; ++n) {
    const auto pre = coalescer.precompute(n);
    for (const double load : {0.0, 10.0, 512.0, 1024.0, 4096.0}) {
      const double coalesced = LoadCoalescer::apply(pre, load);
      const double iterative = coalescer.tracker().apply_iterative(load, n);
      EXPECT_NEAR(coalesced, iterative, 1e-6 * std::max(1.0, iterative))
          << "n=" << n << " load=" << load;
    }
  }
}

TEST(CoalesceTest, PaperFormulaVariantDiffersFromIterative) {
  // The paper prints β(1-α^{n-1})/(1-α); the exact sum needs α^n. Document
  // the discrepancy by showing the printed variant deviates from the
  // iterative ground truth while ours matches (see coalesce.hpp).
  LoadCoalescer coalescer;
  const auto& params = coalescer.tracker().params();
  const std::uint32_t n = 8;
  const double alpha_n = std::pow(params.alpha, static_cast<double>(n));
  const double alpha_n_minus_1 =
      std::pow(params.alpha, static_cast<double>(n - 1));
  const double paper_variant =
      alpha_n * 100.0 + params.beta * (1.0 - alpha_n_minus_1) / (1.0 - params.alpha);
  const double iterative = coalescer.tracker().apply_iterative(100.0, n);
  EXPECT_GT(std::abs(paper_variant - iterative), 1.0);
}

TEST(CoalesceTest, CustomPeltParams) {
  sched::PeltParams params;
  params.alpha = 0.5;
  params.beta = 1.0;
  LoadCoalescer coalescer(params);
  const auto pre = coalescer.precompute(3);
  // alpha^3 = 0.125; sum = 1*(1+0.5+0.25) = 1.75
  EXPECT_NEAR(pre.alpha_n, 0.125, 1e-12);
  EXPECT_NEAR(pre.beta_geo_sum, 1.75, 1e-12);
  EXPECT_NEAR(LoadCoalescer::apply(pre, 8.0), 2.75, 1e-12);
}

TEST(CoalesceTest, LargeNStaysFinite) {
  LoadCoalescer coalescer;
  const auto pre = coalescer.precompute(100'000);
  EXPECT_NEAR(pre.alpha_n, 0.0, 1e-12);
  // Converges to the PELT fixed point 1024.
  EXPECT_NEAR(pre.beta_geo_sum, 1024.0, 1e-6);
}

}  // namespace
}  // namespace horse::core
