#include "core/horse_resume.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace horse::core {
namespace {

class HorseResumeTest : public ::testing::Test {
 protected:
  HorseResumeTest()
      : topology_(8),
        engine_(topology_, vmm::VmmProfile::firecracker(), HorseConfig{},
                HorseFeatures::all()) {}

  std::unique_ptr<vmm::Sandbox> make_sandbox(std::uint32_t vcpus, bool ull) {
    vmm::SandboxConfig config;
    config.name = ull ? "ull-fn" : "plain-fn";
    config.num_vcpus = vcpus;
    config.memory_mb = 1;
    config.ull = ull;
    return std::make_unique<vmm::Sandbox>(next_id_++, config);
  }

  std::size_t queued_on(sched::CpuId cpu) { return topology_.queue(cpu).size(); }

  sched::CpuTopology topology_;
  HorseResumeEngine engine_;
  sched::SandboxId next_id_ = 1;
};

TEST_F(HorseResumeTest, ReservesUllQueue) {
  EXPECT_TRUE(topology_.is_reserved(7));
  EXPECT_FALSE(topology_.is_reserved(0));
}

TEST_F(HorseResumeTest, PauseInstallsFastPathState) {
  auto sandbox = make_sandbox(4, true);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  ASSERT_TRUE(engine_.pause(*sandbox).is_ok());
  EXPECT_TRUE(sandbox->coalesce().valid);
  EXPECT_NE(engine_.ull_manager().index_of(sandbox->id()), nullptr);
  const auto cpu = engine_.ull_manager().assignment(sandbox->id());
  ASSERT_TRUE(cpu.has_value());
  EXPECT_EQ(*cpu, 7u);
  ASSERT_TRUE(engine_.resume(*sandbox).is_ok());
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(HorseResumeTest, NonUllSandboxSkipsFastPath) {
  auto sandbox = make_sandbox(2, false);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  ASSERT_TRUE(engine_.pause(*sandbox).is_ok());
  EXPECT_FALSE(sandbox->coalesce().valid);
  EXPECT_EQ(engine_.ull_manager().index_of(sandbox->id()), nullptr);
  ASSERT_TRUE(engine_.resume(*sandbox).is_ok());
  // Resumed onto general queues, never the reserved one.
  EXPECT_EQ(queued_on(7), 0u);
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(HorseResumeTest, ResumePlacesAllVcpusOnUllQueue) {
  auto sandbox = make_sandbox(6, true);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  ASSERT_TRUE(engine_.pause(*sandbox).is_ok());
  vmm::ResumeBreakdown breakdown;
  ASSERT_TRUE(engine_.resume(*sandbox, &breakdown).is_ok());
  EXPECT_EQ(sandbox->state(), vmm::SandboxState::kRunning);
  EXPECT_EQ(queued_on(7), 6u);
  EXPECT_TRUE(topology_.queue(7).is_sorted());
  EXPECT_EQ(sandbox->merge_vcpus().size(), 0u);
  for (const auto& vcpu : sandbox->vcpus()) {
    EXPECT_EQ(vcpu->state, sched::VcpuState::kRunnable);
    EXPECT_EQ(vcpu->last_cpu, 7u);
  }
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(HorseResumeTest, ResumeConsumesFastPathState) {
  auto sandbox = make_sandbox(2, true);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  ASSERT_TRUE(engine_.pause(*sandbox).is_ok());
  ASSERT_TRUE(engine_.resume(*sandbox).is_ok());
  EXPECT_FALSE(sandbox->coalesce().valid);
  EXPECT_EQ(engine_.ull_manager().index_of(sandbox->id()), nullptr);
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(HorseResumeTest, ResumeWithoutPauseFails) {
  auto sandbox = make_sandbox(1, true);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  EXPECT_FALSE(engine_.resume(*sandbox).is_ok());
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(HorseResumeTest, CoalescedLoadMatchesVanillaIterative) {
  // Run the same pause/resume on two engines — HORSE coalesced vs vanilla
  // per-vCPU — and compare the resulting queue loads.
  sched::CpuTopology horse_topo(4);
  HorseResumeEngine horse(horse_topo, vmm::VmmProfile::firecracker());
  sched::CpuTopology vanilla_topo(4);
  vmm::ResumeEngine vanilla(vanilla_topo, vmm::VmmProfile::firecracker());

  auto ull = make_sandbox(8, true);
  ASSERT_TRUE(horse.start(*ull).is_ok());
  ASSERT_TRUE(horse.pause(*ull).is_ok());
  // Equalise the target queues' starting load, then resume both ways.
  horse_topo.queue(3).set_load_for_test(100.0);
  ASSERT_TRUE(horse.resume(*ull).is_ok());
  const double horse_load = horse_topo.queue(3).load();

  auto plain = make_sandbox(8, false);
  ASSERT_TRUE(vanilla.start(*plain).is_ok());
  ASSERT_TRUE(vanilla.pause(*plain).is_ok());
  // Force all 8 iterative updates onto CPU 0 by loading up the others.
  vanilla_topo.queue(0).set_load_for_test(100.0);
  vanilla_topo.queue(1).set_load_for_test(1e9);
  vanilla_topo.queue(2).set_load_for_test(1e9);
  vanilla_topo.queue(3).set_load_for_test(1e9);
  ASSERT_TRUE(vanilla.resume(*plain).is_ok());
  const double vanilla_load = vanilla_topo.queue(0).load();

  EXPECT_NEAR(horse_load, vanilla_load, 1e-6);
  ASSERT_TRUE(horse.destroy(*ull).is_ok());
  ASSERT_TRUE(vanilla.destroy(*plain).is_ok());
}

TEST_F(HorseResumeTest, RepeatedCyclesStayConsistent) {
  auto sandbox = make_sandbox(4, true);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  for (int cycle = 0; cycle < 25; ++cycle) {
    ASSERT_TRUE(engine_.pause(*sandbox).is_ok()) << "cycle " << cycle;
    ASSERT_TRUE(engine_.resume(*sandbox).is_ok()) << "cycle " << cycle;
    ASSERT_EQ(queued_on(7), 4u);
    ASSERT_TRUE(topology_.queue(7).is_sorted());
  }
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

TEST_F(HorseResumeTest, MultiplePausedSandboxesResumeIndependently) {
  auto s1 = make_sandbox(2, true);
  auto s2 = make_sandbox(3, true);
  ASSERT_TRUE(engine_.start(*s1).is_ok());
  ASSERT_TRUE(engine_.start(*s2).is_ok());
  ASSERT_TRUE(engine_.pause(*s1).is_ok());
  ASSERT_TRUE(engine_.pause(*s2).is_ok());

  // Resuming s1 mutates the ull queue; s2's index goes stale and must be
  // refreshed (or the resume falls back to an inline rebuild).
  ASSERT_TRUE(engine_.resume(*s1).is_ok());
  EXPECT_EQ(engine_.ull_manager().refresh(), 1u);
  ASSERT_TRUE(engine_.resume(*s2).is_ok());
  EXPECT_EQ(queued_on(7), 5u);
  EXPECT_TRUE(topology_.queue(7).is_sorted());
  ASSERT_TRUE(engine_.destroy(*s1).is_ok());
  ASSERT_TRUE(engine_.destroy(*s2).is_ok());
}

TEST_F(HorseResumeTest, StaleIndexFallbackRebuildsInline) {
  auto s1 = make_sandbox(2, true);
  auto s2 = make_sandbox(2, true);
  ASSERT_TRUE(engine_.start(*s1).is_ok());
  ASSERT_TRUE(engine_.start(*s2).is_ok());
  ASSERT_TRUE(engine_.pause(*s1).is_ok());
  ASSERT_TRUE(engine_.pause(*s2).is_ok());
  ASSERT_TRUE(engine_.resume(*s1).is_ok());
  // No refresh() call: s2's index is stale, resume must still succeed.
  ASSERT_TRUE(engine_.resume(*s2).is_ok());
  EXPECT_EQ(queued_on(7), 4u);
  EXPECT_TRUE(topology_.queue(7).is_sorted());
  ASSERT_TRUE(engine_.destroy(*s1).is_ok());
  ASSERT_TRUE(engine_.destroy(*s2).is_ok());
}

TEST_F(HorseResumeTest, PpsmOnlyFeatureSet) {
  sched::CpuTopology topo(4);
  HorseResumeEngine ppsm(topo, vmm::VmmProfile::firecracker(), HorseConfig{},
                         HorseFeatures::ppsm_only());
  auto sandbox = make_sandbox(4, true);
  ASSERT_TRUE(ppsm.start(*sandbox).is_ok());
  ASSERT_TRUE(ppsm.pause(*sandbox).is_ok());
  EXPECT_FALSE(sandbox->coalesce().valid);  // coalescing off
  vmm::ResumeBreakdown breakdown;
  ASSERT_TRUE(ppsm.resume(*sandbox, &breakdown).is_ok());
  EXPECT_EQ(topo.queue(3).size(), 4u);
  EXPECT_TRUE(topo.queue(3).is_sorted());
  ASSERT_TRUE(ppsm.destroy(*sandbox).is_ok());
}

TEST_F(HorseResumeTest, CoalescingOnlyFeatureSet) {
  sched::CpuTopology topo(4);
  HorseResumeEngine coal(topo, vmm::VmmProfile::firecracker(), HorseConfig{},
                         HorseFeatures::coalescing_only());
  auto sandbox = make_sandbox(4, true);
  ASSERT_TRUE(coal.start(*sandbox).is_ok());
  ASSERT_TRUE(coal.pause(*sandbox).is_ok());
  EXPECT_TRUE(sandbox->coalesce().valid);
  EXPECT_EQ(coal.ull_manager().index_of(sandbox->id()), nullptr);  // no 𝒫²𝒮ℳ
  ASSERT_TRUE(coal.resume(*sandbox).is_ok());
  EXPECT_EQ(topo.queue(3).size(), 4u);
  EXPECT_TRUE(topo.queue(3).is_sorted());
  ASSERT_TRUE(coal.destroy(*sandbox).is_ok());
}

TEST_F(HorseResumeTest, ParallelMergeModeProducesSameResult) {
  sched::CpuTopology topo(4);
  HorseConfig config;
  config.merge_mode = MergeMode::kParallel;
  config.crew_size = 2;
  HorseResumeEngine parallel(topo, vmm::VmmProfile::firecracker(), config);
  auto sandbox = make_sandbox(8, true);
  ASSERT_TRUE(parallel.start(*sandbox).is_ok());
  parallel.arm_crew();
  for (int cycle = 0; cycle < 10; ++cycle) {
    ASSERT_TRUE(parallel.pause(*sandbox).is_ok());
    ASSERT_TRUE(parallel.resume(*sandbox).is_ok());
    ASSERT_EQ(topo.queue(3).size(), 8u);
    ASSERT_TRUE(topo.queue(3).is_sorted());
  }
  parallel.disarm_crew();
  ASSERT_TRUE(parallel.destroy(*sandbox).is_ok());
}

TEST_F(HorseResumeTest, BreakdownHasMergeAndLoadSteps) {
  auto sandbox = make_sandbox(16, true);
  ASSERT_TRUE(engine_.start(*sandbox).is_ok());
  ASSERT_TRUE(engine_.pause(*sandbox).is_ok());
  vmm::ResumeBreakdown breakdown;
  ASSERT_TRUE(engine_.resume(*sandbox, &breakdown).is_ok());
  EXPECT_GT(breakdown.merge, 0);
  EXPECT_GE(breakdown.load_update, 0);
  EXPECT_GT(breakdown.total(), 0);
  ASSERT_TRUE(engine_.destroy(*sandbox).is_ok());
}

}  // namespace
}  // namespace horse::core
