#include "core/merge_crew.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sched/run_queue.hpp"
#include "sched/vcpu.hpp"
#include "util/rng.hpp"

namespace horse::core {
namespace {

struct Chain {
  std::vector<std::unique_ptr<sched::Vcpu>> storage;
  util::ListHook* head = nullptr;
  util::ListHook* tail = nullptr;
};

/// Build a detached chain of vCPUs with the given credits.
Chain make_chain(std::initializer_list<sched::Credit> credits) {
  Chain chain;
  util::ListHook* prev = nullptr;
  for (const sched::Credit credit : credits) {
    auto vcpu = std::make_unique<sched::Vcpu>();
    vcpu->credit = credit;
    if (prev != nullptr) {
      prev->next = &vcpu->hook;
      vcpu->hook.prev = prev;
    } else {
      chain.head = &vcpu->hook;
    }
    prev = &vcpu->hook;
    chain.storage.push_back(std::move(vcpu));
  }
  chain.tail = prev;
  return chain;
}

std::vector<sched::Credit> credits_of(sched::RunQueue& queue) {
  std::vector<sched::Credit> out;
  for (const sched::Vcpu& vcpu : queue.list()) {
    out.push_back(vcpu.credit);
  }
  return out;
}

TEST(MergeCrewTest, ExecuteSpliceLinksChain) {
  sched::RunQueue queue(0);
  auto anchor_vcpu = std::make_unique<sched::Vcpu>();
  anchor_vcpu->credit = 10;
  {
    util::LockGuard guard(queue.lock());
    queue.insert_sorted(*anchor_vcpu);
  }
  Chain chain = make_chain({11, 12});
  execute_splice(SpliceTask{&anchor_vcpu->hook, chain.head, chain.tail});
  queue.list().add_size(2);
  EXPECT_EQ(credits_of(queue), (std::vector<sched::Credit>{10, 11, 12}));
  queue.list().clear();
}

TEST(MergeCrewTest, SequentialExecutorRunsAllTasks) {
  sched::RunQueue queue(0);
  Chain chain = make_chain({1, 2});
  SequentialMergeExecutor executor;
  std::vector<SpliceTask> tasks{{queue.list().sentinel(), chain.head, chain.tail}};
  executor.execute(tasks);
  queue.list().add_size(2);
  EXPECT_EQ(credits_of(queue), (std::vector<sched::Credit>{1, 2}));
  queue.list().clear();
}

TEST(MergeCrewTest, SequentialExecutorEmptyTasksIsNoop) {
  SequentialMergeExecutor executor;
  executor.execute({});  // must not crash
}

TEST(MergeCrewTest, ParallelCrewExecutesWhileDisarmed) {
  ParallelMergeCrew crew(2);
  sched::RunQueue queue(0);
  Chain chain = make_chain({5});
  std::vector<SpliceTask> tasks{{queue.list().sentinel(), chain.head, chain.tail}};
  crew.execute(tasks);  // arms temporarily
  queue.list().add_size(1);
  EXPECT_EQ(credits_of(queue), (std::vector<sched::Credit>{5}));
  EXPECT_FALSE(crew.armed());
  queue.list().clear();
}

TEST(MergeCrewTest, ParallelCrewArmDisarm) {
  ParallelMergeCrew crew(2);
  EXPECT_FALSE(crew.armed());
  crew.arm();
  EXPECT_TRUE(crew.armed());
  crew.disarm();
  EXPECT_FALSE(crew.armed());
}

TEST(MergeCrewTest, ParallelCrewHandlesMoreTasksThanWorkers) {
  ParallelMergeCrew crew(2);
  sched::RunQueue queue(0);

  // Build B = {10, 20, 30, 40} and four single-element runs hitting
  // every gap — more tasks than workers forces chunking.
  std::vector<std::unique_ptr<sched::Vcpu>> b_storage;
  for (const sched::Credit credit : {10, 20, 30, 40}) {
    auto vcpu = std::make_unique<sched::Vcpu>();
    vcpu->credit = credit;
    util::LockGuard guard(queue.lock());
    queue.insert_sorted(*vcpu);
    b_storage.push_back(std::move(vcpu));
  }
  Chain c1 = make_chain({15});
  Chain c2 = make_chain({25});
  Chain c3 = make_chain({35});
  Chain c4 = make_chain({45});
  std::vector<SpliceTask> tasks{
      {&b_storage[0]->hook, c1.head, c1.tail},
      {&b_storage[1]->hook, c2.head, c2.tail},
      {&b_storage[2]->hook, c3.head, c3.tail},
      {&b_storage[3]->hook, c4.head, c4.tail},
  };
  crew.arm();
  crew.execute(tasks);
  crew.disarm();
  queue.list().add_size(4);
  EXPECT_EQ(credits_of(queue),
            (std::vector<sched::Credit>{10, 15, 20, 25, 30, 35, 40, 45}));
  EXPECT_TRUE(queue.is_sorted());
  queue.list().clear();
}

TEST(MergeCrewTest, ParallelCrewRepeatedBursts) {
  ParallelMergeCrew crew(3);
  crew.arm();
  for (int round = 0; round < 100; ++round) {
    sched::RunQueue queue(0);
    Chain chain = make_chain({1, 2, 3});
    std::vector<SpliceTask> tasks{
        {queue.list().sentinel(), chain.head, chain.tail}};
    crew.execute(tasks);
    queue.list().add_size(3);
    ASSERT_EQ(queue.size(), 3u) << "round " << round;
    ASSERT_TRUE(queue.is_sorted());
    queue.list().clear();
  }
  crew.disarm();
}

TEST(MergeCrewTest, ZeroWorkersClampsToOne) {
  ParallelMergeCrew crew(0);
  EXPECT_EQ(crew.size(), 1u);
}

TEST(MergeCrewTest, DestructionWhileArmedIsClean) {
  auto crew = std::make_unique<ParallelMergeCrew>(2);
  crew->arm();
  crew.reset();  // must join without deadlock
}

}  // namespace
}  // namespace horse::core
