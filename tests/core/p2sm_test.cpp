#include "core/p2sm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace horse::core {
namespace {

/// Test fixture owning vCPU storage plus one source list A and one target
/// run queue B.
class P2smTest : public ::testing::Test {
 protected:
  sched::Vcpu& make_vcpu(sched::Credit credit) {
    auto vcpu = std::make_unique<sched::Vcpu>();
    vcpu->id = static_cast<sched::VcpuId>(storage_.size());
    vcpu->credit = credit;
    storage_.push_back(std::move(vcpu));
    return *storage_.back();
  }

  /// Append to A in sorted order (A is maintained sorted by its owner).
  void add_to_a(std::initializer_list<sched::Credit> credits) {
    for (const sched::Credit credit : credits) {
      sched::Vcpu& vcpu = make_vcpu(credit);
      auto it = a_.begin();
      while (it != a_.end() && it->credit <= vcpu.credit) {
        ++it;
      }
      a_.insert(it, vcpu);
    }
  }

  void add_to_b(std::initializer_list<sched::Credit> credits) {
    for (const sched::Credit credit : credits) {
      util::LockGuard guard(b_.lock());
      b_.insert_sorted(make_vcpu(credit));
    }
  }

  std::vector<sched::Credit> b_credits() {
    std::vector<sched::Credit> out;
    for (const sched::Vcpu& vcpu : b_.list()) {
      out.push_back(vcpu.credit);
    }
    return out;
  }

  void expect_merged(std::vector<sched::Credit> expected) {
    EXPECT_EQ(b_credits(), expected);
    EXPECT_TRUE(b_.is_sorted());
    EXPECT_EQ(a_.size(), 0u);
  }

  std::vector<std::unique_ptr<sched::Vcpu>> storage_;
  sched::VcpuList a_;
  sched::RunQueue b_{0};
  P2smIndex index_;
  SequentialMergeExecutor executor_;
};

TEST_F(P2smTest, RebuildPartitionsIntoRuns) {
  add_to_b({10, 20, 30});
  add_to_a({5, 15, 16, 35});
  index_.rebuild(a_, b_);
  ASSERT_EQ(index_.run_count(), 3u);
  const auto& runs = index_.runs();
  // 5 -> before head; 15,16 -> after B[0]=10; 35 -> after B[2]=30.
  ASSERT_TRUE(runs.contains(P2smIndex::kBeforeHead));
  EXPECT_EQ(runs.at(P2smIndex::kBeforeHead).count, 1u);
  ASSERT_TRUE(runs.contains(0));
  EXPECT_EQ(runs.at(0).count, 2u);
  ASSERT_TRUE(runs.contains(2));
  EXPECT_EQ(runs.at(2).count, 1u);
  EXPECT_EQ(index_.array_b_size(), 3u);
}

TEST_F(P2smTest, MergeInterleaved) {
  add_to_b({10, 20, 30});
  add_to_a({5, 15, 16, 35});
  index_.rebuild(a_, b_);
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  expect_merged({5, 10, 15, 16, 20, 30, 35});
}

TEST_F(P2smTest, MergeAllBeforeB) {
  add_to_b({100, 200});
  add_to_a({1, 2, 3});
  index_.rebuild(a_, b_);
  EXPECT_EQ(index_.run_count(), 1u);
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  expect_merged({1, 2, 3, 100, 200});
}

TEST_F(P2smTest, MergeAllAfterB) {
  add_to_b({1, 2});
  add_to_a({10, 20});
  index_.rebuild(a_, b_);
  EXPECT_EQ(index_.run_count(), 1u);
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  expect_merged({1, 2, 10, 20});
}

TEST_F(P2smTest, MergeIntoEmptyB) {
  add_to_a({3, 1, 2});
  index_.rebuild(a_, b_);
  EXPECT_EQ(index_.run_count(), 1u);
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  expect_merged({1, 2, 3});
}

TEST_F(P2smTest, MergeSingleElement) {
  add_to_b({10, 30});
  add_to_a({20});
  index_.rebuild(a_, b_);
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  expect_merged({10, 20, 30});
}

TEST_F(P2smTest, TiesGoAfterEqualBElements) {
  add_to_b({10, 20});
  add_to_a({10, 20});
  index_.rebuild(a_, b_);
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  // Both sorted; the A copies land after the equal B originals (insert
  // semantics "<=" in both the index and insert_sorted).
  expect_merged({10, 10, 20, 20});
}

TEST_F(P2smTest, MergeEveryGapOfB) {
  add_to_b({10, 20, 30, 40});
  add_to_a({5, 15, 25, 35, 45});
  index_.rebuild(a_, b_);
  EXPECT_EQ(index_.run_count(), 5u);  // one run per gap incl. head/tail
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  expect_merged({5, 10, 15, 20, 25, 30, 35, 40, 45});
}

TEST_F(P2smTest, MergeEmptyAFails) {
  add_to_b({1});
  index_.rebuild(a_, b_);
  EXPECT_EQ(index_.merge(a_, b_, executor_).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(P2smTest, StaleIndexRefusesMerge) {
  add_to_b({10});
  add_to_a({5});
  index_.rebuild(a_, b_);
  // Mutate B after the rebuild: the index must refuse.
  {
    util::LockGuard guard(b_.lock());
    b_.insert_sorted(make_vcpu(7));
  }
  EXPECT_FALSE(index_.fresh(b_));
  EXPECT_EQ(index_.merge(a_, b_, executor_).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(P2smTest, FreshAfterRebuild) {
  add_to_b({10});
  add_to_a({5});
  index_.rebuild(a_, b_);
  EXPECT_TRUE(index_.fresh(b_));
  EXPECT_TRUE(index_.built());
  index_.invalidate();
  EXPECT_FALSE(index_.built());
  EXPECT_EQ(index_.run_count(), 0u);
}

TEST_F(P2smTest, MergeConsumesIndex) {
  add_to_b({10});
  add_to_a({5});
  index_.rebuild(a_, b_);
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  EXPECT_FALSE(index_.built());
  EXPECT_EQ(index_.stats().merges, 1u);
}

TEST_F(P2smTest, MergeBumpsBVersion) {
  add_to_b({10});
  add_to_a({5});
  index_.rebuild(a_, b_);
  const auto version = b_.version();
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  EXPECT_GT(b_.version(), version);
}

TEST_F(P2smTest, InsertIntoAExtendsExistingRun) {
  add_to_b({10, 20});
  add_to_a({15});
  index_.rebuild(a_, b_);
  sched::Vcpu& extra = make_vcpu(16);
  ASSERT_TRUE(index_.insert_into_a(a_, extra, b_).is_ok());
  EXPECT_EQ(a_.size(), 2u);
  EXPECT_EQ(index_.runs().at(0).count, 2u);
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  expect_merged({10, 15, 16, 20});
}

TEST_F(P2smTest, InsertIntoACreatesNewRunInOrder) {
  add_to_b({10, 20});
  add_to_a({15});
  index_.rebuild(a_, b_);
  sched::Vcpu& before = make_vcpu(5);   // new run before head
  sched::Vcpu& after = make_vcpu(25);   // new run after B[1]
  ASSERT_TRUE(index_.insert_into_a(a_, before, b_).is_ok());
  ASSERT_TRUE(index_.insert_into_a(a_, after, b_).is_ok());
  EXPECT_EQ(index_.run_count(), 3u);
  // A itself must remain sorted: 5, 15, 25.
  std::vector<sched::Credit> a_credits;
  for (const sched::Vcpu& vcpu : a_) {
    a_credits.push_back(vcpu.credit);
  }
  EXPECT_EQ(a_credits, (std::vector<sched::Credit>{5, 15, 25}));
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  expect_merged({5, 10, 15, 20, 25});
}

TEST_F(P2smTest, InsertIntoAAtRunHead) {
  add_to_b({10, 20});
  add_to_a({16});
  index_.rebuild(a_, b_);
  sched::Vcpu& head = make_vcpu(12);  // same run (anchor 0), before 16
  ASSERT_TRUE(index_.insert_into_a(a_, head, b_).is_ok());
  EXPECT_EQ(index_.runs().at(0).head, &head.hook);
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  expect_merged({10, 12, 16, 20});
}

TEST_F(P2smTest, InsertIntoAStaleIndexFails) {
  add_to_b({10});
  add_to_a({5});
  index_.rebuild(a_, b_);
  {
    util::LockGuard guard(b_.lock());
    b_.insert_sorted(make_vcpu(1));
  }
  sched::Vcpu& vcpu = make_vcpu(2);
  EXPECT_EQ(index_.insert_into_a(a_, vcpu, b_).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(P2smTest, RemoveFromAMiddleOfRun) {
  add_to_b({10});
  add_to_a({11, 12, 13});
  index_.rebuild(a_, b_);
  sched::Vcpu* middle = nullptr;
  for (sched::Vcpu& vcpu : a_) {
    if (vcpu.credit == 12) {
      middle = &vcpu;
    }
  }
  ASSERT_NE(middle, nullptr);
  ASSERT_TRUE(index_.remove_from_a(a_, *middle).is_ok());
  EXPECT_EQ(a_.size(), 2u);
  EXPECT_EQ(index_.runs().at(0).count, 2u);
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  expect_merged({10, 11, 13});
}

TEST_F(P2smTest, RemoveFromAWholeRunErasesKey) {
  add_to_b({10, 20});
  add_to_a({15});
  index_.rebuild(a_, b_);
  sched::Vcpu& only = a_.front();
  ASSERT_TRUE(index_.remove_from_a(a_, only).is_ok());
  EXPECT_EQ(index_.run_count(), 0u);
  EXPECT_EQ(a_.size(), 0u);
}

TEST_F(P2smTest, RemoveHeadAndTailOfRun) {
  add_to_b({10});
  add_to_a({11, 12, 13});
  index_.rebuild(a_, b_);
  sched::Vcpu& head = a_.front();
  ASSERT_TRUE(index_.remove_from_a(a_, head).is_ok());
  EXPECT_EQ(index_.runs().at(0).count, 2u);
  sched::Vcpu& tail = a_.back();
  ASSERT_TRUE(index_.remove_from_a(a_, tail).is_ok());
  EXPECT_EQ(index_.runs().at(0).count, 1u);
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  expect_merged({10, 12});
}

TEST_F(P2smTest, RemoveUnknownVcpuReportsNotFound) {
  add_to_b({10});
  add_to_a({15});
  index_.rebuild(a_, b_);
  sched::Vcpu stranger;
  EXPECT_EQ(index_.remove_from_a(a_, stranger).code(),
            util::StatusCode::kNotFound);
}

TEST_F(P2smTest, StatsAccumulate) {
  add_to_b({10});
  add_to_a({5});
  index_.rebuild(a_, b_);
  sched::Vcpu& vcpu = make_vcpu(6);
  ASSERT_TRUE(index_.insert_into_a(a_, vcpu, b_).is_ok());
  ASSERT_TRUE(index_.remove_from_a(a_, vcpu).is_ok());
  EXPECT_EQ(index_.stats().rebuilds, 1u);
  EXPECT_EQ(index_.stats().incremental_inserts, 1u);
  EXPECT_EQ(index_.stats().incremental_removes, 1u);
}

TEST_F(P2smTest, MemoryFootprintTracksStructures) {
  EXPECT_EQ(index_.memory_bytes(), 0u);
  add_to_b({1, 2, 3, 4, 5});
  add_to_a({10});
  index_.rebuild(a_, b_);
  const std::size_t bytes = index_.memory_bytes();
  EXPECT_GT(bytes, 0u);
  // The B-snapshot arena pre-reserves kJournalCapacity slack slots so
  // steady-state repair never allocates: 5 entries round up to a 128-slot
  // arena (2 KiB) plus the one-run table — comfortably under 4 KiB.
  EXPECT_LT(bytes, 4096u);
}

TEST_F(P2smTest, RandomisedMergeMatchesStdMerge) {
  util::Xoshiro256 rng(77);
  for (int round = 0; round < 50; ++round) {
    sched::VcpuList a;
    sched::RunQueue b(0);
    std::vector<std::unique_ptr<sched::Vcpu>> local;
    std::vector<sched::Credit> expected;

    const auto b_size = rng.bounded(40);
    for (std::uint64_t i = 0; i < b_size; ++i) {
      auto vcpu = std::make_unique<sched::Vcpu>();
      vcpu->credit = static_cast<sched::Credit>(rng.bounded(100));
      expected.push_back(vcpu->credit);
      util::LockGuard guard(b.lock());
      b.insert_sorted(*vcpu);
      local.push_back(std::move(vcpu));
    }
    const auto a_size = rng.bounded(40) + 1;
    std::vector<sched::Credit> a_credits;
    for (std::uint64_t i = 0; i < a_size; ++i) {
      a_credits.push_back(static_cast<sched::Credit>(rng.bounded(100)));
    }
    std::sort(a_credits.begin(), a_credits.end());
    for (const sched::Credit credit : a_credits) {
      auto vcpu = std::make_unique<sched::Vcpu>();
      vcpu->credit = credit;
      expected.push_back(credit);
      a.push_back(*vcpu);
      local.push_back(std::move(vcpu));
    }
    std::sort(expected.begin(), expected.end());

    P2smIndex index;
    SequentialMergeExecutor executor;
    index.rebuild(a, b);
    ASSERT_TRUE(index.merge(a, b, executor).is_ok()) << "round " << round;

    std::vector<sched::Credit> actual;
    for (const sched::Vcpu& vcpu : b.list()) {
      actual.push_back(vcpu.credit);
    }
    ASSERT_EQ(actual, expected) << "round " << round;
    ASSERT_EQ(b.size(), expected.size());
    b.list().clear();  // unlink before vcpu storage is freed
  }
}

// ---------------------------------------------------------------------------
// Delta repair: replay B's mutation journal instead of rebuilding.
// ---------------------------------------------------------------------------

TEST_F(P2smTest, RepairOnFreshIndexIsNoOp) {
  add_to_b({10, 20});
  add_to_a({15});
  index_.rebuild(a_, b_);
  ASSERT_TRUE(index_.repair(a_, b_).is_ok());
  EXPECT_EQ(index_.stats().repairs, 0u);
  EXPECT_EQ(index_.stats().repair_fallbacks, 0u);
  EXPECT_TRUE(index_.fresh(b_));
}

TEST_F(P2smTest, RepairOnUnbuiltIndexDeclines) {
  add_to_b({10});
  const util::Status status = index_.repair(a_, b_);
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_FALSE(index_.built());
}

TEST_F(P2smTest, RepairAfterInsertBringsIndexFresh) {
  add_to_b({10, 30});
  add_to_a({5, 25, 35});
  index_.rebuild(a_, b_);
  // Foreign insert into B at position 1 (between 10 and 30).
  {
    util::LockGuard guard(b_.lock());
    b_.insert_sorted(make_vcpu(20));
  }
  ASSERT_FALSE(index_.fresh(b_));
  ASSERT_TRUE(index_.repair(a_, b_).is_ok());
  EXPECT_TRUE(index_.fresh(b_));
  EXPECT_EQ(index_.array_b_size(), 3u);
  EXPECT_EQ(index_.stats().repairs, 1u);
  EXPECT_EQ(index_.stats().repaired_deltas, 1u);
  EXPECT_EQ(index_.stats().rebuilds, 1u);
  EXPECT_TRUE(index_.audit(a_, b_).is_ok());
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  expect_merged({5, 10, 20, 25, 30, 35});
}

TEST_F(P2smTest, RepairInsertReanchorsWholeRun) {
  add_to_b({10, 30});
  add_to_a({15, 16, 35});
  index_.rebuild(a_, b_);
  ASSERT_TRUE(index_.runs().contains(0));
  ASSERT_EQ(index_.runs().at(0).count, 2u);
  // Insert 12 at position 1: both 15 and 16 now belong after it, so the
  // whole run re-anchors from 0 to 1; the tail run shifts from 1 to 2.
  {
    util::LockGuard guard(b_.lock());
    b_.insert_sorted(make_vcpu(12));
  }
  ASSERT_TRUE(index_.repair(a_, b_).is_ok());
  const auto runs = index_.runs();
  ASSERT_TRUE(runs.contains(1));
  EXPECT_EQ(runs.at(1).count, 2u);
  ASSERT_TRUE(runs.contains(2));
  EXPECT_EQ(runs.at(2).count, 1u);
  EXPECT_TRUE(index_.audit(a_, b_).is_ok());
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  expect_merged({10, 12, 15, 16, 30, 35});
}

TEST_F(P2smTest, RepairInsertSplitsRunAtInsertionPoint) {
  add_to_b({10, 30});
  add_to_a({12, 20});
  index_.rebuild(a_, b_);
  ASSERT_EQ(index_.run_count(), 1u);
  ASSERT_EQ(index_.runs().at(0).count, 2u);
  // Insert 15 at position 1: it lands in the middle of the {12, 20} run —
  // 12 stays anchored at B[0]=10, 20 re-anchors after the new B[1]=15.
  {
    util::LockGuard guard(b_.lock());
    b_.insert_sorted(make_vcpu(15));
  }
  ASSERT_TRUE(index_.repair(a_, b_).is_ok());
  const auto runs = index_.runs();
  ASSERT_EQ(runs.size(), 2u);
  ASSERT_TRUE(runs.contains(0));
  EXPECT_EQ(runs.at(0).count, 1u);
  ASSERT_TRUE(runs.contains(1));
  EXPECT_EQ(runs.at(1).count, 1u);
  EXPECT_TRUE(index_.audit(a_, b_).is_ok());
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  expect_merged({10, 12, 15, 20, 30});
}

TEST_F(P2smTest, RepairAfterRemoveMergesAdjacentRuns) {
  add_to_b({10, 20, 30});
  add_to_a({15, 25});
  sched::Vcpu& middle = *storage_[1];  // the B vcpu with credit 20
  ASSERT_EQ(middle.credit, 20);
  index_.rebuild(a_, b_);
  ASSERT_EQ(index_.run_count(), 2u);
  {
    util::LockGuard guard(b_.lock());
    b_.remove(middle);
  }
  ASSERT_TRUE(index_.repair(a_, b_).is_ok());
  // {15} anchored after B[0] and {25} anchored after removed B[1] fuse
  // into one run {15, 25} anchored after B[0]=10.
  const auto runs = index_.runs();
  ASSERT_EQ(runs.size(), 1u);
  ASSERT_TRUE(runs.contains(0));
  EXPECT_EQ(runs.at(0).count, 2u);
  EXPECT_EQ(index_.array_b_size(), 2u);
  EXPECT_TRUE(index_.audit(a_, b_).is_ok());
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  expect_merged({10, 15, 25, 30});
}

TEST_F(P2smTest, RepairAfterPopFrontReanchorsToBeforeHead) {
  add_to_b({10, 20});
  add_to_a({5, 15});
  index_.rebuild(a_, b_);
  {
    util::LockGuard guard(b_.lock());
    ASSERT_NE(b_.pop_front(), nullptr);  // removes 10
  }
  ASSERT_TRUE(index_.repair(a_, b_).is_ok());
  // {15} was anchored after the popped head; it re-anchors before-head and
  // fuses with the {5} run.
  const auto runs = index_.runs();
  ASSERT_EQ(runs.size(), 1u);
  ASSERT_TRUE(runs.contains(P2smIndex::kBeforeHead));
  EXPECT_EQ(runs.at(P2smIndex::kBeforeHead).count, 2u);
  EXPECT_TRUE(index_.audit(a_, b_).is_ok());
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  expect_merged({5, 15, 20});
}

TEST_F(P2smTest, RepairReplaysMultipleDeltasInOrder) {
  add_to_b({10, 40});
  add_to_a({5, 30});
  index_.rebuild(a_, b_);
  sched::Vcpu& twenty = make_vcpu(20);
  {
    util::LockGuard guard(b_.lock());
    b_.insert_sorted(twenty);         // v+1
    b_.insert_sorted(make_vcpu(35));  // v+2
    b_.remove(twenty);                // v+3
  }
  ASSERT_TRUE(index_.repair(a_, b_).is_ok());
  EXPECT_EQ(index_.stats().repairs, 1u);
  EXPECT_EQ(index_.stats().repaired_deltas, 3u);
  EXPECT_EQ(index_.array_b_size(), 3u);
  EXPECT_TRUE(index_.audit(a_, b_).is_ok());
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  expect_merged({5, 10, 30, 35, 40});
}

TEST_F(P2smTest, RepairDeclinesOnJournalOverflow) {
  add_to_b({10});
  add_to_a({5});
  index_.rebuild(a_, b_);
  // More mutations than the journal ring holds: the oldest entries are
  // overwritten, so the gap is uncoverable.
  sched::Vcpu& churn = make_vcpu(50);
  {
    util::LockGuard guard(b_.lock());
    for (std::size_t i = 0; i <= sched::RunQueue::kJournalCapacity / 2; ++i) {
      b_.insert_sorted(churn);
      b_.remove(churn);
    }
  }
  const util::Status status = index_.repair(a_, b_);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(index_.stats().repair_fallbacks, 1u);
  EXPECT_EQ(index_.stats().repairs, 0u);
  // The documented fallback cures it.
  index_.rebuild(a_, b_);
  EXPECT_TRUE(index_.fresh(b_));
  EXPECT_TRUE(index_.audit(a_, b_).is_ok());
}

TEST_F(P2smTest, RepairDeclinesOnUnjournalledVersionBump) {
  add_to_b({10});
  add_to_a({5});
  index_.rebuild(a_, b_);
  b_.bump_version();  // foreign mutation: no journal entry
  const util::Status status = index_.repair(a_, b_);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(index_.stats().repair_fallbacks, 1u);
  EXPECT_FALSE(index_.built());  // repair declined mid-flight; not trusted
  index_.rebuild(a_, b_);
  EXPECT_TRUE(index_.fresh(b_));
}

TEST_F(P2smTest, RepairDeclinesOnContradictoryDelta) {
  add_to_b({10, 20});
  add_to_a({5});
  index_.rebuild(a_, b_);
  // Forge a journal entry whose position contradicts the snapshot.
  sched::Vcpu& bogus = make_vcpu(15);
  b_.stage_delta(0, sched::QueueDelta::Kind::kInsert, /*position=*/99,
                 bogus.credit, &bogus.hook);
  b_.publish_staged_deltas(1);
  const util::Status status = index_.repair(a_, b_);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(index_.stats().repair_fallbacks, 1u);
}

TEST_F(P2smTest, MergeJournalsSplicesSoCoResidentIndexRepairs) {
  // Two paused sandboxes indexed against the same queue: the first one's
  // merge must leave a journal the second can repair from, instead of
  // forcing an O(|A|+|B|) rebuild (the rebuild storm this PR kills).
  add_to_b({10, 40});
  add_to_a({5, 20, 50});

  std::vector<std::unique_ptr<sched::Vcpu>> other_storage;
  sched::VcpuList other_a;
  for (const sched::Credit credit : {15, 45}) {
    auto vcpu = std::make_unique<sched::Vcpu>();
    vcpu->credit = credit;
    other_a.push_back(*vcpu);
    other_storage.push_back(std::move(vcpu));
  }
  P2smIndex other_index;
  other_index.rebuild(other_a, b_);
  index_.rebuild(a_, b_);

  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  ASSERT_FALSE(other_index.fresh(b_));
  ASSERT_TRUE(other_index.repair(other_a, b_).is_ok());
  EXPECT_TRUE(other_index.fresh(b_));
  EXPECT_EQ(other_index.stats().repairs, 1u);
  EXPECT_EQ(other_index.stats().repaired_deltas, 3u);  // one per spliced vCPU
  EXPECT_TRUE(other_index.audit(other_a, b_).is_ok());

  ASSERT_TRUE(other_index.merge(other_a, b_, executor_).is_ok());
  EXPECT_EQ(b_credits(),
            (std::vector<sched::Credit>{5, 10, 15, 20, 40, 45, 50}));
  EXPECT_TRUE(b_.is_sorted());
  // other_storage dies with this scope while its vCPUs sit in the fixture
  // queue; unlink everything first.
  b_.list().clear();
}

}  // namespace
}  // namespace horse::core
