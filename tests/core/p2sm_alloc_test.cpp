// Steady-state allocation-freedom of the 𝒫²𝒮ℳ maintenance path.
//
// The flat run table recycles its capacity across rebuilds and the B
// snapshot lives in one reused SoA block with kJournalCapacity slack, so
// once an index has been through a warm-up rebuild at a given queue size,
// every further rebuild(), repair(), and merge() at stable sizes must
// touch the heap exactly zero times.
//
// This binary (and only this binary, plus the maintenance bench) compiles
// src/util/alloc_hook.cpp into its own sources, replacing the global
// operator new/delete with counting versions. A canary test proves the
// hook is live, so a zero reading means "no allocations", never "hook not
// installed". The binary is excluded from sanitizer presets: ASan/TSan
// interpose malloc and the counts would stop meaning one thing.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/p2sm.hpp"
#include "sched/run_queue.hpp"
#include "util/alloc_counter.hpp"

namespace horse::core {
namespace {

/// Allocations observed on this thread between start() and delta().
class AllocProbe {
 public:
  void start() noexcept {
    allocs_ = util::thread_alloc_count();
    frees_ = util::thread_free_count();
  }
  [[nodiscard]] std::uint64_t alloc_delta() const noexcept {
    return util::thread_alloc_count() - allocs_;
  }
  [[nodiscard]] std::uint64_t free_delta() const noexcept {
    return util::thread_free_count() - frees_;
  }

 private:
  std::uint64_t allocs_ = 0;
  std::uint64_t frees_ = 0;
};

TEST(P2smAllocHookTest, CountingHookIsLive) {
  AllocProbe probe;
  probe.start();
  // Direct calls to the allocation functions: a new-expression with a
  // matching delete may legally be elided by the optimizer, a call to
  // ::operator new may not.
  void* raw = ::operator new(64);
  const std::uint64_t after_new = probe.alloc_delta();
  ::operator delete(raw);
  EXPECT_GE(after_new, 1u) << "operator new replacement is not installed; "
                              "every other assertion here is meaningless";
  EXPECT_GE(probe.free_delta(), 1u);
}

class P2smAllocTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kBSize = 24;
  static constexpr std::size_t kASize = 8;

  void SetUp() override {
    storage_.reserve(kBSize + kASize + 4);
    for (std::size_t i = 0; i < kBSize; ++i) {
      sched::Vcpu& vcpu = make_vcpu(static_cast<sched::Credit>(10 * i));
      b_.insert_sorted(vcpu);
    }
    for (std::size_t i = 0; i < kASize; ++i) {
      sched::Vcpu& vcpu = make_vcpu(static_cast<sched::Credit>(25 * i + 3));
      a_vcpus_.push_back(&vcpu);
      a_.push_back(vcpu);  // ascending credits: already sorted
    }
  }

  sched::Vcpu& make_vcpu(sched::Credit credit) {
    auto vcpu = std::make_unique<sched::Vcpu>();
    vcpu->id = static_cast<sched::VcpuId>(storage_.size());
    vcpu->credit = credit;
    storage_.push_back(std::move(vcpu));
    return *storage_.back();
  }

  /// Unsplice every A vCPU back out of B into A (sorted), so another
  /// rebuild+merge cycle can run. Allocation-free by construction.
  void restore_a_from_b() {
    for (sched::Vcpu* vcpu : a_vcpus_) {
      b_.remove(*vcpu);
    }
    for (sched::Vcpu* vcpu : a_vcpus_) {
      auto it = a_.begin();
      while (it != a_.end() && it->credit <= vcpu->credit) {
        ++it;
      }
      a_.insert(it, *vcpu);
    }
  }

  std::vector<std::unique_ptr<sched::Vcpu>> storage_;
  std::vector<sched::Vcpu*> a_vcpus_;
  sched::VcpuList a_;
  sched::RunQueue b_{0};
  P2smIndex index_;
  SequentialMergeExecutor executor_;
  AllocProbe probe_;
};

TEST_F(P2smAllocTest, SteadyStateRebuildDoesNotAllocate) {
  index_.rebuild(a_, b_);  // warm-up: sizes the arena and the run table
  probe_.start();
  for (int i = 0; i < 100; ++i) {
    index_.rebuild(a_, b_);
  }
  const std::uint64_t allocs = probe_.alloc_delta();
  const std::uint64_t frees = probe_.free_delta();
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(frees, 0u);
  EXPECT_EQ(index_.stats().rebuilds, 101u);
}

TEST_F(P2smAllocTest, SteadyStateRepairDoesNotAllocate) {
  index_.rebuild(a_, b_);
  sched::Vcpu& churn = make_vcpu(15);
  // Warm up one insert-repair so the arena absorbs the +1 high-water mark.
  b_.insert_sorted(churn);
  ASSERT_TRUE(index_.repair(a_, b_).is_ok());
  b_.remove(churn);
  ASSERT_TRUE(index_.repair(a_, b_).is_ok());

  probe_.start();
  bool all_ok = true;
  for (int i = 0; i < 100; ++i) {
    b_.insert_sorted(churn);
    all_ok = all_ok && index_.repair(a_, b_).is_ok();
    b_.remove(churn);
    all_ok = all_ok && index_.repair(a_, b_).is_ok();
  }
  const std::uint64_t allocs = probe_.alloc_delta();
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(index_.stats().repairs, 202u);
  EXPECT_EQ(index_.stats().repair_fallbacks, 0u);
}

TEST_F(P2smAllocTest, SteadyStateMergeCycleDoesNotAllocate) {
  // Warm-up cycle: sizes the arena, the run table, and the task buffer.
  index_.rebuild(a_, b_);
  ASSERT_TRUE(index_.merge(a_, b_, executor_).is_ok());
  restore_a_from_b();

  probe_.start();
  bool all_ok = true;
  for (int i = 0; i < 50; ++i) {
    index_.rebuild(a_, b_);
    all_ok = all_ok && index_.merge(a_, b_, executor_).is_ok();
    restore_a_from_b();
  }
  const std::uint64_t allocs = probe_.alloc_delta();
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(allocs, 0u);
  EXPECT_TRUE(b_.is_sorted());
}

}  // namespace
}  // namespace horse::core
