#include "metrics/reporter.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace horse::metrics {
namespace {

TEST(ReporterTest, TableRendersHeadersAndRows) {
  TextTable table("Demo", {"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("== Demo =="), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(ReporterTest, TableRejectsEmptyHeaders) {
  EXPECT_THROW(TextTable("x", {}), std::invalid_argument);
}

TEST(ReporterTest, TableRejectsMismatchedRow) {
  TextTable table("x", {"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(ReporterTest, FormatDoublePrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.14159, 0), "3");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

TEST(ReporterTest, FormatNanosAutoScales) {
  EXPECT_EQ(format_nanos(150.0), "150.0 ns");
  EXPECT_EQ(format_nanos(1'500.0), "1.50 us");
  EXPECT_EQ(format_nanos(1'300'000.0), "1.30 ms");
  EXPECT_EQ(format_nanos(1.5e9), "1.50 s");
}

TEST(ReporterTest, FormatPercent) {
  EXPECT_EQ(format_percent(0.611, 1), "61.1%");
  EXPECT_EQ(format_percent(0.9999, 2), "99.99%");
}

TEST(ReporterTest, SeriesPrintsAllColumns) {
  std::ostringstream out;
  Series vanil{"vanil", {1, 2}, {10.5, 20.5}};
  Series horse{"horse", {1, 2}, {1.5, 1.5}};
  print_series(out, "Fig", "vcpus", {vanil, horse});
  const std::string text = out.str();
  EXPECT_NE(text.find("vanil"), std::string::npos);
  EXPECT_NE(text.find("horse"), std::string::npos);
  EXPECT_NE(text.find("20.50"), std::string::npos);
}

TEST(ReporterTest, SeriesEmptyIsGraceful) {
  std::ostringstream out;
  print_series(out, "Empty", "x", {});
  EXPECT_NE(out.str().find("(no series)"), std::string::npos);
}

}  // namespace
}  // namespace horse::metrics
