#include "metrics/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace horse::metrics {
namespace {

TEST(CsvTest, WritesHeaderAndRows) {
  CsvWriter csv({"vcpus", "vanil", "horse"});
  csv.add_row({"1", "561", "537"});
  csv.add_numeric_row({36.0, 6310.0, 556.0});
  std::ostringstream out;
  csv.write(out);
  EXPECT_EQ(out.str(),
            "vcpus,vanil,horse\n"
            "1,561,537\n"
            "36,6310,556\n");
}

TEST(CsvTest, RejectsEmptyHeadersAndBadRows) {
  EXPECT_THROW(CsvWriter({}), std::invalid_argument);
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"only-one"}), std::invalid_argument);
}

TEST(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, EscapedFieldsRoundTripInOutput) {
  CsvWriter csv({"name", "note"});
  csv.add_row({"fn,1", "said \"go\""});
  std::ostringstream out;
  csv.write(out);
  EXPECT_EQ(out.str(), "name,note\n\"fn,1\",\"said \"\"go\"\"\"\n");
}

TEST(CsvTest, WriteFileRoundTrip) {
  CsvWriter csv({"x", "y"});
  csv.add_row({"1", "2"});
  const std::string path = "/tmp/horse_csv_test.csv";
  ASSERT_TRUE(csv.write_file(path).is_ok());
  std::ifstream file(path);
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_EQ(content.str(), "x,y\n1,2\n");
  std::remove(path.c_str());
}

TEST(CsvTest, WriteFileBadPathFails) {
  CsvWriter csv({"x"});
  EXPECT_FALSE(csv.write_file("/no/such/dir/out.csv").is_ok());
}

TEST(CsvTest, SeriesConversion) {
  Series vanil{"vanil", {1, 2}, {100.0, 200.0}};
  Series horse{"horse", {1, 2}, {50.0, 50.0}};
  const auto csv = series_to_csv("vcpus", {vanil, horse});
  std::ostringstream out;
  csv.write(out);
  EXPECT_EQ(out.str(),
            "vcpus,vanil,horse\n"
            "1,100,50\n"
            "2,200,50\n");
}

TEST(CsvTest, EmptySeriesGivesHeaderOnly) {
  const auto csv = series_to_csv("x", {});
  std::ostringstream out;
  csv.write(out);
  EXPECT_EQ(out.str(), "x\n");
}

}  // namespace
}  // namespace horse::metrics
