#include "metrics/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace horse::metrics {
namespace {

TEST(StatsTest, EmptySummary) {
  SampleStats stats;
  const Summary summary = stats.summarize();
  EXPECT_EQ(summary.n, 0u);
  EXPECT_EQ(summary.mean, 0.0);
}

TEST(StatsTest, SingleSample) {
  SampleStats stats;
  stats.add(5.0);
  const Summary summary = stats.summarize();
  EXPECT_EQ(summary.n, 1u);
  EXPECT_DOUBLE_EQ(summary.mean, 5.0);
  EXPECT_DOUBLE_EQ(summary.stddev, 0.0);
  EXPECT_DOUBLE_EQ(summary.ci95_half, 0.0);
}

TEST(StatsTest, KnownMeanAndStddev) {
  SampleStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(v);
  }
  const Summary summary = stats.summarize();
  EXPECT_DOUBLE_EQ(summary.mean, 5.0);
  // Sample stddev with n-1: sqrt(32/7).
  EXPECT_NEAR(summary.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(summary.min, 2.0);
  EXPECT_EQ(summary.max, 9.0);
}

TEST(StatsTest, Ci95UsesStudentT) {
  SampleStats stats;
  for (int i = 0; i < 10; ++i) {
    stats.add(static_cast<double>(i));
  }
  const Summary summary = stats.summarize();
  const double expected =
      t_critical_95(10) * summary.stddev / std::sqrt(10.0);
  EXPECT_NEAR(summary.ci95_half, expected, 1e-12);
}

TEST(StatsTest, TCriticalTableValues) {
  EXPECT_DOUBLE_EQ(t_critical_95(2), 12.706);  // df = 1
  EXPECT_DOUBLE_EQ(t_critical_95(10), 2.262);  // df = 9, the paper's n=10
  EXPECT_DOUBLE_EQ(t_critical_95(31), 2.042);  // df = 30
  EXPECT_DOUBLE_EQ(t_critical_95(200), 1.96);  // normal regime
  EXPECT_DOUBLE_EQ(t_critical_95(1), 0.0);     // undefined, reported as 0
}

TEST(StatsTest, Ci95RelativeIsFractionOfMean) {
  SampleStats stats;
  stats.add(99.0);
  stats.add(101.0);
  const Summary summary = stats.summarize();
  EXPECT_NEAR(summary.ci95_relative(), summary.ci95_half / 100.0, 1e-12);
}

TEST(StatsTest, PercentileExactOrderStatistics) {
  SampleStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.add(static_cast<double>(i));
  }
  EXPECT_NEAR(stats.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(stats.percentile(100.0), 100.0, 1e-9);
  EXPECT_NEAR(stats.percentile(50.0), 50.5, 1e-9);
  EXPECT_NEAR(stats.percentile(99.0), 99.01, 1e-9);
}

TEST(StatsTest, PercentileUnsortedInput) {
  SampleStats stats;
  stats.add(30.0);
  stats.add(10.0);
  stats.add(20.0);
  EXPECT_NEAR(stats.percentile(50.0), 20.0, 1e-9);
}

TEST(StatsTest, PercentileEmptyReturnsZero) {
  SampleStats stats;
  EXPECT_EQ(stats.percentile(50.0), 0.0);
}

TEST(StatsTest, ClearEmpties) {
  SampleStats stats;
  stats.add(1.0);
  stats.clear();
  EXPECT_EQ(stats.size(), 0u);
}

}  // namespace
}  // namespace horse::metrics
