#include "metrics/histogram.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace horse::metrics {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.mean(), 0.0);
  EXPECT_EQ(histogram.quantile(0.5), 0);
  EXPECT_EQ(histogram.min(), 0);
  EXPECT_EQ(histogram.max(), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram histogram;
  histogram.record(150);
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_EQ(histogram.min(), 150);
  EXPECT_EQ(histogram.max(), 150);
  EXPECT_EQ(histogram.mean(), 150.0);
  EXPECT_EQ(histogram.p50(), 150);
  EXPECT_EQ(histogram.p99(), 150);
}

TEST(HistogramTest, TinyValuesAreExact) {
  // Group 0 is linear: values < 32 land in exact buckets.
  Histogram histogram;
  for (int v = 0; v < 32; ++v) {
    histogram.record(v);
  }
  EXPECT_EQ(histogram.quantile(0.0), 0);
  EXPECT_EQ(histogram.max(), 31);
}

TEST(HistogramTest, MeanIsExactRegardlessOfBuckets) {
  Histogram histogram;
  histogram.record(100);
  histogram.record(200);
  histogram.record(300);
  EXPECT_DOUBLE_EQ(histogram.mean(), 200.0);
}

TEST(HistogramTest, QuantileRelativeErrorBounded) {
  Histogram histogram;
  util::Xoshiro256 rng(3);
  std::vector<util::Nanos> values;
  for (int i = 0; i < 50'000; ++i) {
    const auto v = static_cast<util::Nanos>(rng.bounded(10'000'000)) + 1;
    values.push_back(v);
    histogram.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const auto exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const auto approx = histogram.quantile(q);
    const double rel_err =
        std::abs(static_cast<double>(approx - exact)) / static_cast<double>(exact);
    EXPECT_LT(rel_err, 0.05) << "q=" << q;
  }
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram histogram;
  histogram.record(-5);
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_EQ(histogram.min(), -5);  // extremes keep the raw value
}

TEST(HistogramTest, RecordNCountsBulk) {
  Histogram histogram;
  histogram.record_n(1000, 10);
  EXPECT_EQ(histogram.count(), 10u);
  EXPECT_DOUBLE_EQ(histogram.mean(), 1000.0);
}

TEST(HistogramTest, RecordNZeroIsNoop) {
  Histogram histogram;
  histogram.record_n(1000, 0);
  EXPECT_EQ(histogram.count(), 0u);
}

TEST(HistogramTest, HugeValuesDoNotOverflowBuckets) {
  Histogram histogram;
  histogram.record(std::numeric_limits<util::Nanos>::max() / 2);
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_GT(histogram.quantile(0.5), 0);
}

TEST(HistogramTest, ClearResets) {
  Histogram histogram;
  histogram.record(5);
  histogram.clear();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.mean(), 0.0);
}

TEST(HistogramTest, MergeCombinesCountsAndExtremes) {
  Histogram a;
  Histogram b;
  a.record(10);
  a.record(20);
  b.record(5);
  b.record(40);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 5);
  EXPECT_EQ(a.max(), 40);
  EXPECT_DOUBLE_EQ(a.mean(), 18.75);
}

TEST(HistogramTest, MergeEmptyIsNoop) {
  Histogram a;
  Histogram empty;
  a.record(10);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
}

TEST(HistogramTest, MergeIntoEmptyAdoptsExtremes) {
  Histogram a;
  Histogram b;
  b.record(7);
  a.merge(b);
  EXPECT_EQ(a.min(), 7);
  EXPECT_EQ(a.max(), 7);
}

TEST(HistogramTest, QuantileMonotonicInQ) {
  Histogram histogram;
  util::Xoshiro256 rng(9);
  for (int i = 0; i < 10'000; ++i) {
    histogram.record(static_cast<util::Nanos>(rng.bounded(1'000'000)));
  }
  util::Nanos prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const auto v = histogram.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace horse::metrics
