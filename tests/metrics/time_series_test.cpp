#include "metrics/time_series.hpp"

#include <gtest/gtest.h>

namespace horse::metrics {
namespace {

TEST(TimeSeriesTest, EmptySeries) {
  TimeSeries series;
  EXPECT_TRUE(series.empty());
  EXPECT_EQ(series.summarize().n, 0u);
  EXPECT_TRUE(series.resample(100).empty());
  EXPECT_EQ(series.time_weighted_mean(1000), 0.0);
}

TEST(TimeSeriesTest, RecordAndSummarize) {
  TimeSeries series;
  series.record(0, 10.0);
  series.record(100, 20.0);
  series.record(200, 30.0);
  const auto summary = series.summarize();
  EXPECT_EQ(summary.n, 3u);
  EXPECT_DOUBLE_EQ(summary.mean, 20.0);
  EXPECT_EQ(summary.min, 10.0);
  EXPECT_EQ(summary.max, 30.0);
}

TEST(TimeSeriesTest, WindowSummaryFilters) {
  TimeSeries series;
  for (int i = 0; i < 10; ++i) {
    series.record(i * 100, static_cast<double>(i));
  }
  const auto window = series.summarize_window(300, 600);
  EXPECT_EQ(window.n, 3u);  // samples at 300, 400, 500
  EXPECT_DOUBLE_EQ(window.mean, 4.0);
}

TEST(TimeSeriesTest, ResampleCarriesLastValueForward) {
  TimeSeries series;
  series.record(0, 1.0);
  series.record(250, 2.0);
  series.record(900, 3.0);
  const auto resampled = series.resample(300);
  // Grid: 0, 300, 600, 900.
  ASSERT_EQ(resampled.size(), 4u);
  EXPECT_DOUBLE_EQ(resampled[0].value, 1.0);
  EXPECT_DOUBLE_EQ(resampled[1].value, 2.0);  // 250-sample carried
  EXPECT_DOUBLE_EQ(resampled[2].value, 2.0);
  EXPECT_DOUBLE_EQ(resampled[3].value, 3.0);
}

TEST(TimeSeriesTest, ResampleBadIntervalIsEmpty) {
  TimeSeries series;
  series.record(0, 1.0);
  EXPECT_TRUE(series.resample(0).empty());
  EXPECT_TRUE(series.resample(-5).empty());
}

TEST(TimeSeriesTest, TimeWeightedMeanStepFunction) {
  TimeSeries series;
  series.record(0, 10.0);    // holds 0..100
  series.record(100, 30.0);  // holds 100..200
  EXPECT_DOUBLE_EQ(series.time_weighted_mean(200), 20.0);
  // Uneven hold times: 10 for 150 ns, 30 for 50 ns.
  EXPECT_DOUBLE_EQ(TimeSeries{}.time_weighted_mean(100), 0.0);
  TimeSeries uneven;
  uneven.record(0, 10.0);
  uneven.record(150, 30.0);
  EXPECT_DOUBLE_EQ(uneven.time_weighted_mean(200), 15.0);
}

TEST(TimeSeriesTest, UnsortedInputHandled) {
  TimeSeries series;
  series.record(200, 3.0);
  series.record(0, 1.0);
  series.record(100, 2.0);
  const auto resampled = series.resample(100);
  ASSERT_EQ(resampled.size(), 3u);
  EXPECT_DOUBLE_EQ(resampled[0].value, 1.0);
  EXPECT_DOUBLE_EQ(resampled[2].value, 3.0);
}

}  // namespace
}  // namespace horse::metrics
