// Shape assertions: the paper's *qualitative* claims as tests, with
// bounds generous enough to survive noisy shared hardware. These run on
// measured (not modelled) time, so they are the tripwire that the
// measured figures 2/3 would regress.
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "core/horse_resume.hpp"
#include "metrics/stats.hpp"
#include "support/sanitizers.hpp"
#include "vmm/resume_engine.hpp"

namespace horse {
namespace {

/// Median resume latency, with a couple of warmup rounds.
double median_resume(vmm::ResumeEngine& engine, std::uint32_t vcpus, bool ull,
                     int reps = 21) {
  vmm::SandboxConfig config;
  config.name = "shape";
  config.num_vcpus = vcpus;
  config.memory_mb = 1;
  config.ull = ull;
  vmm::Sandbox sandbox(30'000 + vcpus, config);
  (void)engine.start(sandbox);
  for (int i = 0; i < 3; ++i) {
    (void)engine.pause(sandbox);
    (void)engine.resume(sandbox);
  }
  metrics::SampleStats samples;
  for (int i = 0; i < reps; ++i) {
    (void)engine.pause(sandbox);
    vmm::ResumeBreakdown bd;
    (void)engine.resume(sandbox, &bd);
    samples.add(static_cast<double>(bd.total()));
  }
  (void)engine.destroy(sandbox);
  return samples.percentile(50);
}

TEST(ShapeAssertionsTest, VanillaResumeGrowsWithVcpus) {
  sched::CpuTopology topology(8);
  vmm::ResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  const double at_1 = median_resume(engine, 1, false);
  const double at_36 = median_resume(engine, 36, false);
  // Paper: linear growth; require at least 3x (measured here: ~11x).
  EXPECT_GT(at_36, 3.0 * at_1);
}

TEST(ShapeAssertionsTest, HorseResumeIsFlatAcrossVcpus) {
  // Sanitizer instrumentation charges every one of the 36 per-vCPU
  // state-byte writes a constant overhead, adding exactly the linear
  // term this test asserts does not exist — only meaningful
  // uninstrumented. (The growth/ratio tests above and below survive
  // instrumentation: it inflates both sides.)
  HORSE_SKIP_TIMING_UNDER_SANITIZERS();
  sched::CpuTopology topology(8);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  const double at_1 = median_resume(engine, 1, true);
  const double at_36 = median_resume(engine, 36, true);
  // Paper: O(1) resume. Allow 2.5x headroom for timer noise and the
  // per-vCPU state-byte writes; the measured ratio is ~1.05.
  EXPECT_LT(at_36, 2.5 * at_1);
}

TEST(ShapeAssertionsTest, HorseBeatsVanillaAtHighVcpuCounts) {
  sched::CpuTopology vanilla_topo(8);
  vmm::ResumeEngine vanilla(vanilla_topo, vmm::VmmProfile::firecracker());
  sched::CpuTopology horse_topo(8);
  core::HorseResumeEngine horse(horse_topo, vmm::VmmProfile::firecracker());
  const double vanilla_36 = median_resume(vanilla, 36, false);
  const double horse_36 = median_resume(horse, 36, true);
  // Paper band: up to 7.16x; require at least 2x here.
  EXPECT_GT(vanilla_36 / horse_36, 2.0);
}

TEST(ShapeAssertionsTest, ContestedStepsDominateVanillaAtScale) {
  sched::CpuTopology topology(8);
  vmm::ResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  vmm::SandboxConfig config;
  config.name = "shape";
  config.num_vcpus = 36;
  config.memory_mb = 1;
  vmm::Sandbox sandbox(1, config);
  (void)engine.start(sandbox);
  double best_fraction = 0.0;
  for (int i = 0; i < 15; ++i) {
    (void)engine.pause(sandbox);
    vmm::ResumeBreakdown bd;
    (void)engine.resume(sandbox, &bd);
    best_fraction = std::max(best_fraction, bd.contested_fraction());
  }
  // Paper: 87.5-93.1% at high vCPU counts; require > 75% at 36.
  EXPECT_GT(best_fraction, 0.75);
  (void)engine.destroy(sandbox);
}

TEST(ShapeAssertionsTest, XenFlavourShowsSameOrdering) {
  sched::CpuTopology vanilla_topo(8);
  vmm::ResumeEngine vanilla(vanilla_topo, vmm::VmmProfile::xen());
  sched::CpuTopology horse_topo(8);
  core::HorseResumeEngine horse(horse_topo, vmm::VmmProfile::xen());
  const double vanilla_36 = median_resume(vanilla, 36, false, 11);
  const double horse_36 = median_resume(horse, 36, true, 11);
  EXPECT_GT(vanilla_36 / horse_36, 2.0);
}

}  // namespace
}  // namespace horse
