// Cross-module integration: the full platform serving the paper's three
// uLL workloads and the thumbnail function, through all four start
// strategies, with trace-driven arrival sequences.
#include <gtest/gtest.h>

#include <memory>

#include "faas/colocation.hpp"
#include "faas/platform.hpp"
#include "sim/cost_model.hpp"
#include "trace/synthetic.hpp"
#include "workloads/array_filter.hpp"
#include "workloads/firewall.hpp"
#include "workloads/nat.hpp"
#include "workloads/thumbnail.hpp"

namespace horse {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  EndToEndTest() : platform_(config()) {
    firewall_ = add("firewall", std::make_shared<workloads::FirewallFunction>(256),
                    /*vcpus=*/1, /*ull=*/true);
    nat_ = add("nat", std::make_shared<workloads::NatFunction>(64), 1, true);
    filter_ = add("filter", std::make_shared<workloads::ArrayFilterFunction>(),
                  1, true);
    thumbnail_ = add("thumbnail",
                     std::make_shared<workloads::ThumbnailFunction>(64, 8), 2,
                     false);
  }

  static faas::PlatformConfig config() {
    faas::PlatformConfig config;
    config.num_cpus = 6;
    return config;
  }

  faas::FunctionId add(const std::string& name,
                       std::shared_ptr<workloads::Function> impl,
                       std::uint32_t vcpus, bool ull) {
    faas::FunctionSpec spec;
    spec.name = name;
    spec.implementation = std::move(impl);
    spec.sandbox.name = name + "-sb";
    spec.sandbox.num_vcpus = vcpus;
    spec.sandbox.memory_mb = 1;
    spec.sandbox.ull = ull;
    return *platform_.registry().add(std::move(spec));
  }

  static workloads::Request packet_request() {
    workloads::Request request;
    request.header = "src=10.0.0.1 dst=10.0.0.2 port=80 proto=tcp";
    return request;
  }

  faas::Platform platform_;
  faas::FunctionId firewall_ = 0, nat_ = 0, filter_ = 0, thumbnail_ = 0;
};

TEST_F(EndToEndTest, AllWorkloadsRunOnAllStrategies) {
  ASSERT_TRUE(platform_.provision(firewall_, 1).is_ok());
  ASSERT_TRUE(platform_.provision(nat_, 1).is_ok());
  ASSERT_TRUE(platform_.provision(filter_, 1).is_ok());
  ASSERT_TRUE(platform_.provision(thumbnail_, 1).is_ok());

  workloads::Request filter_request;
  filter_request.payload = workloads::ArrayFilterFunction::default_payload();
  filter_request.threshold = 500'000;

  for (const auto mode : {faas::StartMode::kCold, faas::StartMode::kRestore,
                          faas::StartMode::kWarm, faas::StartMode::kHorse}) {
    ASSERT_TRUE(platform_.invoke(firewall_, packet_request(), mode).has_value())
        << to_string(mode);
    ASSERT_TRUE(platform_.invoke(nat_, packet_request(), mode).has_value());
    ASSERT_TRUE(platform_.invoke(filter_, filter_request, mode).has_value());
    workloads::Request thumb_request;
    thumb_request.threshold = 2;
    ASSERT_TRUE(platform_.invoke(thumbnail_, thumb_request, mode).has_value());
  }
}

TEST_F(EndToEndTest, InitFractionOrderingMatchesFigure1) {
  // For each uLL workload, init share of the pipeline must rank
  // cold > restore > warm — the premise of Figure 1.
  ASSERT_TRUE(platform_.provision(filter_, 1).is_ok());
  workloads::Request request;
  request.payload = workloads::ArrayFilterFunction::default_payload();
  request.threshold = 500'000;

  const auto cold = platform_.invoke(filter_, request, faas::StartMode::kCold);
  const auto restore =
      platform_.invoke(filter_, request, faas::StartMode::kRestore);
  const auto warm = platform_.invoke(filter_, request, faas::StartMode::kWarm);
  ASSERT_TRUE(cold.has_value());
  ASSERT_TRUE(restore.has_value());
  ASSERT_TRUE(warm.has_value());
  EXPECT_GT(cold->init_fraction(), restore->init_fraction());
  EXPECT_GT(restore->init_fraction(), warm->init_fraction());
  EXPECT_GT(cold->init_fraction(), 0.99);  // Table 1: 99.99%
}

TEST_F(EndToEndTest, HorseBeatsWarmInitTimeOverManyTriggers) {
  ASSERT_TRUE(platform_.provision(nat_, 2).is_ok());
  util::Nanos warm_best = std::numeric_limits<util::Nanos>::max();
  util::Nanos horse_best = std::numeric_limits<util::Nanos>::max();
  for (int i = 0; i < 50; ++i) {
    const auto warm =
        platform_.invoke(nat_, packet_request(), faas::StartMode::kWarm);
    ASSERT_TRUE(warm.has_value());
    warm_best = std::min(warm_best, warm->init_time);
    const auto fast =
        platform_.invoke(nat_, packet_request(), faas::StartMode::kHorse);
    ASSERT_TRUE(fast.has_value());
    horse_best = std::min(horse_best, fast->init_time);
  }
  EXPECT_LT(horse_best, warm_best);
}

TEST_F(EndToEndTest, TraceDrivenInvocationSequence) {
  // Replay a synthetic Azure window against the platform: every arrival
  // becomes a warm (or HORSE) invocation depending on the uLL flag.
  ASSERT_TRUE(platform_.provision(firewall_, 1).is_ok());
  ASSERT_TRUE(platform_.provision(thumbnail_, 1).is_ok());

  trace::SyntheticTraceParams params;
  params.num_functions = 2;
  params.num_minutes = 1;
  params.top_rate_per_minute = 30.0;
  params.seed = 5;
  const auto schedule = trace::SyntheticAzureTrace(params).generate_schedule();
  ASSERT_GT(schedule.size(), 0u);

  int invoked = 0;
  util::Nanos last = 0;
  for (const auto& arrival : schedule.arrivals()) {
    platform_.advance_time(arrival.time - last);
    last = arrival.time;
    const bool ull = arrival.function_id % 2 == 0;
    const auto id = ull ? firewall_ : thumbnail_;
    const auto mode = ull ? faas::StartMode::kHorse : faas::StartMode::kWarm;
    workloads::Request request =
        ull ? packet_request() : workloads::Request{};
    const auto record = platform_.invoke(id, request, mode);
    ASSERT_TRUE(record.has_value()) << record.status().to_report();
    ++invoked;
  }
  EXPECT_EQ(invoked, static_cast<int>(schedule.size()));
}

TEST_F(EndToEndTest, ColocationSimUsesCalibratedCosts) {
  // The two planes compose: calibrate the cost model from the real
  // engines (fast settings), then drive the colocation sim with it.
  const auto costs =
      sim::CostModel::calibrate(vmm::VmmProfile::firecracker(), 3);
  faas::ColocationParams params;
  params.mode = faas::ColocationMode::kHorse;
  params.ull_vcpus = 8;
  params.duration = 3 * util::kSecond;
  faas::ColocationExperiment experiment(params, costs);
  const auto result = experiment.run();
  EXPECT_GT(result.completed, 0u);
  EXPECT_GT(result.p99_ns, 0.0);
}

TEST_F(EndToEndTest, XenProfilePlatformWorks) {
  faas::PlatformConfig config;
  config.num_cpus = 4;
  config.profile = vmm::VmmProfile::xen();
  faas::Platform xen_platform(config);
  faas::FunctionSpec spec;
  spec.name = "nat";
  spec.implementation = std::make_shared<workloads::NatFunction>(16);
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = true;
  const auto id = *xen_platform.registry().add(std::move(spec));
  ASSERT_TRUE(xen_platform.provision(id, 1).is_ok());
  const auto record =
      xen_platform.invoke(id, packet_request(), faas::StartMode::kHorse);
  ASSERT_TRUE(record.has_value());
  EXPECT_GT(record->init_time, 0);
}

}  // namespace
}  // namespace horse
