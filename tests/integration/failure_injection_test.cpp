// Failure injection: drive every error path a production deployment would
// hit — bad configs, wrong lifecycle orders, exhausted pools, corrupted
// control-plane state, stale fast-path state — and verify the library
// reports structured errors and stays consistent (no leaked queue
// entries, no stuck locks) so the caller can always retry.
#include <gtest/gtest.h>

#include <memory>

#include "core/horse_resume.hpp"
#include "faas/platform.hpp"
#include "trace/trace_stats.hpp"
#include "workloads/array_filter.hpp"

namespace horse {
namespace {

std::unique_ptr<vmm::Sandbox> make_sandbox(sched::SandboxId id,
                                           std::uint32_t vcpus, bool ull) {
  vmm::SandboxConfig config;
  config.name = "fi";
  config.num_vcpus = vcpus;
  config.memory_mb = 1;
  config.ull = ull;
  return std::make_unique<vmm::Sandbox>(id, config);
}

TEST(FailureInjectionTest, LifecycleOrderViolationsAllRecoverable) {
  sched::CpuTopology topology(4);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  auto sandbox = make_sandbox(1, 2, true);

  // Everything before start() fails cleanly.
  EXPECT_FALSE(engine.pause(*sandbox).is_ok());
  EXPECT_FALSE(engine.resume(*sandbox).is_ok());

  ASSERT_TRUE(engine.start(*sandbox).is_ok());
  EXPECT_FALSE(engine.start(*sandbox).is_ok());   // double start
  EXPECT_FALSE(engine.resume(*sandbox).is_ok());  // resume while running

  ASSERT_TRUE(engine.pause(*sandbox).is_ok());
  EXPECT_FALSE(engine.pause(*sandbox).is_ok());  // double pause

  // After each rejected call the engine still works.
  ASSERT_TRUE(engine.resume(*sandbox).is_ok());
  ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
  EXPECT_FALSE(engine.destroy(*sandbox).is_ok());  // double destroy
}

TEST(FailureInjectionTest, FailedResumeReleasesGlobalLock) {
  sched::CpuTopology topology(4);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  auto running = make_sandbox(1, 1, true);
  ASSERT_TRUE(engine.start(*running).is_ok());
  // This resume fails in the sanity step, after the lock was taken.
  ASSERT_FALSE(engine.resume(*running).is_ok());
  // If the lock leaked, this pause would deadlock.
  ASSERT_TRUE(engine.pause(*running).is_ok());
  ASSERT_TRUE(engine.resume(*running).is_ok());
  ASSERT_TRUE(engine.destroy(*running).is_ok());
}

TEST(FailureInjectionTest, UntrackedUllSandboxResumeFailsCleanly) {
  sched::CpuTopology topology(4);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  auto sandbox = make_sandbox(1, 2, true);
  ASSERT_TRUE(engine.start(*sandbox).is_ok());
  ASSERT_TRUE(engine.pause(*sandbox).is_ok());
  // Sabotage: drop the fast-path state behind the engine's back.
  engine.ull_manager().untrack(sandbox->id());
  const auto status = engine.resume(*sandbox);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
  // The sandbox is still paused and can be re-tracked via a fresh cycle.
  EXPECT_EQ(sandbox->state(), vmm::SandboxState::kPaused);
  ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
}

TEST(FailureInjectionTest, SandboxConfigValidation) {
  vmm::SandboxConfig config;
  config.num_vcpus = 0;
  config.memory_mb = 1;
  EXPECT_THROW(vmm::Sandbox(1, config), std::invalid_argument);
  config.num_vcpus = 1;
  config.memory_mb = 0;
  EXPECT_THROW(vmm::Sandbox(1, config), std::invalid_argument);
}

TEST(FailureInjectionTest, HorseConfigValidation) {
  sched::CpuTopology topology(4);
  core::HorseConfig config;
  config.num_ull_runqueues = 0;
  EXPECT_THROW(core::HorseResumeEngine(topology, vmm::VmmProfile::firecracker(),
                                       config),
               std::invalid_argument);
  config.num_ull_runqueues = 4;  // every CPU reserved
  EXPECT_THROW(core::HorseResumeEngine(topology, vmm::VmmProfile::firecracker(),
                                       config),
               std::invalid_argument);
}

TEST(FailureInjectionTest, PlatformSurvivesPoolExhaustion) {
  faas::PlatformConfig config;
  config.num_cpus = 4;
  config.warm_pool.max_per_function = 1;
  faas::Platform platform(config);
  faas::FunctionSpec spec;
  spec.name = "filter";
  spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = true;
  const auto id = *platform.registry().add(std::move(spec));

  workloads::Request request;
  request.payload = {1, 2, 3};
  request.threshold = 0;

  // First cold invocation pools its sandbox (cap 1). A second cold
  // invocation cannot pool another — the platform must surface the cap.
  ASSERT_TRUE(platform.invoke(id, request, faas::StartMode::kCold).has_value());
  const auto second = platform.invoke(id, request, faas::StartMode::kCold);
  EXPECT_FALSE(second.has_value());
  EXPECT_EQ(second.status().code(), util::StatusCode::kResourceExhausted);
  // Warm path still works off the pooled sandbox.
  EXPECT_TRUE(platform.invoke(id, request, faas::StartMode::kWarm).has_value());
}

TEST(FailureInjectionTest, ProvisionUnknownFunctionFails) {
  faas::Platform platform{faas::PlatformConfig{}};
  EXPECT_EQ(platform.provision(404, 1).code(), util::StatusCode::kNotFound);
  EXPECT_EQ(platform.ensure_snapshot(404).code(), util::StatusCode::kNotFound);
}

TEST(FailureInjectionTest, XenControlPlaneCorruptionCaughtEveryCycle) {
  sched::CpuTopology topology(4);
  vmm::ResumeEngine engine(topology, vmm::VmmProfile::xen());
  auto sandbox = make_sandbox(3, 1, false);
  ASSERT_TRUE(engine.start(*sandbox).is_ok());

  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(engine.pause(*sandbox).is_ok());
    ASSERT_TRUE(engine.xenstore()
                    ->write(vmm::XenStore::domain_path(3) + "/state", "broken")
                    .is_ok());
    EXPECT_FALSE(engine.resume(*sandbox).is_ok());
    // Repair the store; the resume then succeeds.
    ASSERT_TRUE(engine.xenstore()
                    ->write(vmm::XenStore::domain_path(3) + "/state", "paused")
                    .is_ok());
    ASSERT_TRUE(engine.resume(*sandbox).is_ok());
  }
  ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
}

TEST(FailureInjectionTest, P2smRejectsMergeAfterForeignQueueMutation) {
  // A non-uLL vCPU wandering onto the reserved queue (a scheduler bug in
  // a real deployment) must not corrupt a merge: the stale index is
  // detected and the inline rebuild re-partitions around the intruder.
  sched::CpuTopology topology(4);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  auto sandbox = make_sandbox(1, 3, true);
  ASSERT_TRUE(engine.start(*sandbox).is_ok());
  ASSERT_TRUE(engine.pause(*sandbox).is_ok());

  sched::Vcpu intruder;
  intruder.credit = 42;
  {
    util::LockGuard guard(topology.queue(3).lock());
    topology.queue(3).insert_sorted(intruder);
  }
  ASSERT_TRUE(engine.resume(*sandbox).is_ok());
  EXPECT_TRUE(topology.queue(3).is_sorted());
  EXPECT_EQ(topology.queue(3).size(), 4u);  // 3 vCPUs + intruder
  {
    util::LockGuard guard(topology.queue(3).lock());
    topology.queue(3).remove(intruder);
  }
  ASSERT_TRUE(engine.destroy(*sandbox).is_ok());
}

TEST(FailureInjectionTest, EmptyTraceAndDegenerateSchedules) {
  const auto stats = trace::analyze(trace::ArrivalSchedule{});
  EXPECT_EQ(stats.total_invocations, 0u);
  // Window fully outside the schedule.
  trace::ArrivalSchedule schedule({{10, 0}});
  EXPECT_TRUE(schedule.window(100, 200).empty());
}

}  // namespace
}  // namespace horse
