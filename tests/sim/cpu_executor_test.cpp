#include "sim/cpu_executor.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace horse::sim {
namespace {

class CpuExecutorTest : public ::testing::Test {
 protected:
  CpuExecutorTest()
      : topology_(2), scheduler_(topology_), executor_(sim_, scheduler_) {}

  sched::Vcpu& make_vcpu(sched::Credit credit = 1'000'000'000) {
    auto vcpu = std::make_unique<sched::Vcpu>();
    vcpu->id = static_cast<sched::VcpuId>(storage_.size());
    vcpu->credit = credit;
    storage_.push_back(std::move(vcpu));
    return *storage_.back();
  }

  Simulation sim_;
  sched::CpuTopology topology_;
  sched::Credit2Scheduler scheduler_;
  CpuExecutor executor_;
  std::vector<std::unique_ptr<sched::Vcpu>> storage_;
};

TEST_F(CpuExecutorTest, SingleTaskCompletesAfterItsWork) {
  sched::Vcpu& vcpu = make_vcpu();
  util::Nanos done_at = -1;
  executor_.submit(vcpu, 0, 500, [&](sched::Vcpu&) { done_at = sim_.now(); });
  sim_.run();
  EXPECT_EQ(done_at, 500);
  EXPECT_TRUE(executor_.idle(0));
  EXPECT_EQ(vcpu.cpu_time, 500);
}

TEST_F(CpuExecutorTest, WorkLongerThanSliceSpansMultipleDispatches) {
  sched::Vcpu& vcpu = make_vcpu();
  const util::Nanos slice = scheduler_.params().default_slice;
  const util::Nanos work = slice * 3 + 100;
  util::Nanos done_at = -1;
  executor_.submit(vcpu, 0, work, [&](sched::Vcpu&) { done_at = sim_.now(); });
  sim_.run();
  EXPECT_EQ(done_at, work);
  EXPECT_GE(executor_.dispatches(), 4u);
}

TEST_F(CpuExecutorTest, TwoTasksShareOneCpu) {
  sched::Vcpu& a = make_vcpu(100);  // lower credit: runs first
  sched::Vcpu& b = make_vcpu(200);
  util::Nanos a_done = -1;
  util::Nanos b_done = -1;
  executor_.submit(a, 0, 1000, [&](sched::Vcpu&) { a_done = sim_.now(); });
  executor_.submit(b, 0, 1000, [&](sched::Vcpu&) { b_done = sim_.now(); });
  sim_.run();
  // Total virtual work is 2000 on one CPU: last completion at 2000.
  EXPECT_GT(a_done, 0);
  EXPECT_GT(b_done, 0);
  EXPECT_EQ(std::max(a_done, b_done), 2000);
}

TEST_F(CpuExecutorTest, TasksOnDifferentCpusRunInParallel) {
  sched::Vcpu& a = make_vcpu();
  sched::Vcpu& b = make_vcpu();
  util::Nanos a_done = -1;
  util::Nanos b_done = -1;
  executor_.submit(a, 0, 1000, [&](sched::Vcpu&) { a_done = sim_.now(); });
  executor_.submit(b, 1, 1000, [&](sched::Vcpu&) { b_done = sim_.now(); });
  sim_.run();
  EXPECT_EQ(a_done, 1000);
  EXPECT_EQ(b_done, 1000);  // no serialisation across CPUs
}

TEST_F(CpuExecutorTest, BlackoutDelaysIdleDispatch) {
  executor_.block_cpu(0, 300);
  sched::Vcpu& vcpu = make_vcpu();
  util::Nanos done_at = -1;
  executor_.submit(vcpu, 0, 100, [&](sched::Vcpu&) { done_at = sim_.now(); });
  sim_.run();
  EXPECT_EQ(done_at, 400);  // 300 blackout + 100 work
}

TEST_F(CpuExecutorTest, BlackoutExtendsRunningSlice) {
  sched::Vcpu& vcpu = make_vcpu();
  util::Nanos done_at = -1;
  executor_.submit(vcpu, 0, 1000, [&](sched::Vcpu&) { done_at = sim_.now(); });
  sim_.schedule_at(500, [&] { executor_.block_cpu(0, 200); });
  sim_.run();
  EXPECT_EQ(done_at, 1200);  // preempted mid-slice for 200
  EXPECT_EQ(executor_.preemptions(), 1u);
  EXPECT_EQ(vcpu.cpu_time, 1000);  // work charged, not the blackout
}

TEST_F(CpuExecutorTest, AddWorkExtendsPendingTask) {
  sched::Vcpu& vcpu = make_vcpu();
  const util::Nanos slice = scheduler_.params().default_slice;
  util::Nanos done_at = -1;
  // Work spanning 2 slices; more work added while the first slice runs.
  executor_.submit(vcpu, 0, slice + 100,
                   [&](sched::Vcpu&) { done_at = sim_.now(); });
  sim_.schedule_at(10, [&] { executor_.add_work(vcpu, 400); });
  sim_.run();
  EXPECT_EQ(done_at, slice + 500);
}

TEST_F(CpuExecutorTest, UllQueueUsesMicrosecondSlices) {
  topology_.reserve_for_ull(1);
  sched::Vcpu& vcpu = make_vcpu();
  executor_.submit(vcpu, 1, 3 * util::kMicrosecond, [](sched::Vcpu&) {});
  sim_.run();
  // 3 µs of work at a 1 µs slice: at least 3 dispatches.
  EXPECT_GE(executor_.dispatches(), 3u);
}

TEST_F(CpuExecutorTest, PreemptionAtWorkExhaustionDefersCompletionPastHandoff) {
  // Regression: a victim preempted at the exact instant its work ran out
  // completes during the preemption, and its completion callback may
  // submit new work to the same CPU. The callback must observe the
  // winner already installed — never the transient idle CPU mid-handoff,
  // where a dispatch would double-book the slice (run_now asserts !busy).
  executor_.set_wake_preemption(true);
  sched::Vcpu& victim = make_vcpu(1'000'000'000);
  sched::Vcpu& winner = make_vcpu(0);
  sched::Vcpu& followup = make_vcpu(2'000'000'000);
  util::Nanos victim_done = -1;
  util::Nanos followup_done = -1;
  executor_.submit(victim, 0, 1000, [&](sched::Vcpu&) {
    victim_done = sim_.now();
    executor_.submit(followup, 0, 500,
                     [&](sched::Vcpu&) { followup_done = sim_.now(); });
  });
  // Blackout stretches the victim's 1000 ns slice to wall-clock 1500:
  // between 1000 and 1500 the executed work has already hit the full
  // 1000 while the slice is still nominally running, so a preemption in
  // that window lands exactly at work exhaustion.
  executor_.block_cpu(0, 500);
  sim_.schedule_at(1200, [&] { executor_.submit(winner, 0, 300, nullptr); });
  sim_.run();
  EXPECT_EQ(victim_done, 1200);
  EXPECT_GE(executor_.preemptions(), 1u);
  // The follow-up queued behind the winner and still ran to completion.
  EXPECT_GT(followup_done, victim_done);
  EXPECT_TRUE(executor_.idle(0));
}

TEST_F(CpuExecutorTest, ManyTasksAllComplete) {
  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    sched::Vcpu& vcpu = make_vcpu(static_cast<sched::Credit>(1'000'000 + i));
    executor_.submit(vcpu, i % 2, 100 + i, [&](sched::Vcpu&) { ++completed; });
  }
  sim_.run();
  EXPECT_EQ(completed, 50);
  EXPECT_TRUE(executor_.idle(0));
  EXPECT_TRUE(executor_.idle(1));
}

}  // namespace
}  // namespace horse::sim
