#include "sim/cost_model.hpp"

#include <gtest/gtest.h>

namespace horse::sim {
namespace {

TEST(CostModelTest, DefaultsAnchorTable1) {
  const auto model = CostModel::defaults(vmm::VmmProfile::firecracker());
  EXPECT_EQ(model.cold_boot(), 1'500 * util::kMillisecond);
  EXPECT_EQ(model.restore(), 1'300 * util::kMicrosecond);
  // Warm init at 1 vCPU ≈ 1.1 µs (Table 1).
  EXPECT_NEAR(static_cast<double>(model.init_warm(1)), 1'100.0, 120.0);
}

TEST(CostModelTest, VanillaGrowsWithVcpus) {
  const auto model = CostModel::defaults(vmm::VmmProfile::firecracker());
  EXPECT_LT(model.vanilla_resume(1), model.vanilla_resume(8));
  EXPECT_LT(model.vanilla_resume(8), model.vanilla_resume(36));
}

TEST(CostModelTest, HorseIsNearlyFlat) {
  const auto model = CostModel::defaults(vmm::VmmProfile::firecracker());
  const auto at_1 = model.horse_resume(1);
  const auto at_36 = model.horse_resume(36);
  EXPECT_LE(at_36 - at_1, at_1 / 10);  // <10% growth across the sweep
}

TEST(CostModelTest, DefaultImprovementFactorMatchesPaperBand) {
  const auto model = CostModel::defaults(vmm::VmmProfile::firecracker());
  const double factor =
      static_cast<double>(model.vanilla_resume(36)) /
      static_cast<double>(model.horse_resume(36));
  // Paper: up to 7.16x.
  EXPECT_GT(factor, 5.0);
  EXPECT_LT(factor, 9.0);
}

TEST(CostModelTest, InitOrderingColdSlowestHorseFastest) {
  const auto model = CostModel::defaults(vmm::VmmProfile::firecracker());
  for (const std::uint32_t vcpus : {1u, 4u, 36u}) {
    EXPECT_GT(model.init_cold(vcpus), model.init_restore(vcpus));
    EXPECT_GT(model.init_restore(vcpus), model.init_warm(vcpus));
    EXPECT_GT(model.init_warm(vcpus), model.init_horse(vcpus));
  }
}

TEST(CostModelTest, VcpuClamping) {
  const auto model = CostModel::defaults(vmm::VmmProfile::firecracker());
  EXPECT_EQ(model.vanilla_resume(0), model.vanilla_resume(1));
  EXPECT_EQ(model.vanilla_resume(100), model.vanilla_resume(36));
}

TEST(CostModelTest, CalibrationProducesPositiveMeasurements) {
  // A fast calibration run (3 reps) on the real engines: every entry must
  // be a positive measured latency and HORSE must beat vanilla at high
  // vCPU counts (the paper's headline).
  const auto model =
      CostModel::calibrate(vmm::VmmProfile::firecracker(), /*repetitions=*/3);
  for (const std::uint32_t vcpus : {1u, 8u, 36u}) {
    EXPECT_GT(model.vanilla_resume(vcpus), 0) << vcpus;
    EXPECT_GT(model.horse_resume(vcpus), 0) << vcpus;
  }
  EXPECT_LT(model.horse_resume(36), model.vanilla_resume(36));
}

}  // namespace
}  // namespace horse::sim
