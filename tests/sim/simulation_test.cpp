#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace horse::sim {
namespace {

TEST(SimulationTest, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulationTest, TiesBreakFifo) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(5, [&] { order.push_back(1); });
  sim.schedule_at(5, [&] { order.push_back(2); });
  sim.schedule_at(5, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, ScheduleAfterIsRelative) {
  Simulation sim;
  util::Nanos fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulationTest, SchedulingInThePastThrows) {
  Simulation sim;
  sim.schedule_at(100, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(50, [] {}), std::invalid_argument);
}

TEST(SimulationTest, NegativeDelayClampsToNow) {
  Simulation sim;
  sim.schedule_at(100, [&] {
    sim.schedule_after(-10, [] {});  // clamped, not in the past
  });
  EXPECT_NO_THROW(sim.run());
}

TEST(SimulationTest, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(SimulationTest, CancelFiredEventReturnsFalse) {
  Simulation sim;
  const EventId id = sim.schedule_at(1, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulationTest, CancelTwiceReturnsFalse) {
  Simulation sim;
  const EventId id = sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  std::vector<util::Nanos> fired;
  for (util::Nanos t = 10; t <= 100; t += 10) {
    sim.schedule_at(t, [&, t] { fired.push_back(t); });
  }
  sim.run_until(50);
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending(), 5u);
  sim.run();
  EXPECT_EQ(fired.size(), 10u);
}

TEST(SimulationTest, RunUntilAdvancesClockWhenQuiet) {
  Simulation sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(SimulationTest, RunUntilSkipsCancelledHeadBeyondDeadline) {
  Simulation sim;
  bool late_fired = false;
  const EventId early = sim.schedule_at(5, [] {});
  sim.schedule_at(100, [&] { late_fired = true; });
  sim.cancel(early);
  sim.run_until(10);
  EXPECT_FALSE(late_fired);  // the 100-event must not fire early
  EXPECT_EQ(sim.now(), 10);
}

TEST(SimulationTest, EventsCanChainDeeply) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 1000) {
      sim.schedule_after(1, chain);
    }
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(count, 1000);
  EXPECT_EQ(sim.now(), 999);
}

}  // namespace
}  // namespace horse::sim
