#include "sim/server.hpp"

#include <gtest/gtest.h>

namespace horse::sim {
namespace {

CostModel paper_costs() {
  return CostModel::defaults(vmm::VmmProfile::firecracker());
}

SimFunctionSpec ull_spec() {
  SimFunctionSpec spec;
  spec.name = "nat";
  spec.vcpus = 1;
  spec.ull = true;
  spec.durations.median = 2 * util::kMicrosecond;
  spec.durations.sigma = 0.2;
  spec.durations.tail_fraction = 0.0;
  return spec;
}

SimFunctionSpec long_spec() {
  SimFunctionSpec spec;
  spec.name = "thumbnail";
  spec.vcpus = 2;
  spec.durations.median = 50 * util::kMillisecond;
  spec.durations.sigma = 0.3;
  spec.durations.tail_fraction = 0.0;
  return spec;
}

trace::ArrivalSchedule regular_arrivals(std::uint32_t function,
                                        util::Nanos period, int count) {
  std::vector<trace::Arrival> arrivals;
  for (int i = 0; i < count; ++i) {
    arrivals.push_back({static_cast<util::Nanos>(i + 1) * period, function});
  }
  return trace::ArrivalSchedule(std::move(arrivals));
}

TEST(SimServerTest, FirstInvocationIsColdRestWarm) {
  const auto costs = paper_costs();
  SimServerParams params;
  SimServer server(params, costs);
  const auto fn = server.add_function(long_spec());
  const auto report =
      server.run(regular_arrivals(fn, 10 * util::kSecond, 20));
  EXPECT_EQ(report.invocations, 20u);
  EXPECT_EQ(report.cold_starts, 1u);
  EXPECT_EQ(report.warm_starts, 19u);
  EXPECT_EQ(report.horse_starts, 0u);
}

TEST(SimServerTest, UllFunctionUsesHorsePath) {
  const auto costs = paper_costs();
  SimServerParams params;
  SimServer server(params, costs);
  const auto fn = server.add_function(ull_spec());
  const auto report = server.run(regular_arrivals(fn, util::kSecond, 50));
  // Two colds: the second arrival lands while the first cold boot
  // (~1.5 s) is still in flight, so no warm sandbox exists yet.
  EXPECT_EQ(report.cold_starts, 2u);
  EXPECT_EQ(report.horse_starts, 48u);
  EXPECT_EQ(report.warm_starts, 0u);
}

TEST(SimServerTest, HorseDisabledFallsBackToWarm) {
  const auto costs = paper_costs();
  SimServerParams params;
  params.use_horse = false;
  SimServer server(params, costs);
  const auto fn = server.add_function(ull_spec());
  const auto report = server.run(regular_arrivals(fn, util::kSecond, 50));
  EXPECT_EQ(report.horse_starts, 0u);
  EXPECT_EQ(report.warm_starts, 48u);
}

TEST(SimServerTest, HorseLowersInitLatencyForUll) {
  const auto costs = paper_costs();
  SimServerParams with_horse;
  SimServer horse_server(with_horse, costs);
  const auto fn1 = horse_server.add_function(ull_spec());
  const auto horse_report =
      horse_server.run(regular_arrivals(fn1, util::kSecond, 100));

  SimServerParams without;
  without.use_horse = false;
  SimServer warm_server(without, costs);
  const auto fn2 = warm_server.add_function(ull_spec());
  const auto warm_report =
      warm_server.run(regular_arrivals(fn2, util::kSecond, 100));

  // Median init: horse ≈150 ns vs warm ≈1.1 µs (cold outliers identical).
  EXPECT_LT(horse_report.init_latency.p50(), 400);
  EXPECT_GT(warm_report.init_latency.p50(), 800);
}

TEST(SimServerTest, GapsBeyondKeepAliveGoCold) {
  const auto costs = paper_costs();
  SimServerParams params;
  params.fixed_keep_alive = 60 * util::kSecond;
  SimServer server(params, costs);
  const auto fn = server.add_function(long_spec());
  // 10-minute gaps, far beyond the 1-minute window: every start cold.
  const auto report =
      server.run(regular_arrivals(fn, 600 * util::kSecond, 10));
  EXPECT_EQ(report.cold_starts, 10u);
  EXPECT_EQ(report.warm_starts, 0u);
  EXPECT_EQ(report.evictions, 9u);  // final token drains at end of run
  EXPECT_NEAR(report.cold_fraction(), 1.0, 1e-9);
}

TEST(SimServerTest, AdaptiveKeepAliveCutsColdStartsForRegularTraffic) {
  const auto costs = paper_costs();
  // Fixed 1-minute window vs 5-minute-period traffic: all cold.
  SimServerParams fixed;
  fixed.fixed_keep_alive = 60 * util::kSecond;
  SimServer fixed_server(fixed, costs);
  const auto f1 = fixed_server.add_function(long_spec());
  const auto fixed_report =
      fixed_server.run(regular_arrivals(f1, 300 * util::kSecond, 40));

  // Adaptive learns the 5-minute period and keeps the sandbox just long
  // enough (falls back to the same 1-minute fixed window until learned).
  SimServerParams adaptive = fixed;
  adaptive.adaptive_keep_alive = true;
  adaptive.keep_alive_policy.min_samples = 4;
  adaptive.keep_alive_policy.fallback_keep_alive = 60 * util::kSecond;
  SimServer adaptive_server(adaptive, costs);
  const auto f2 = adaptive_server.add_function(long_spec());
  const auto adaptive_report =
      adaptive_server.run(regular_arrivals(f2, 300 * util::kSecond, 40));

  EXPECT_GT(fixed_report.cold_fraction(), 0.9);
  EXPECT_LT(adaptive_report.cold_fraction(), 0.3);
}

TEST(SimServerTest, MultiFunctionTraceRunsToCompletion) {
  const auto costs = paper_costs();
  SimServerParams params;
  SimServer server(params, costs);
  (void)server.add_function(ull_spec());
  (void)server.add_function(long_spec());

  trace::SyntheticTraceParams trace_params;
  trace_params.num_functions = 2;
  trace_params.num_minutes = 3;
  trace_params.top_rate_per_minute = 60.0;
  trace_params.seed = 17;
  const auto schedule =
      trace::SyntheticAzureTrace(trace_params).generate_schedule();

  const auto report = server.run(schedule);
  EXPECT_EQ(report.invocations, schedule.size());
  EXPECT_EQ(report.invocations, report.cold_starts + report.warm_starts +
                                    report.horse_starts);
  EXPECT_EQ(report.end_to_end_latency.count(), report.invocations);
  EXPECT_GT(report.warm_sandbox_seconds, 0.0);
}

TEST(SimServerTest, DeterministicPerSeed) {
  const auto costs = paper_costs();
  auto run_once = [&] {
    SimServerParams params;
    SimServer server(params, costs);
    const auto fn = server.add_function(long_spec());
    return server.run(regular_arrivals(fn, 7 * util::kSecond, 30));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.cold_starts, b.cold_starts);
  EXPECT_EQ(a.end_to_end_latency.p99(), b.end_to_end_latency.p99());
  EXPECT_DOUBLE_EQ(a.warm_sandbox_seconds, b.warm_sandbox_seconds);
}


TEST(SimServerTest, ConcurrencyLimitQueuesArrivals) {
  const auto costs = paper_costs();
  SimServerParams params;
  SimServer server(params, costs);
  auto spec = long_spec();          // ~50 ms service
  spec.max_concurrent = 1;
  const auto fn = server.add_function(spec);
  // 10 arrivals 1 ms apart: far faster than the service time, so at most
  // one runs at a time and the rest wait for admission.
  const auto report = server.run(regular_arrivals(fn, util::kMillisecond, 10));
  EXPECT_EQ(report.invocations, 10u);
  EXPECT_GE(report.throttled, 8u);
  EXPECT_EQ(report.admission_wait.count(), report.throttled);
  EXPECT_GT(report.admission_wait.p50(), 10 * util::kMillisecond);
  // All eventually executed.
  EXPECT_EQ(report.end_to_end_latency.count(), 10u);
  // Serialized executions reuse one sandbox: a single cold start.
  EXPECT_EQ(report.cold_starts, 1u);
}

TEST(SimServerTest, UnlimitedConcurrencyNeverThrottles) {
  const auto costs = paper_costs();
  SimServerParams params;
  SimServer server(params, costs);
  const auto fn = server.add_function(long_spec());  // max_concurrent = 0
  const auto report = server.run(regular_arrivals(fn, util::kMillisecond, 20));
  EXPECT_EQ(report.throttled, 0u);
  EXPECT_EQ(report.admission_wait.count(), 0u);
}

TEST(SimServerTest, ThrottledEndToEndIncludesAdmissionWait) {
  const auto costs = paper_costs();
  SimServerParams params;
  SimServer server(params, costs);
  auto spec = long_spec();
  spec.max_concurrent = 2;
  const auto fn = server.add_function(spec);
  const auto report = server.run(regular_arrivals(fn, util::kMillisecond, 12));
  // Throughput 2-at-a-time: the e2e p99 must exceed several service times.
  EXPECT_GT(report.end_to_end_latency.p99(), 100 * util::kMillisecond);
}

}  // namespace
}  // namespace horse::sim
