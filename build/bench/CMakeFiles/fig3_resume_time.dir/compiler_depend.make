# Empty compiler generated dependencies file for fig3_resume_time.
# This may be replaced when dependencies are built.
