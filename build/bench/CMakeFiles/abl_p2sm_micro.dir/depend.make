# Empty dependencies file for abl_p2sm_micro.
# This may be replaced when dependencies are built.
