file(REMOVE_RECURSE
  "CMakeFiles/abl_p2sm_micro.dir/abl_p2sm_micro.cpp.o"
  "CMakeFiles/abl_p2sm_micro.dir/abl_p2sm_micro.cpp.o.d"
  "abl_p2sm_micro"
  "abl_p2sm_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_p2sm_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
