# Empty compiler generated dependencies file for fig2_resume_breakdown.
# This may be replaced when dependencies are built.
