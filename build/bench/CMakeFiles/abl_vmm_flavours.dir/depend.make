# Empty dependencies file for abl_vmm_flavours.
# This may be replaced when dependencies are built.
