file(REMOVE_RECURSE
  "CMakeFiles/abl_vmm_flavours.dir/abl_vmm_flavours.cpp.o"
  "CMakeFiles/abl_vmm_flavours.dir/abl_vmm_flavours.cpp.o.d"
  "abl_vmm_flavours"
  "abl_vmm_flavours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_vmm_flavours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
