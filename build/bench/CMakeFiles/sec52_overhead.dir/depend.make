# Empty dependencies file for sec52_overhead.
# This may be replaced when dependencies are built.
