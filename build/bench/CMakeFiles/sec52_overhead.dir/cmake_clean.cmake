file(REMOVE_RECURSE
  "CMakeFiles/sec52_overhead.dir/sec52_overhead.cpp.o"
  "CMakeFiles/sec52_overhead.dir/sec52_overhead.cpp.o.d"
  "sec52_overhead"
  "sec52_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
