file(REMOVE_RECURSE
  "CMakeFiles/fig4_init_percentage.dir/fig4_init_percentage.cpp.o"
  "CMakeFiles/fig4_init_percentage.dir/fig4_init_percentage.cpp.o.d"
  "fig4_init_percentage"
  "fig4_init_percentage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_init_percentage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
