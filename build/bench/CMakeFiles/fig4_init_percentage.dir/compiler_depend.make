# Empty compiler generated dependencies file for fig4_init_percentage.
# This may be replaced when dependencies are built.
