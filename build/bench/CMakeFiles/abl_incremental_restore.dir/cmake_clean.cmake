file(REMOVE_RECURSE
  "CMakeFiles/abl_incremental_restore.dir/abl_incremental_restore.cpp.o"
  "CMakeFiles/abl_incremental_restore.dir/abl_incremental_restore.cpp.o.d"
  "abl_incremental_restore"
  "abl_incremental_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_incremental_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
