# Empty compiler generated dependencies file for abl_incremental_restore.
# This may be replaced when dependencies are built.
