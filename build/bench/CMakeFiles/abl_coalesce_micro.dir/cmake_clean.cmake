file(REMOVE_RECURSE
  "CMakeFiles/abl_coalesce_micro.dir/abl_coalesce_micro.cpp.o"
  "CMakeFiles/abl_coalesce_micro.dir/abl_coalesce_micro.cpp.o.d"
  "abl_coalesce_micro"
  "abl_coalesce_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_coalesce_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
