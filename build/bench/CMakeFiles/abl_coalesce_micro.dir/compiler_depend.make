# Empty compiler generated dependencies file for abl_coalesce_micro.
# This may be replaced when dependencies are built.
