file(REMOVE_RECURSE
  "CMakeFiles/sec54_colocation.dir/sec54_colocation.cpp.o"
  "CMakeFiles/sec54_colocation.dir/sec54_colocation.cpp.o.d"
  "sec54_colocation"
  "sec54_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec54_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
