# Empty compiler generated dependencies file for sec54_colocation.
# This may be replaced when dependencies are built.
