file(REMOVE_RECURSE
  "CMakeFiles/abl_p2sm_multiqueue.dir/abl_p2sm_multiqueue.cpp.o"
  "CMakeFiles/abl_p2sm_multiqueue.dir/abl_p2sm_multiqueue.cpp.o.d"
  "abl_p2sm_multiqueue"
  "abl_p2sm_multiqueue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_p2sm_multiqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
