# Empty compiler generated dependencies file for abl_p2sm_multiqueue.
# This may be replaced when dependencies are built.
