# Empty compiler generated dependencies file for abl_idle_states.
# This may be replaced when dependencies are built.
