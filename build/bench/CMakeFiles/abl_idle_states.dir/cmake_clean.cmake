file(REMOVE_RECURSE
  "CMakeFiles/abl_idle_states.dir/abl_idle_states.cpp.o"
  "CMakeFiles/abl_idle_states.dir/abl_idle_states.cpp.o.d"
  "abl_idle_states"
  "abl_idle_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_idle_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
