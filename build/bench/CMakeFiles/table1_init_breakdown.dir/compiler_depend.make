# Empty compiler generated dependencies file for table1_init_breakdown.
# This may be replaced when dependencies are built.
