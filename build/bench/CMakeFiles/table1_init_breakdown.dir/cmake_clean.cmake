file(REMOVE_RECURSE
  "CMakeFiles/table1_init_breakdown.dir/table1_init_breakdown.cpp.o"
  "CMakeFiles/table1_init_breakdown.dir/table1_init_breakdown.cpp.o.d"
  "table1_init_breakdown"
  "table1_init_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_init_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
