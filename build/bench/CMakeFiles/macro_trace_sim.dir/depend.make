# Empty dependencies file for macro_trace_sim.
# This may be replaced when dependencies are built.
