file(REMOVE_RECURSE
  "CMakeFiles/macro_trace_sim.dir/macro_trace_sim.cpp.o"
  "CMakeFiles/macro_trace_sim.dir/macro_trace_sim.cpp.o.d"
  "macro_trace_sim"
  "macro_trace_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macro_trace_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
