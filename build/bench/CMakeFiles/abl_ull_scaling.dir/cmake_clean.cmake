file(REMOVE_RECURSE
  "CMakeFiles/abl_ull_scaling.dir/abl_ull_scaling.cpp.o"
  "CMakeFiles/abl_ull_scaling.dir/abl_ull_scaling.cpp.o.d"
  "abl_ull_scaling"
  "abl_ull_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ull_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
