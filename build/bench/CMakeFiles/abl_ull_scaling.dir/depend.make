# Empty dependencies file for abl_ull_scaling.
# This may be replaced when dependencies are built.
