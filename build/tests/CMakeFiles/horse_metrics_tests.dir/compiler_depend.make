# Empty compiler generated dependencies file for horse_metrics_tests.
# This may be replaced when dependencies are built.
