file(REMOVE_RECURSE
  "CMakeFiles/horse_metrics_tests.dir/metrics/csv_test.cpp.o"
  "CMakeFiles/horse_metrics_tests.dir/metrics/csv_test.cpp.o.d"
  "CMakeFiles/horse_metrics_tests.dir/metrics/histogram_test.cpp.o"
  "CMakeFiles/horse_metrics_tests.dir/metrics/histogram_test.cpp.o.d"
  "CMakeFiles/horse_metrics_tests.dir/metrics/reporter_test.cpp.o"
  "CMakeFiles/horse_metrics_tests.dir/metrics/reporter_test.cpp.o.d"
  "CMakeFiles/horse_metrics_tests.dir/metrics/stats_test.cpp.o"
  "CMakeFiles/horse_metrics_tests.dir/metrics/stats_test.cpp.o.d"
  "CMakeFiles/horse_metrics_tests.dir/metrics/time_series_test.cpp.o"
  "CMakeFiles/horse_metrics_tests.dir/metrics/time_series_test.cpp.o.d"
  "horse_metrics_tests"
  "horse_metrics_tests.pdb"
  "horse_metrics_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_metrics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
