file(REMOVE_RECURSE
  "CMakeFiles/horse_sim_tests.dir/sim/cost_model_test.cpp.o"
  "CMakeFiles/horse_sim_tests.dir/sim/cost_model_test.cpp.o.d"
  "CMakeFiles/horse_sim_tests.dir/sim/cpu_executor_test.cpp.o"
  "CMakeFiles/horse_sim_tests.dir/sim/cpu_executor_test.cpp.o.d"
  "CMakeFiles/horse_sim_tests.dir/sim/server_test.cpp.o"
  "CMakeFiles/horse_sim_tests.dir/sim/server_test.cpp.o.d"
  "CMakeFiles/horse_sim_tests.dir/sim/simulation_test.cpp.o"
  "CMakeFiles/horse_sim_tests.dir/sim/simulation_test.cpp.o.d"
  "horse_sim_tests"
  "horse_sim_tests.pdb"
  "horse_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
