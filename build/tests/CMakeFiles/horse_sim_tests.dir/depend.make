# Empty dependencies file for horse_sim_tests.
# This may be replaced when dependencies are built.
