file(REMOVE_RECURSE
  "CMakeFiles/horse_property_tests.dir/property/coalesce_property_test.cpp.o"
  "CMakeFiles/horse_property_tests.dir/property/coalesce_property_test.cpp.o.d"
  "CMakeFiles/horse_property_tests.dir/property/conservation_property_test.cpp.o"
  "CMakeFiles/horse_property_tests.dir/property/conservation_property_test.cpp.o.d"
  "CMakeFiles/horse_property_tests.dir/property/lifecycle_fuzz_test.cpp.o"
  "CMakeFiles/horse_property_tests.dir/property/lifecycle_fuzz_test.cpp.o.d"
  "CMakeFiles/horse_property_tests.dir/property/p2sm_property_test.cpp.o"
  "CMakeFiles/horse_property_tests.dir/property/p2sm_property_test.cpp.o.d"
  "CMakeFiles/horse_property_tests.dir/property/resume_equivalence_test.cpp.o"
  "CMakeFiles/horse_property_tests.dir/property/resume_equivalence_test.cpp.o.d"
  "CMakeFiles/horse_property_tests.dir/property/xenstore_fuzz_test.cpp.o"
  "CMakeFiles/horse_property_tests.dir/property/xenstore_fuzz_test.cpp.o.d"
  "horse_property_tests"
  "horse_property_tests.pdb"
  "horse_property_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
