# Empty dependencies file for horse_property_tests.
# This may be replaced when dependencies are built.
