file(REMOVE_RECURSE
  "CMakeFiles/horse_vmm_tests.dir/vmm/api_test.cpp.o"
  "CMakeFiles/horse_vmm_tests.dir/vmm/api_test.cpp.o.d"
  "CMakeFiles/horse_vmm_tests.dir/vmm/boot_model_test.cpp.o"
  "CMakeFiles/horse_vmm_tests.dir/vmm/boot_model_test.cpp.o.d"
  "CMakeFiles/horse_vmm_tests.dir/vmm/hotplug_test.cpp.o"
  "CMakeFiles/horse_vmm_tests.dir/vmm/hotplug_test.cpp.o.d"
  "CMakeFiles/horse_vmm_tests.dir/vmm/incremental_snapshot_test.cpp.o"
  "CMakeFiles/horse_vmm_tests.dir/vmm/incremental_snapshot_test.cpp.o.d"
  "CMakeFiles/horse_vmm_tests.dir/vmm/resume_engine_test.cpp.o"
  "CMakeFiles/horse_vmm_tests.dir/vmm/resume_engine_test.cpp.o.d"
  "CMakeFiles/horse_vmm_tests.dir/vmm/sandbox_test.cpp.o"
  "CMakeFiles/horse_vmm_tests.dir/vmm/sandbox_test.cpp.o.d"
  "CMakeFiles/horse_vmm_tests.dir/vmm/snapshot_test.cpp.o"
  "CMakeFiles/horse_vmm_tests.dir/vmm/snapshot_test.cpp.o.d"
  "CMakeFiles/horse_vmm_tests.dir/vmm/xenstore_test.cpp.o"
  "CMakeFiles/horse_vmm_tests.dir/vmm/xenstore_test.cpp.o.d"
  "horse_vmm_tests"
  "horse_vmm_tests.pdb"
  "horse_vmm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_vmm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
