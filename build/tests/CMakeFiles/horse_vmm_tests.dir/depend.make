# Empty dependencies file for horse_vmm_tests.
# This may be replaced when dependencies are built.
