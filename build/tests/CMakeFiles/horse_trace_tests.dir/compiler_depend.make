# Empty compiler generated dependencies file for horse_trace_tests.
# This may be replaced when dependencies are built.
