file(REMOVE_RECURSE
  "CMakeFiles/horse_trace_tests.dir/trace/azure_reader_test.cpp.o"
  "CMakeFiles/horse_trace_tests.dir/trace/azure_reader_test.cpp.o.d"
  "CMakeFiles/horse_trace_tests.dir/trace/duration_reader_test.cpp.o"
  "CMakeFiles/horse_trace_tests.dir/trace/duration_reader_test.cpp.o.d"
  "CMakeFiles/horse_trace_tests.dir/trace/synthetic_test.cpp.o"
  "CMakeFiles/horse_trace_tests.dir/trace/synthetic_test.cpp.o.d"
  "CMakeFiles/horse_trace_tests.dir/trace/trace_stats_test.cpp.o"
  "CMakeFiles/horse_trace_tests.dir/trace/trace_stats_test.cpp.o.d"
  "horse_trace_tests"
  "horse_trace_tests.pdb"
  "horse_trace_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_trace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
