file(REMOVE_RECURSE
  "CMakeFiles/horse_util_tests.dir/util/intrusive_list_test.cpp.o"
  "CMakeFiles/horse_util_tests.dir/util/intrusive_list_test.cpp.o.d"
  "CMakeFiles/horse_util_tests.dir/util/rng_test.cpp.o"
  "CMakeFiles/horse_util_tests.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/horse_util_tests.dir/util/spinlock_test.cpp.o"
  "CMakeFiles/horse_util_tests.dir/util/spinlock_test.cpp.o.d"
  "CMakeFiles/horse_util_tests.dir/util/status_test.cpp.o"
  "CMakeFiles/horse_util_tests.dir/util/status_test.cpp.o.d"
  "CMakeFiles/horse_util_tests.dir/util/thread_pool_test.cpp.o"
  "CMakeFiles/horse_util_tests.dir/util/thread_pool_test.cpp.o.d"
  "CMakeFiles/horse_util_tests.dir/util/time_test.cpp.o"
  "CMakeFiles/horse_util_tests.dir/util/time_test.cpp.o.d"
  "horse_util_tests"
  "horse_util_tests.pdb"
  "horse_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
