# Empty dependencies file for horse_util_tests.
# This may be replaced when dependencies are built.
