
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stress/concurrent_stress_test.cpp" "tests/CMakeFiles/horse_stress_tests.dir/stress/concurrent_stress_test.cpp.o" "gcc" "tests/CMakeFiles/horse_stress_tests.dir/stress/concurrent_stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/faas/CMakeFiles/horse_faas.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/horse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/horse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/horse_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/horse_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/horse_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/horse_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/horse_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/horse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
