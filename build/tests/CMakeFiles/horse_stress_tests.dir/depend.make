# Empty dependencies file for horse_stress_tests.
# This may be replaced when dependencies are built.
