file(REMOVE_RECURSE
  "CMakeFiles/horse_stress_tests.dir/stress/concurrent_stress_test.cpp.o"
  "CMakeFiles/horse_stress_tests.dir/stress/concurrent_stress_test.cpp.o.d"
  "horse_stress_tests"
  "horse_stress_tests.pdb"
  "horse_stress_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_stress_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
