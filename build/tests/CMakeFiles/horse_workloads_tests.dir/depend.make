# Empty dependencies file for horse_workloads_tests.
# This may be replaced when dependencies are built.
