file(REMOVE_RECURSE
  "CMakeFiles/horse_workloads_tests.dir/workloads/extra_workloads_test.cpp.o"
  "CMakeFiles/horse_workloads_tests.dir/workloads/extra_workloads_test.cpp.o.d"
  "CMakeFiles/horse_workloads_tests.dir/workloads/workloads_test.cpp.o"
  "CMakeFiles/horse_workloads_tests.dir/workloads/workloads_test.cpp.o.d"
  "horse_workloads_tests"
  "horse_workloads_tests.pdb"
  "horse_workloads_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_workloads_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
