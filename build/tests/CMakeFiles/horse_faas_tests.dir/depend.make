# Empty dependencies file for horse_faas_tests.
# This may be replaced when dependencies are built.
