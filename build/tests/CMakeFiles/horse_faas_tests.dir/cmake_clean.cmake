file(REMOVE_RECURSE
  "CMakeFiles/horse_faas_tests.dir/faas/colocation_test.cpp.o"
  "CMakeFiles/horse_faas_tests.dir/faas/colocation_test.cpp.o.d"
  "CMakeFiles/horse_faas_tests.dir/faas/invoker_test.cpp.o"
  "CMakeFiles/horse_faas_tests.dir/faas/invoker_test.cpp.o.d"
  "CMakeFiles/horse_faas_tests.dir/faas/keepalive_policy_test.cpp.o"
  "CMakeFiles/horse_faas_tests.dir/faas/keepalive_policy_test.cpp.o.d"
  "CMakeFiles/horse_faas_tests.dir/faas/platform_test.cpp.o"
  "CMakeFiles/horse_faas_tests.dir/faas/platform_test.cpp.o.d"
  "CMakeFiles/horse_faas_tests.dir/faas/warm_pool_test.cpp.o"
  "CMakeFiles/horse_faas_tests.dir/faas/warm_pool_test.cpp.o.d"
  "horse_faas_tests"
  "horse_faas_tests.pdb"
  "horse_faas_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_faas_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
