# Empty dependencies file for horse_integration_tests.
# This may be replaced when dependencies are built.
