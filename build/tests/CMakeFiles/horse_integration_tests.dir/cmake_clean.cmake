file(REMOVE_RECURSE
  "CMakeFiles/horse_integration_tests.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/horse_integration_tests.dir/integration/end_to_end_test.cpp.o.d"
  "CMakeFiles/horse_integration_tests.dir/integration/failure_injection_test.cpp.o"
  "CMakeFiles/horse_integration_tests.dir/integration/failure_injection_test.cpp.o.d"
  "CMakeFiles/horse_integration_tests.dir/integration/shape_assertions_test.cpp.o"
  "CMakeFiles/horse_integration_tests.dir/integration/shape_assertions_test.cpp.o.d"
  "horse_integration_tests"
  "horse_integration_tests.pdb"
  "horse_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
