# Empty dependencies file for horse_sched_tests.
# This may be replaced when dependencies are built.
