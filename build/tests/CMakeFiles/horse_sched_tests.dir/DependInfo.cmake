
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched/credit2_test.cpp" "tests/CMakeFiles/horse_sched_tests.dir/sched/credit2_test.cpp.o" "gcc" "tests/CMakeFiles/horse_sched_tests.dir/sched/credit2_test.cpp.o.d"
  "/root/repo/tests/sched/dvfs_test.cpp" "tests/CMakeFiles/horse_sched_tests.dir/sched/dvfs_test.cpp.o" "gcc" "tests/CMakeFiles/horse_sched_tests.dir/sched/dvfs_test.cpp.o.d"
  "/root/repo/tests/sched/energy_test.cpp" "tests/CMakeFiles/horse_sched_tests.dir/sched/energy_test.cpp.o" "gcc" "tests/CMakeFiles/horse_sched_tests.dir/sched/energy_test.cpp.o.d"
  "/root/repo/tests/sched/idle_governor_test.cpp" "tests/CMakeFiles/horse_sched_tests.dir/sched/idle_governor_test.cpp.o" "gcc" "tests/CMakeFiles/horse_sched_tests.dir/sched/idle_governor_test.cpp.o.d"
  "/root/repo/tests/sched/load_balancer_test.cpp" "tests/CMakeFiles/horse_sched_tests.dir/sched/load_balancer_test.cpp.o" "gcc" "tests/CMakeFiles/horse_sched_tests.dir/sched/load_balancer_test.cpp.o.d"
  "/root/repo/tests/sched/pelt_entity_test.cpp" "tests/CMakeFiles/horse_sched_tests.dir/sched/pelt_entity_test.cpp.o" "gcc" "tests/CMakeFiles/horse_sched_tests.dir/sched/pelt_entity_test.cpp.o.d"
  "/root/repo/tests/sched/pelt_test.cpp" "tests/CMakeFiles/horse_sched_tests.dir/sched/pelt_test.cpp.o" "gcc" "tests/CMakeFiles/horse_sched_tests.dir/sched/pelt_test.cpp.o.d"
  "/root/repo/tests/sched/run_queue_test.cpp" "tests/CMakeFiles/horse_sched_tests.dir/sched/run_queue_test.cpp.o" "gcc" "tests/CMakeFiles/horse_sched_tests.dir/sched/run_queue_test.cpp.o.d"
  "/root/repo/tests/sched/sched_trace_test.cpp" "tests/CMakeFiles/horse_sched_tests.dir/sched/sched_trace_test.cpp.o" "gcc" "tests/CMakeFiles/horse_sched_tests.dir/sched/sched_trace_test.cpp.o.d"
  "/root/repo/tests/sched/topology_test.cpp" "tests/CMakeFiles/horse_sched_tests.dir/sched/topology_test.cpp.o" "gcc" "tests/CMakeFiles/horse_sched_tests.dir/sched/topology_test.cpp.o.d"
  "/root/repo/tests/sched/trace_integration_test.cpp" "tests/CMakeFiles/horse_sched_tests.dir/sched/trace_integration_test.cpp.o" "gcc" "tests/CMakeFiles/horse_sched_tests.dir/sched/trace_integration_test.cpp.o.d"
  "/root/repo/tests/sched/wake_preempt_test.cpp" "tests/CMakeFiles/horse_sched_tests.dir/sched/wake_preempt_test.cpp.o" "gcc" "tests/CMakeFiles/horse_sched_tests.dir/sched/wake_preempt_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/faas/CMakeFiles/horse_faas.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/horse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/horse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/horse_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/horse_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/horse_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/horse_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/horse_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/horse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
