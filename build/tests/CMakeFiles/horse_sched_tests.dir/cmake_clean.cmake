file(REMOVE_RECURSE
  "CMakeFiles/horse_sched_tests.dir/sched/credit2_test.cpp.o"
  "CMakeFiles/horse_sched_tests.dir/sched/credit2_test.cpp.o.d"
  "CMakeFiles/horse_sched_tests.dir/sched/dvfs_test.cpp.o"
  "CMakeFiles/horse_sched_tests.dir/sched/dvfs_test.cpp.o.d"
  "CMakeFiles/horse_sched_tests.dir/sched/energy_test.cpp.o"
  "CMakeFiles/horse_sched_tests.dir/sched/energy_test.cpp.o.d"
  "CMakeFiles/horse_sched_tests.dir/sched/idle_governor_test.cpp.o"
  "CMakeFiles/horse_sched_tests.dir/sched/idle_governor_test.cpp.o.d"
  "CMakeFiles/horse_sched_tests.dir/sched/load_balancer_test.cpp.o"
  "CMakeFiles/horse_sched_tests.dir/sched/load_balancer_test.cpp.o.d"
  "CMakeFiles/horse_sched_tests.dir/sched/pelt_entity_test.cpp.o"
  "CMakeFiles/horse_sched_tests.dir/sched/pelt_entity_test.cpp.o.d"
  "CMakeFiles/horse_sched_tests.dir/sched/pelt_test.cpp.o"
  "CMakeFiles/horse_sched_tests.dir/sched/pelt_test.cpp.o.d"
  "CMakeFiles/horse_sched_tests.dir/sched/run_queue_test.cpp.o"
  "CMakeFiles/horse_sched_tests.dir/sched/run_queue_test.cpp.o.d"
  "CMakeFiles/horse_sched_tests.dir/sched/sched_trace_test.cpp.o"
  "CMakeFiles/horse_sched_tests.dir/sched/sched_trace_test.cpp.o.d"
  "CMakeFiles/horse_sched_tests.dir/sched/topology_test.cpp.o"
  "CMakeFiles/horse_sched_tests.dir/sched/topology_test.cpp.o.d"
  "CMakeFiles/horse_sched_tests.dir/sched/trace_integration_test.cpp.o"
  "CMakeFiles/horse_sched_tests.dir/sched/trace_integration_test.cpp.o.d"
  "CMakeFiles/horse_sched_tests.dir/sched/wake_preempt_test.cpp.o"
  "CMakeFiles/horse_sched_tests.dir/sched/wake_preempt_test.cpp.o.d"
  "horse_sched_tests"
  "horse_sched_tests.pdb"
  "horse_sched_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_sched_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
