# Empty compiler generated dependencies file for horse_core_tests.
# This may be replaced when dependencies are built.
