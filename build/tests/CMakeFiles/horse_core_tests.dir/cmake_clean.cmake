file(REMOVE_RECURSE
  "CMakeFiles/horse_core_tests.dir/core/adaptive_ull_test.cpp.o"
  "CMakeFiles/horse_core_tests.dir/core/adaptive_ull_test.cpp.o.d"
  "CMakeFiles/horse_core_tests.dir/core/coalesce_test.cpp.o"
  "CMakeFiles/horse_core_tests.dir/core/coalesce_test.cpp.o.d"
  "CMakeFiles/horse_core_tests.dir/core/horse_resume_test.cpp.o"
  "CMakeFiles/horse_core_tests.dir/core/horse_resume_test.cpp.o.d"
  "CMakeFiles/horse_core_tests.dir/core/merge_crew_test.cpp.o"
  "CMakeFiles/horse_core_tests.dir/core/merge_crew_test.cpp.o.d"
  "CMakeFiles/horse_core_tests.dir/core/p2sm_test.cpp.o"
  "CMakeFiles/horse_core_tests.dir/core/p2sm_test.cpp.o.d"
  "CMakeFiles/horse_core_tests.dir/core/ull_manager_test.cpp.o"
  "CMakeFiles/horse_core_tests.dir/core/ull_manager_test.cpp.o.d"
  "horse_core_tests"
  "horse_core_tests.pdb"
  "horse_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
