# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/horse_util_tests[1]_include.cmake")
include("/root/repo/build/tests/horse_metrics_tests[1]_include.cmake")
include("/root/repo/build/tests/horse_sched_tests[1]_include.cmake")
include("/root/repo/build/tests/horse_vmm_tests[1]_include.cmake")
include("/root/repo/build/tests/horse_core_tests[1]_include.cmake")
include("/root/repo/build/tests/horse_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/horse_trace_tests[1]_include.cmake")
include("/root/repo/build/tests/horse_workloads_tests[1]_include.cmake")
include("/root/repo/build/tests/horse_faas_tests[1]_include.cmake")
include("/root/repo/build/tests/horse_property_tests[1]_include.cmake")
include("/root/repo/build/tests/horse_integration_tests[1]_include.cmake")
include("/root/repo/build/tests/horse_stress_tests[1]_include.cmake")
