file(REMOVE_RECURSE
  "CMakeFiles/horse_faas.dir/colocation.cpp.o"
  "CMakeFiles/horse_faas.dir/colocation.cpp.o.d"
  "CMakeFiles/horse_faas.dir/keepalive_policy.cpp.o"
  "CMakeFiles/horse_faas.dir/keepalive_policy.cpp.o.d"
  "CMakeFiles/horse_faas.dir/platform.cpp.o"
  "CMakeFiles/horse_faas.dir/platform.cpp.o.d"
  "CMakeFiles/horse_faas.dir/warm_pool.cpp.o"
  "CMakeFiles/horse_faas.dir/warm_pool.cpp.o.d"
  "libhorse_faas.a"
  "libhorse_faas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
