# Empty dependencies file for horse_faas.
# This may be replaced when dependencies are built.
