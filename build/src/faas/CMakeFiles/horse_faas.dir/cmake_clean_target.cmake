file(REMOVE_RECURSE
  "libhorse_faas.a"
)
