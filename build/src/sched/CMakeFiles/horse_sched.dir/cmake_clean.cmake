file(REMOVE_RECURSE
  "CMakeFiles/horse_sched.dir/credit2.cpp.o"
  "CMakeFiles/horse_sched.dir/credit2.cpp.o.d"
  "CMakeFiles/horse_sched.dir/energy.cpp.o"
  "CMakeFiles/horse_sched.dir/energy.cpp.o.d"
  "CMakeFiles/horse_sched.dir/idle_governor.cpp.o"
  "CMakeFiles/horse_sched.dir/idle_governor.cpp.o.d"
  "CMakeFiles/horse_sched.dir/load_balancer.cpp.o"
  "CMakeFiles/horse_sched.dir/load_balancer.cpp.o.d"
  "CMakeFiles/horse_sched.dir/pelt_entity.cpp.o"
  "CMakeFiles/horse_sched.dir/pelt_entity.cpp.o.d"
  "CMakeFiles/horse_sched.dir/run_queue.cpp.o"
  "CMakeFiles/horse_sched.dir/run_queue.cpp.o.d"
  "CMakeFiles/horse_sched.dir/sched_trace.cpp.o"
  "CMakeFiles/horse_sched.dir/sched_trace.cpp.o.d"
  "libhorse_sched.a"
  "libhorse_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
