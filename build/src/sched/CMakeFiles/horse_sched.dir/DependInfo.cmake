
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/credit2.cpp" "src/sched/CMakeFiles/horse_sched.dir/credit2.cpp.o" "gcc" "src/sched/CMakeFiles/horse_sched.dir/credit2.cpp.o.d"
  "/root/repo/src/sched/energy.cpp" "src/sched/CMakeFiles/horse_sched.dir/energy.cpp.o" "gcc" "src/sched/CMakeFiles/horse_sched.dir/energy.cpp.o.d"
  "/root/repo/src/sched/idle_governor.cpp" "src/sched/CMakeFiles/horse_sched.dir/idle_governor.cpp.o" "gcc" "src/sched/CMakeFiles/horse_sched.dir/idle_governor.cpp.o.d"
  "/root/repo/src/sched/load_balancer.cpp" "src/sched/CMakeFiles/horse_sched.dir/load_balancer.cpp.o" "gcc" "src/sched/CMakeFiles/horse_sched.dir/load_balancer.cpp.o.d"
  "/root/repo/src/sched/pelt_entity.cpp" "src/sched/CMakeFiles/horse_sched.dir/pelt_entity.cpp.o" "gcc" "src/sched/CMakeFiles/horse_sched.dir/pelt_entity.cpp.o.d"
  "/root/repo/src/sched/run_queue.cpp" "src/sched/CMakeFiles/horse_sched.dir/run_queue.cpp.o" "gcc" "src/sched/CMakeFiles/horse_sched.dir/run_queue.cpp.o.d"
  "/root/repo/src/sched/sched_trace.cpp" "src/sched/CMakeFiles/horse_sched.dir/sched_trace.cpp.o" "gcc" "src/sched/CMakeFiles/horse_sched.dir/sched_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/horse_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/horse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
