file(REMOVE_RECURSE
  "libhorse_sched.a"
)
