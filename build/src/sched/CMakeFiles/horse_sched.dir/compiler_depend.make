# Empty compiler generated dependencies file for horse_sched.
# This may be replaced when dependencies are built.
