
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/array_filter.cpp" "src/workloads/CMakeFiles/horse_workloads.dir/array_filter.cpp.o" "gcc" "src/workloads/CMakeFiles/horse_workloads.dir/array_filter.cpp.o.d"
  "/root/repo/src/workloads/cpu_burner.cpp" "src/workloads/CMakeFiles/horse_workloads.dir/cpu_burner.cpp.o" "gcc" "src/workloads/CMakeFiles/horse_workloads.dir/cpu_burner.cpp.o.d"
  "/root/repo/src/workloads/firewall.cpp" "src/workloads/CMakeFiles/horse_workloads.dir/firewall.cpp.o" "gcc" "src/workloads/CMakeFiles/horse_workloads.dir/firewall.cpp.o.d"
  "/root/repo/src/workloads/kv_store.cpp" "src/workloads/CMakeFiles/horse_workloads.dir/kv_store.cpp.o" "gcc" "src/workloads/CMakeFiles/horse_workloads.dir/kv_store.cpp.o.d"
  "/root/repo/src/workloads/ml_inference.cpp" "src/workloads/CMakeFiles/horse_workloads.dir/ml_inference.cpp.o" "gcc" "src/workloads/CMakeFiles/horse_workloads.dir/ml_inference.cpp.o.d"
  "/root/repo/src/workloads/nat.cpp" "src/workloads/CMakeFiles/horse_workloads.dir/nat.cpp.o" "gcc" "src/workloads/CMakeFiles/horse_workloads.dir/nat.cpp.o.d"
  "/root/repo/src/workloads/thumbnail.cpp" "src/workloads/CMakeFiles/horse_workloads.dir/thumbnail.cpp.o" "gcc" "src/workloads/CMakeFiles/horse_workloads.dir/thumbnail.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/horse_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/horse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
