file(REMOVE_RECURSE
  "libhorse_workloads.a"
)
