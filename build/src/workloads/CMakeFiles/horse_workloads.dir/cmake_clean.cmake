file(REMOVE_RECURSE
  "CMakeFiles/horse_workloads.dir/array_filter.cpp.o"
  "CMakeFiles/horse_workloads.dir/array_filter.cpp.o.d"
  "CMakeFiles/horse_workloads.dir/cpu_burner.cpp.o"
  "CMakeFiles/horse_workloads.dir/cpu_burner.cpp.o.d"
  "CMakeFiles/horse_workloads.dir/firewall.cpp.o"
  "CMakeFiles/horse_workloads.dir/firewall.cpp.o.d"
  "CMakeFiles/horse_workloads.dir/kv_store.cpp.o"
  "CMakeFiles/horse_workloads.dir/kv_store.cpp.o.d"
  "CMakeFiles/horse_workloads.dir/ml_inference.cpp.o"
  "CMakeFiles/horse_workloads.dir/ml_inference.cpp.o.d"
  "CMakeFiles/horse_workloads.dir/nat.cpp.o"
  "CMakeFiles/horse_workloads.dir/nat.cpp.o.d"
  "CMakeFiles/horse_workloads.dir/thumbnail.cpp.o"
  "CMakeFiles/horse_workloads.dir/thumbnail.cpp.o.d"
  "libhorse_workloads.a"
  "libhorse_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
