# Empty compiler generated dependencies file for horse_workloads.
# This may be replaced when dependencies are built.
