# Empty dependencies file for horse_util.
# This may be replaced when dependencies are built.
