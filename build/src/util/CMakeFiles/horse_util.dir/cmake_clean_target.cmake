file(REMOVE_RECURSE
  "libhorse_util.a"
)
