file(REMOVE_RECURSE
  "CMakeFiles/horse_util.dir/thread_pool.cpp.o"
  "CMakeFiles/horse_util.dir/thread_pool.cpp.o.d"
  "libhorse_util.a"
  "libhorse_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
