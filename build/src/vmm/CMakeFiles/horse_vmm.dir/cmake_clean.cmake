file(REMOVE_RECURSE
  "CMakeFiles/horse_vmm.dir/api.cpp.o"
  "CMakeFiles/horse_vmm.dir/api.cpp.o.d"
  "CMakeFiles/horse_vmm.dir/resume_engine.cpp.o"
  "CMakeFiles/horse_vmm.dir/resume_engine.cpp.o.d"
  "CMakeFiles/horse_vmm.dir/sandbox.cpp.o"
  "CMakeFiles/horse_vmm.dir/sandbox.cpp.o.d"
  "CMakeFiles/horse_vmm.dir/snapshot.cpp.o"
  "CMakeFiles/horse_vmm.dir/snapshot.cpp.o.d"
  "CMakeFiles/horse_vmm.dir/xenstore.cpp.o"
  "CMakeFiles/horse_vmm.dir/xenstore.cpp.o.d"
  "libhorse_vmm.a"
  "libhorse_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
