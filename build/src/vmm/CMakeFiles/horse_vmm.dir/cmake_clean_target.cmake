file(REMOVE_RECURSE
  "libhorse_vmm.a"
)
