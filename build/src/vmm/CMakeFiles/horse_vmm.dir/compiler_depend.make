# Empty compiler generated dependencies file for horse_vmm.
# This may be replaced when dependencies are built.
