
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmm/api.cpp" "src/vmm/CMakeFiles/horse_vmm.dir/api.cpp.o" "gcc" "src/vmm/CMakeFiles/horse_vmm.dir/api.cpp.o.d"
  "/root/repo/src/vmm/resume_engine.cpp" "src/vmm/CMakeFiles/horse_vmm.dir/resume_engine.cpp.o" "gcc" "src/vmm/CMakeFiles/horse_vmm.dir/resume_engine.cpp.o.d"
  "/root/repo/src/vmm/sandbox.cpp" "src/vmm/CMakeFiles/horse_vmm.dir/sandbox.cpp.o" "gcc" "src/vmm/CMakeFiles/horse_vmm.dir/sandbox.cpp.o.d"
  "/root/repo/src/vmm/snapshot.cpp" "src/vmm/CMakeFiles/horse_vmm.dir/snapshot.cpp.o" "gcc" "src/vmm/CMakeFiles/horse_vmm.dir/snapshot.cpp.o.d"
  "/root/repo/src/vmm/xenstore.cpp" "src/vmm/CMakeFiles/horse_vmm.dir/xenstore.cpp.o" "gcc" "src/vmm/CMakeFiles/horse_vmm.dir/xenstore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/horse_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/horse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/horse_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
