file(REMOVE_RECURSE
  "CMakeFiles/horse_sim.dir/cost_model.cpp.o"
  "CMakeFiles/horse_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/horse_sim.dir/cpu_executor.cpp.o"
  "CMakeFiles/horse_sim.dir/cpu_executor.cpp.o.d"
  "CMakeFiles/horse_sim.dir/server.cpp.o"
  "CMakeFiles/horse_sim.dir/server.cpp.o.d"
  "CMakeFiles/horse_sim.dir/simulation.cpp.o"
  "CMakeFiles/horse_sim.dir/simulation.cpp.o.d"
  "libhorse_sim.a"
  "libhorse_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
