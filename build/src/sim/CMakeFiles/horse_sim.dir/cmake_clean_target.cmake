file(REMOVE_RECURSE
  "libhorse_sim.a"
)
