# Empty dependencies file for horse_sim.
# This may be replaced when dependencies are built.
