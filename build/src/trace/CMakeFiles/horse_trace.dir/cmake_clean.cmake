file(REMOVE_RECURSE
  "CMakeFiles/horse_trace.dir/azure_reader.cpp.o"
  "CMakeFiles/horse_trace.dir/azure_reader.cpp.o.d"
  "CMakeFiles/horse_trace.dir/duration_reader.cpp.o"
  "CMakeFiles/horse_trace.dir/duration_reader.cpp.o.d"
  "CMakeFiles/horse_trace.dir/synthetic.cpp.o"
  "CMakeFiles/horse_trace.dir/synthetic.cpp.o.d"
  "CMakeFiles/horse_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/horse_trace.dir/trace_stats.cpp.o.d"
  "libhorse_trace.a"
  "libhorse_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
