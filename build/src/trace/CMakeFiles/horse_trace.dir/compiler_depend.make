# Empty compiler generated dependencies file for horse_trace.
# This may be replaced when dependencies are built.
