file(REMOVE_RECURSE
  "libhorse_trace.a"
)
