file(REMOVE_RECURSE
  "CMakeFiles/horse_core.dir/adaptive_ull.cpp.o"
  "CMakeFiles/horse_core.dir/adaptive_ull.cpp.o.d"
  "CMakeFiles/horse_core.dir/horse_resume.cpp.o"
  "CMakeFiles/horse_core.dir/horse_resume.cpp.o.d"
  "CMakeFiles/horse_core.dir/merge_crew.cpp.o"
  "CMakeFiles/horse_core.dir/merge_crew.cpp.o.d"
  "CMakeFiles/horse_core.dir/p2sm.cpp.o"
  "CMakeFiles/horse_core.dir/p2sm.cpp.o.d"
  "CMakeFiles/horse_core.dir/ull_manager.cpp.o"
  "CMakeFiles/horse_core.dir/ull_manager.cpp.o.d"
  "libhorse_core.a"
  "libhorse_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
