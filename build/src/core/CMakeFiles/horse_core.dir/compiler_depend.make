# Empty compiler generated dependencies file for horse_core.
# This may be replaced when dependencies are built.
