
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_ull.cpp" "src/core/CMakeFiles/horse_core.dir/adaptive_ull.cpp.o" "gcc" "src/core/CMakeFiles/horse_core.dir/adaptive_ull.cpp.o.d"
  "/root/repo/src/core/horse_resume.cpp" "src/core/CMakeFiles/horse_core.dir/horse_resume.cpp.o" "gcc" "src/core/CMakeFiles/horse_core.dir/horse_resume.cpp.o.d"
  "/root/repo/src/core/merge_crew.cpp" "src/core/CMakeFiles/horse_core.dir/merge_crew.cpp.o" "gcc" "src/core/CMakeFiles/horse_core.dir/merge_crew.cpp.o.d"
  "/root/repo/src/core/p2sm.cpp" "src/core/CMakeFiles/horse_core.dir/p2sm.cpp.o" "gcc" "src/core/CMakeFiles/horse_core.dir/p2sm.cpp.o.d"
  "/root/repo/src/core/ull_manager.cpp" "src/core/CMakeFiles/horse_core.dir/ull_manager.cpp.o" "gcc" "src/core/CMakeFiles/horse_core.dir/ull_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vmm/CMakeFiles/horse_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/horse_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/horse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/horse_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
