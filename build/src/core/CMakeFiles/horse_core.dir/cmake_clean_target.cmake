file(REMOVE_RECURSE
  "libhorse_core.a"
)
