# Empty compiler generated dependencies file for horse_metrics.
# This may be replaced when dependencies are built.
