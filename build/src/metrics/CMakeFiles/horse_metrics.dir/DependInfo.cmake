
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/csv.cpp" "src/metrics/CMakeFiles/horse_metrics.dir/csv.cpp.o" "gcc" "src/metrics/CMakeFiles/horse_metrics.dir/csv.cpp.o.d"
  "/root/repo/src/metrics/histogram.cpp" "src/metrics/CMakeFiles/horse_metrics.dir/histogram.cpp.o" "gcc" "src/metrics/CMakeFiles/horse_metrics.dir/histogram.cpp.o.d"
  "/root/repo/src/metrics/reporter.cpp" "src/metrics/CMakeFiles/horse_metrics.dir/reporter.cpp.o" "gcc" "src/metrics/CMakeFiles/horse_metrics.dir/reporter.cpp.o.d"
  "/root/repo/src/metrics/stats.cpp" "src/metrics/CMakeFiles/horse_metrics.dir/stats.cpp.o" "gcc" "src/metrics/CMakeFiles/horse_metrics.dir/stats.cpp.o.d"
  "/root/repo/src/metrics/time_series.cpp" "src/metrics/CMakeFiles/horse_metrics.dir/time_series.cpp.o" "gcc" "src/metrics/CMakeFiles/horse_metrics.dir/time_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/horse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
