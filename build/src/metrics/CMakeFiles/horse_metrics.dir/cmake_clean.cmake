file(REMOVE_RECURSE
  "CMakeFiles/horse_metrics.dir/csv.cpp.o"
  "CMakeFiles/horse_metrics.dir/csv.cpp.o.d"
  "CMakeFiles/horse_metrics.dir/histogram.cpp.o"
  "CMakeFiles/horse_metrics.dir/histogram.cpp.o.d"
  "CMakeFiles/horse_metrics.dir/reporter.cpp.o"
  "CMakeFiles/horse_metrics.dir/reporter.cpp.o.d"
  "CMakeFiles/horse_metrics.dir/stats.cpp.o"
  "CMakeFiles/horse_metrics.dir/stats.cpp.o.d"
  "CMakeFiles/horse_metrics.dir/time_series.cpp.o"
  "CMakeFiles/horse_metrics.dir/time_series.cpp.o.d"
  "libhorse_metrics.a"
  "libhorse_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horse_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
