file(REMOVE_RECURSE
  "libhorse_metrics.a"
)
