file(REMOVE_RECURSE
  "CMakeFiles/horsectl.dir/horsectl.cpp.o"
  "CMakeFiles/horsectl.dir/horsectl.cpp.o.d"
  "horsectl"
  "horsectl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horsectl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
