# Empty compiler generated dependencies file for horsectl.
# This may be replaced when dependencies are built.
