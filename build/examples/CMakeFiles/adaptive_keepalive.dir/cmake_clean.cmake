file(REMOVE_RECURSE
  "CMakeFiles/adaptive_keepalive.dir/adaptive_keepalive.cpp.o"
  "CMakeFiles/adaptive_keepalive.dir/adaptive_keepalive.cpp.o.d"
  "adaptive_keepalive"
  "adaptive_keepalive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_keepalive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
