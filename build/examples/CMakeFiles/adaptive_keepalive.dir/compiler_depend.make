# Empty compiler generated dependencies file for adaptive_keepalive.
# This may be replaced when dependencies are built.
