file(REMOVE_RECURSE
  "CMakeFiles/ull_colocation.dir/ull_colocation.cpp.o"
  "CMakeFiles/ull_colocation.dir/ull_colocation.cpp.o.d"
  "ull_colocation"
  "ull_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ull_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
