# Empty compiler generated dependencies file for ull_colocation.
# This may be replaced when dependencies are built.
