// Macro benchmark (ours) — closed-loop control-plane throughput scaling,
// single-host and multi-host.
//
// Single-host mode (--hosts 0, the default) measures the sharded control
// plane's scaling claim: N submit threads driving disjoint function sets
// should deliver ~N× the aggregate invocations/sec of one thread (until
// real cores run out):
//
//   * F functions (mixed uLL / plain), each provisioned with a small warm
//     pool and snapshot;
//   * T closed-loop submit threads, each owning the functions
//     {t, t+T, t+2T, ...} so threads map onto disjoint control shards;
//   * a fixed per-thread invocation count with a steady mode mix (mostly
//     kHorse for uLL / kWarm for plain, a sprinkle of kCold + kRestore);
//   * results as a table plus optional CSV (--csv), including the shard
//     and ull-manager lock contention fractions that explain any
//     sub-linear scaling. Contention and occupancy come from ONE
//     control-plane snapshot so each reported row is internally
//     consistent (occupancy read separately from the contention counters
//     could straddle concurrent assign/untrack calls).
//
// Cluster mode (--hosts N, N >= 1) runs the same workload through the
// multi-host ClusterScheduler and reports per-host dispatch-latency
// percentiles — the E18 policy × dispatch-mode matrix:
//
//   macro_throughput --hosts 4 --policy rr|least_loaded|most_warm
//                    --dispatch push|pull [--skew] [--csv out.csv]
//
// --skew switches the closed-loop mix to the 90/10 shape (90% tiny uLL
// kHorse requests, 10% cold starts of a plain function, thousands of
// times slower): under push the long requests convoy short ones behind
// them on the early-bound host, under pull an idle host takes the next
// request the moment a worker frees — E18's expectation is a visibly
// lower p99 for pull under this skew.
//
// Overload mode (--overload-sweep, cluster only) is the E19 driver: it
// first calibrates the cluster's closed-loop capacity (no deadlines, no
// pacing), then replays the same mix open-loop at {0.8x, 1.2x, 2.0x} of
// that capacity with a per-request deadline (--deadline-us, default
// 5 ms). Each submission carries deadline = now + slack, so past
// saturation the admission path sheds (typed kQueueShed/kQueueFull) and
// the dispatcher expires stale queue entries instead of wasting workers
// on work the caller already abandoned. The CSV reports per-load goodput
// (deadline-met completions/s), shed/expiry counts, and breaker opens;
// with admission enabled the bench FAILS if goodput past saturation
// drops below 90% of the peak row — the graceful-degradation gate CI
// enforces. --no-admission runs the same sweep with cluster admission
// off for the baseline column.
//
// CI runs single-host --threads 1/8 plus a --hosts 4 cluster smoke in
// both dispatch modes, archiving the CSVs.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/scheduler.hpp"
#include "faas/platform.hpp"
#include "metrics/csv.hpp"
#include "metrics/reporter.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "workloads/array_filter.hpp"
#include "workloads/nat.hpp"

namespace {

using namespace horse;

struct Options {
  std::size_t threads = 4;
  std::size_t per_thread = 2000;
  std::size_t functions = 16;
  std::size_t cpus = 16;
  std::uint32_t ull_queues = 4;
  std::size_t provision = 4;
  std::string csv_path;
  // --- cluster mode (0 hosts = legacy single-host path) -------------------
  std::size_t hosts = 0;
  std::size_t workers_per_host = 2;
  cluster::PolicyKind policy = cluster::PolicyKind::kRoundRobin;
  cluster::DispatchMode dispatch = cluster::DispatchMode::kPush;
  bool skew = false;
  std::uint64_t seed = 42;
  // --- overload control (cluster mode) ------------------------------------
  /// Relative per-request deadline in microseconds (0 = none).
  std::uint64_t deadline_us = 0;
  /// Calibrate capacity, then sweep {0.8x, 1.2x, 2.0x} offered load.
  bool overload_sweep = false;
  /// Cluster admission control (--no-admission turns it off: baseline).
  bool admission = true;
};

Options parse_args(int argc, char** argv) {
  Options options;
  const auto usage = [] {
    std::cerr << "usage: macro_throughput [--threads N] [--per-thread M]\n"
                 "    [--functions F] [--cpus C] [--ull-queues Q]\n"
                 "    [--provision P] [--csv PATH]\n"
                 "    [--hosts H] [--workers-per-host W]\n"
                 "    [--policy rr|least_loaded|most_warm]\n"
                 "    [--dispatch push|pull] [--skew] [--seed S]\n"
                 "    [--deadline-us D] [--overload-sweep] [--no-admission]\n";
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      options.threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--per-thread") {
      options.per_thread = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--functions") {
      options.functions = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--cpus") {
      options.cpus = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--ull-queues") {
      options.ull_queues =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--provision") {
      options.provision = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--csv") {
      options.csv_path = next();
    } else if (arg == "--hosts") {
      options.hosts = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--workers-per-host") {
      options.workers_per_host = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--policy") {
      const auto policy = cluster::parse_policy(next());
      if (!policy) {
        std::cerr << policy.status().to_report() << "\n";
        std::exit(2);
      }
      options.policy = *policy;
    } else if (arg == "--dispatch") {
      const auto mode = cluster::parse_dispatch_mode(next());
      if (!mode) {
        std::cerr << mode.status().to_report() << "\n";
        std::exit(2);
      }
      options.dispatch = *mode;
    } else if (arg == "--skew") {
      options.skew = true;
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--deadline-us") {
      options.deadline_us = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--overload-sweep") {
      options.overload_sweep = true;
    } else if (arg == "--no-admission") {
      options.admission = false;
    } else {
      usage();
    }
  }
  if (options.overload_sweep) {
    if (options.hosts == 0) {
      std::cerr << "--overload-sweep requires cluster mode (--hosts N)\n";
      std::exit(2);
    }
    if (options.deadline_us == 0) {
      options.deadline_us = 5000;  // 5 ms of slack by default
    }
  }
  return options;
}

workloads::Request filter_request() {
  workloads::Request request;
  request.payload = {5, 10, 15, 20};
  request.threshold = 7;
  return request;
}

workloads::Request packet_request() {
  workloads::Request request;
  request.header = "src=10.0.0.1 dst=10.0.0.2 port=443 proto=tcp";
  return request;
}

faas::FunctionSpec make_spec(std::size_t index, bool ull) {
  faas::FunctionSpec spec;
  spec.name = (ull ? "nat-" : "filter-") + std::to_string(index);
  if (ull) {
    spec.implementation = std::make_shared<workloads::NatFunction>(64);
  } else {
    spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  }
  spec.sandbox.name = spec.name + "-sb";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = ull;
  return spec;
}

// ---------------------------------------------------------------------------
// Single-host path (--hosts 0): the original sharded-control-plane bench.
// ---------------------------------------------------------------------------

int run_single_host(const Options& options) {
  faas::PlatformConfig config;
  config.num_cpus = options.cpus;
  config.horse.num_ull_runqueues = options.ull_queues;
  // Substrate constructors throw on invalid configs (queues > cpus,
  // zero queues, ...); surface that as a usage error, not a terminate.
  std::optional<faas::Platform> platform_storage;
  try {
    platform_storage.emplace(config);
  } catch (const std::exception& error) {
    std::cerr << "invalid configuration: " << error.what() << "\n";
    return 2;
  }
  faas::Platform& platform = *platform_storage;

  // Register F functions: even ids are uLL packet functions (kHorse-able),
  // odd ids are plain filter functions (kWarm ceiling).
  struct Fn {
    faas::FunctionId id = 0;
    bool ull = false;
  };
  std::vector<Fn> functions;
  for (std::size_t i = 0; i < options.functions; ++i) {
    const bool ull = (i % 2) == 0;
    const auto id = platform.registry().add(make_spec(i, ull));
    if (!id) {
      std::cerr << "register failed: " << id.status().to_report() << "\n";
      return 1;
    }
    functions.push_back({*id, ull});
    if (!platform.provision(*id, options.provision).is_ok() ||
        !platform.ensure_snapshot(*id).is_ok()) {
      std::cerr << "provision failed for function " << *id << "\n";
      return 1;
    }
  }

  // Closed-loop submit threads over disjoint function sets.
  const std::size_t threads = std::min(options.threads, functions.size());
  std::vector<std::jthread> submitters;
  const util::Nanos started = util::monotonic_now();
  for (std::size_t t = 0; t < threads; ++t) {
    submitters.emplace_back([&platform, &functions, &options, t, threads] {
      // Thread t owns functions {t, t+T, t+2T, ...}: disjoint shards.
      std::vector<const Fn*> mine;
      for (std::size_t j = t; j < functions.size(); j += threads) {
        mine.push_back(&functions[j]);
      }
      for (std::size_t i = 0; i < options.per_thread; ++i) {
        const Fn& fn = *mine[i % mine.size()];
        faas::StartMode mode;
        if (i % 64 == 63) {
          mode = faas::StartMode::kCold;
        } else if (i % 64 == 31) {
          mode = faas::StartMode::kRestore;
        } else {
          mode = fn.ull ? faas::StartMode::kHorse : faas::StartMode::kWarm;
        }
        const auto record =
            platform.invoke(fn.id, fn.ull ? packet_request() : filter_request(),
                            mode);
        (void)record;  // failures are counted by the platform
      }
    });
  }
  submitters.clear();  // join
  const double wall_seconds =
      static_cast<double>(util::monotonic_now() - started) / 1e9;

  const faas::PlatformCounters counters = platform.counters();
  // One consistent control-plane snapshot: the shard contention, the
  // ull-manager contention, and the reserved-queue occupancy in a single
  // reported row all describe the same instant.
  const faas::ControlPlaneSnapshot plane = platform.control_plane_snapshot();
  std::size_t ull_paused = 0;
  for (const auto& queue : plane.ull.occupancy) {
    ull_paused += queue.paused;
  }
  const double inv_per_sec =
      wall_seconds > 0.0
          ? static_cast<double>(counters.invocations) / wall_seconds
          : 0.0;

  metrics::TextTable table(
      "Macro: closed-loop control-plane throughput",
      {"threads", "invocations", "wall (s)", "inv/s", "cold", "restore",
       "warm", "horse", "failed", "shard contended", "ull contended",
       "ull paused"});
  table.add_row({std::to_string(threads), std::to_string(counters.invocations),
                 metrics::format_double(wall_seconds, 3),
                 metrics::format_double(inv_per_sec, 1),
                 std::to_string(counters.cold),
                 std::to_string(counters.restore),
                 std::to_string(counters.warm),
                 std::to_string(counters.horse),
                 std::to_string(counters.failed),
                 metrics::format_double(
                     plane.shard_contention.contended_fraction(), 4),
                 metrics::format_double(
                     plane.ull.contention.contended_fraction(), 4),
                 std::to_string(ull_paused)});
  table.print(std::cout);

  if (!options.csv_path.empty()) {
    metrics::CsvWriter csv(
        {"threads", "invocations", "wall_seconds", "inv_per_sec", "cold",
         "restore", "warm", "horse", "failed", "shard_contended_fraction",
         "ull_contended_fraction", "ull_paused"});
    csv.add_numeric_row({static_cast<double>(threads),
                         static_cast<double>(counters.invocations),
                         wall_seconds, inv_per_sec,
                         static_cast<double>(counters.cold),
                         static_cast<double>(counters.restore),
                         static_cast<double>(counters.warm),
                         static_cast<double>(counters.horse),
                         static_cast<double>(counters.failed),
                         plane.shard_contention.contended_fraction(),
                         plane.ull.contention.contended_fraction(),
                         static_cast<double>(ull_paused)});
    if (const auto status = csv.write_file(options.csv_path);
        !status.is_ok()) {
      std::cerr << "csv write failed: " << status.to_report() << "\n";
      return 1;
    }
  }

  // Closed-loop sanity: every submitted invocation must be accounted for.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(threads) * options.per_thread;
  if (counters.invocations + counters.failed != expected) {
    std::cerr << "accounting mismatch: " << counters.invocations << " ok + "
              << counters.failed << " failed != " << expected << "\n";
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Cluster path (--hosts N): the E18 policy × dispatch-mode matrix cell.
// ---------------------------------------------------------------------------

struct ClusterFn {
  faas::FunctionId id = 0;
  bool ull = false;
};

/// Shared cluster setup for the smoke run and the overload sweep: build
/// the scheduler and register/provision the function fleet. Function 0 is
/// the hot uLL function the skewed mix hammers; the rest alternate
/// uLL/plain as in single-host mode. Returns 0 on success.
int setup_cluster(const Options& options,
                  std::optional<cluster::ClusterScheduler>& cluster_storage,
                  std::vector<ClusterFn>& functions) {
  cluster::ClusterConfig config;
  config.num_hosts = options.hosts;
  config.workers_per_host = options.workers_per_host;
  config.dispatch = options.dispatch;
  config.policy = options.policy;
  config.admission.enabled = options.admission;
  config.platform.num_cpus = options.cpus;
  config.platform.horse.num_ull_runqueues = options.ull_queues;
  config.platform.seed = options.seed;
  // The skewed mix cold-starts one function in volume; parked sandboxes
  // beyond the cap would fail the park and pollute the outcome counts.
  config.platform.warm_pool.max_per_function = 1 << 16;

  try {
    cluster_storage.emplace(config);
  } catch (const std::exception& error) {
    std::cerr << "invalid configuration: " << error.what() << "\n";
    return 2;
  }
  cluster::ClusterScheduler& sched = *cluster_storage;

  functions.clear();
  for (std::size_t i = 0; i < std::max<std::size_t>(2, options.functions);
       ++i) {
    const bool ull = (i % 2) == 0;
    const auto id =
        sched.register_function([i, ull] { return make_spec(i, ull); });
    if (!id) {
      std::cerr << "register failed: " << id.status().to_report() << "\n";
      return 1;
    }
    functions.push_back({*id, ull});
    if (!sched.provision(*id, options.provision).is_ok() ||
        !sched.ensure_snapshot(*id).is_ok()) {
      std::cerr << "provision failed for function " << *id << "\n";
      return 1;
    }
  }
  return 0;
}

int run_cluster(const Options& options) {
  std::optional<cluster::ClusterScheduler> cluster_storage;
  std::vector<ClusterFn> functions;
  if (const int rc = setup_cluster(options, cluster_storage, functions);
      rc != 0) {
    return rc;
  }
  cluster::ClusterScheduler& sched = *cluster_storage;

  const util::Nanos deadline_rel =
      static_cast<util::Nanos>(options.deadline_us) * util::kMicrosecond;
  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  std::vector<std::jthread> submitters;
  const util::Nanos started = util::monotonic_now();
  for (std::size_t t = 0; t < threads; ++t) {
    submitters.emplace_back([&sched, &functions, &options, deadline_rel, t] {
      util::Xoshiro256 rng(options.seed + t * 1000003ULL);
      // Absolute deadline = submit instant + the requested slack; 0 keeps
      // the legacy no-deadline path (never shed, never expired).
      const auto deadline = [deadline_rel]() -> util::Nanos {
        return deadline_rel == 0 ? 0 : util::monotonic_now() + deadline_rel;
      };
      for (std::size_t i = 0; i < options.per_thread; ++i) {
        if (options.skew) {
          // The 90/10 shape: 90% tiny kHorse resumes of the hot uLL
          // function, 10% cold starts of a plain function — orders of
          // magnitude slower, the head-of-line blockers push suffers.
          if (rng.uniform01() < 0.9) {
            sched.submit(functions[0].id, packet_request(),
                         faas::StartMode::kHorse, deadline());
          } else {
            sched.submit(functions[1].id, filter_request(),
                         faas::StartMode::kCold, deadline());
          }
        } else {
          const ClusterFn& fn = functions[(t + i) % functions.size()];
          faas::StartMode mode;
          if (i % 64 == 63) {
            mode = faas::StartMode::kCold;
          } else {
            mode = fn.ull ? faas::StartMode::kHorse : faas::StartMode::kWarm;
          }
          sched.submit(fn.id, fn.ull ? packet_request() : filter_request(),
                       mode, deadline());
        }
      }
    });
  }
  submitters.clear();  // join
  const auto outcomes = sched.drain();
  const double wall_seconds =
      static_cast<double>(util::monotonic_now() - started) / 1e9;

  std::uint64_t failed = 0;
  std::uint64_t met = 0;
  std::uint64_t late = 0;
  metrics::Histogram cluster_queueing;
  for (const auto& outcome : outcomes) {
    failed += outcome.status.is_ok() ? 0 : 1;
    cluster_queueing.record(outcome.queueing);
    if (deadline_rel != 0 && outcome.status.is_ok()) {
      // A completion met its deadline when queueing + init + execution
      // fit inside the slack it was submitted with.
      const util::Nanos finish_rel = outcome.queueing +
                                     outcome.record.init_time +
                                     outcome.record.exec_time;
      (finish_rel <= deadline_rel ? met : late)++;
    }
  }
  const cluster::ClusterStats stats = sched.stats();
  std::uint64_t breaker_opens = 0;
  for (std::size_t i = 0; i < sched.num_hosts(); ++i) {
    breaker_opens += sched.host(i).platform().counters().breaker_opens;
  }
  const double inv_per_sec =
      wall_seconds > 0.0 ? static_cast<double>(outcomes.size()) / wall_seconds
                         : 0.0;

  const std::string title =
      "Macro: cluster throughput, hosts=" + std::to_string(options.hosts) +
      " policy=" + std::string(cluster::to_string(options.policy)) +
      " dispatch=" + std::string(cluster::to_string(options.dispatch)) +
      (options.skew ? " (skewed 90/10)" : "");
  metrics::TextTable table(
      title, {"host", "dispatched", "completed", "expired", "decisions",
              "queued", "pool sb", "ull paused", "disp p50", "disp p99"});
  for (const cluster::HostStats& host : stats.hosts) {
    table.add_row(
        {std::to_string(host.host), std::to_string(host.dispatched),
         std::to_string(host.completed), std::to_string(host.expired),
         std::to_string(host.policy_decisions),
         std::to_string(host.queued), std::to_string(host.pool_sandboxes),
         std::to_string(host.ull_paused),
         metrics::format_nanos(static_cast<double>(host.dispatch_latency.p50())),
         metrics::format_nanos(
             static_cast<double>(host.dispatch_latency.p99()))});
  }
  table.print(std::cout);
  std::cout << "cluster: " << outcomes.size() << " invocations ("
            << failed << " failed) in "
            << metrics::format_double(wall_seconds, 3) << " s = "
            << metrics::format_double(inv_per_sec, 1)
            << " inv/s; dispatch p50 "
            << metrics::format_nanos(
                   static_cast<double>(cluster_queueing.p50()))
            << ", p99 "
            << metrics::format_nanos(
                   static_cast<double>(cluster_queueing.p99()))
            << "; redispatched " << stats.counters.redispatched
            << ", drops " << stats.counters.dispatch_drops
            << "; shed " << stats.counters.shed << " (queue-full "
            << stats.counters.shed_queue_full << "), expired "
            << stats.counters.expired << ", breaker opens "
            << breaker_opens;
  if (deadline_rel != 0) {
    std::cout << "; deadline " << options.deadline_us << " us: " << met
              << " met, " << late << " late";
  }
  std::cout << "\n";

  if (!options.csv_path.empty()) {
    // One row per host plus an aggregate row (host = -1): the E18 matrix
    // joins these CSVs across (policy, dispatch) cells.
    metrics::CsvWriter csv(
        {"hosts", "policy", "dispatch", "skew", "host", "dispatched",
         "completed", "decisions", "pool_sandboxes", "ull_paused",
         "dispatch_p50_ns", "dispatch_p99_ns", "wall_seconds",
         "inv_per_sec", "failed", "deadline_us", "met_deadline", "late",
         "shed", "shed_queue_full", "expired", "breaker_opens"});
    const auto policy_name = std::string(cluster::to_string(options.policy));
    const auto dispatch_name =
        std::string(cluster::to_string(options.dispatch));
    for (const cluster::HostStats& host : stats.hosts) {
      // Shed / deadline accounting is cluster-level (the front door refuses
      // before a host is chosen), so per-host rows carry only their own
      // expiry count; the aggregate row (host = -1) has the rest.
      csv.add_row({std::to_string(options.hosts), policy_name, dispatch_name,
                   options.skew ? "1" : "0", std::to_string(host.host),
                   std::to_string(host.dispatched),
                   std::to_string(host.completed),
                   std::to_string(host.policy_decisions),
                   std::to_string(host.pool_sandboxes),
                   std::to_string(host.ull_paused),
                   std::to_string(host.dispatch_latency.p50()),
                   std::to_string(host.dispatch_latency.p99()),
                   metrics::format_double(wall_seconds, 6),
                   metrics::format_double(inv_per_sec, 2),
                   std::to_string(failed),
                   std::to_string(options.deadline_us), "0", "0", "0", "0",
                   std::to_string(host.expired), "0"});
    }
    csv.add_row({std::to_string(options.hosts), policy_name, dispatch_name,
                 options.skew ? "1" : "0", "-1",
                 std::to_string(outcomes.size()),
                 std::to_string(stats.counters.completed),
                 std::to_string(stats.counters.submitted), "0", "0",
                 std::to_string(cluster_queueing.p50()),
                 std::to_string(cluster_queueing.p99()),
                 metrics::format_double(wall_seconds, 6),
                 metrics::format_double(inv_per_sec, 2),
                 std::to_string(failed),
                 std::to_string(options.deadline_us), std::to_string(met),
                 std::to_string(late), std::to_string(stats.counters.shed),
                 std::to_string(stats.counters.shed_queue_full),
                 std::to_string(stats.counters.expired),
                 std::to_string(breaker_opens)});
    if (const auto status = csv.write_file(options.csv_path);
        !status.is_ok()) {
      std::cerr << "csv write failed: " << status.to_report() << "\n";
      return 1;
    }
  }

  const std::uint64_t expected =
      static_cast<std::uint64_t>(threads) * options.per_thread;
  if (outcomes.size() != expected) {
    std::cerr << "accounting mismatch: " << outcomes.size()
              << " outcomes != " << expected << " submissions\n";
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Overload sweep (--overload-sweep): calibrate capacity, then measure
// goodput at {0.8x, 1.2x, 2.0x} offered load with per-request deadlines.
// ---------------------------------------------------------------------------

struct SweepRow {
  double load = 0.0;            // offered load as a fraction of capacity
  double offered_per_sec = 0.0;
  /// What the pacing threads actually delivered (submitted / submit
  /// phase): sleep granularity can cap the achievable rate, and the gate
  /// is only meaningful relative to what was really offered.
  double achieved_per_sec = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  // OK outcomes (includes late ones)
  std::uint64_t met = 0;        // completed within the deadline slack
  std::uint64_t late = 0;
  std::uint64_t shed = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t expired = 0;
  std::uint64_t breaker_opens = 0;
  double wall_seconds = 0.0;
  double goodput_per_sec = 0.0;  // met / wall
  std::int64_t queueing_p50 = 0;
  std::int64_t queueing_p99 = 0;
};

/// One sweep run: a fresh cluster (clean EWMAs, breakers, counters)
/// driven open-loop at `rate_per_sec` (0 = closed loop, the calibration
/// shape) with per-submission deadline slack `deadline_rel` (0 = none).
int run_one_load(const Options& options, double rate_per_sec,
                 util::Nanos deadline_rel, SweepRow& row) {
  std::optional<cluster::ClusterScheduler> cluster_storage;
  std::vector<ClusterFn> functions;
  if (const int rc = setup_cluster(options, cluster_storage, functions);
      rc != 0) {
    return rc;
  }
  cluster::ClusterScheduler& sched = *cluster_storage;

  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  // Open-loop pacing: each thread owns an absolute submission schedule at
  // rate/threads so a slow submit() cannot silently lower the offered
  // load (the next slot is start + i*interval, not now + interval).
  const util::Nanos interval =
      rate_per_sec > 0.0 ? static_cast<util::Nanos>(
                               1e9 * static_cast<double>(threads) /
                               rate_per_sec)
                         : 0;
  std::vector<std::jthread> submitters;
  const util::Nanos started = util::monotonic_now();
  for (std::size_t t = 0; t < threads; ++t) {
    submitters.emplace_back(
        [&sched, &functions, &options, deadline_rel, interval, t] {
          const util::Nanos thread_start = util::monotonic_now();
          for (std::size_t i = 0; i < options.per_thread; ++i) {
            if (interval > 0) {
              // One sleep toward the absolute slot, no spinning: a spin
              // wait would starve the worker threads on small machines
              // and inflate queueing. A late wake self-corrects — the
              // following slots are already due, so the thread submits
              // straight through until it catches the schedule back up.
              const util::Nanos target =
                  thread_start + static_cast<util::Nanos>(i) * interval;
              const util::Nanos now = util::monotonic_now();
              if (now < target) {
                std::this_thread::sleep_for(
                    std::chrono::nanoseconds(target - now));
              }
            }
            const ClusterFn& fn = functions[(t + i) % functions.size()];
            const faas::StartMode mode =
                i % 64 == 63 ? faas::StartMode::kCold
                             : (fn.ull ? faas::StartMode::kHorse
                                       : faas::StartMode::kWarm);
            const util::Nanos deadline =
                deadline_rel == 0 ? 0 : util::monotonic_now() + deadline_rel;
            sched.submit(fn.id, fn.ull ? packet_request() : filter_request(),
                         mode, deadline);
          }
        });
  }
  submitters.clear();  // join
  const double submit_seconds =
      static_cast<double>(util::monotonic_now() - started) / 1e9;
  const auto outcomes = sched.drain();
  const double wall_seconds =
      static_cast<double>(util::monotonic_now() - started) / 1e9;

  metrics::Histogram queueing;
  row = SweepRow{};
  row.offered_per_sec = rate_per_sec;
  row.submitted = outcomes.size();
  row.achieved_per_sec =
      submit_seconds > 0.0
          ? static_cast<double>(outcomes.size()) / submit_seconds
          : 0.0;
  row.wall_seconds = wall_seconds;
  for (const auto& outcome : outcomes) {
    queueing.record(outcome.queueing);
    if (outcome.status.is_ok()) {
      ++row.completed;
      if (deadline_rel != 0) {
        const util::Nanos finish_rel = outcome.queueing +
                                       outcome.record.init_time +
                                       outcome.record.exec_time;
        (finish_rel <= deadline_rel ? row.met : row.late)++;
      }
    }
  }
  const cluster::ClusterCounters counters = sched.counters();
  row.shed = counters.shed;
  row.shed_queue_full = counters.shed_queue_full;
  row.expired = counters.expired;
  for (std::size_t i = 0; i < sched.num_hosts(); ++i) {
    row.breaker_opens +=
        sched.host(i).platform().counters().breaker_opens;
  }
  // Calibration (no deadline): goodput IS throughput.
  const std::uint64_t good = deadline_rel == 0 ? row.completed : row.met;
  row.goodput_per_sec =
      wall_seconds > 0.0 ? static_cast<double>(good) / wall_seconds : 0.0;
  row.queueing_p50 = queueing.p50();
  row.queueing_p99 = queueing.p99();

  if (outcomes.size() !=
      static_cast<std::uint64_t>(threads) * options.per_thread) {
    std::cerr << "accounting mismatch: " << outcomes.size() << " outcomes != "
              << threads * options.per_thread << " submissions\n";
    return 1;
  }
  return 0;
}

int run_overload_sweep(const Options& options) {
  const util::Nanos deadline_rel =
      static_cast<util::Nanos>(options.deadline_us) * util::kMicrosecond;

  // Phase 1 — calibrate: closed-loop, no deadlines, no pacing. The
  // completion rate of this run is the cluster's capacity; sweep loads
  // are offered relative to it, so the same flags mean the same relative
  // overload on any machine (including sanitizer builds).
  SweepRow capacity_row;
  if (const int rc = run_one_load(options, 0.0, 0, capacity_row); rc != 0) {
    return rc;
  }
  const double capacity = capacity_row.goodput_per_sec;
  if (capacity <= 0.0) {
    std::cerr << "calibration produced zero throughput\n";
    return 1;
  }
  std::cout << "calibrated capacity: " << metrics::format_double(capacity, 1)
            << " inv/s (closed loop, " << capacity_row.submitted
            << " invocations, admission "
            << (options.admission ? "on" : "off") << ")\n";

  // Phase 2 — the sweep: below saturation, just past it, and 2x.
  const double loads[] = {0.8, 1.2, 2.0};
  std::vector<SweepRow> rows;
  for (const double load : loads) {
    SweepRow row;
    if (const int rc = run_one_load(options, load * capacity, deadline_rel,
                                    row);
        rc != 0) {
      return rc;
    }
    row.load = load;
    rows.push_back(row);
  }

  metrics::TextTable table(
      "Macro: overload sweep, hosts=" + std::to_string(options.hosts) +
          " deadline=" + std::to_string(options.deadline_us) + "us" +
          (options.admission ? "" : " (admission OFF)"),
      {"load", "offered/s", "achieved/s", "submitted", "completed", "met",
       "late", "shed", "expired", "breaker", "goodput/s", "queue p99"});
  for (const SweepRow& row : rows) {
    table.add_row({metrics::format_double(row.load, 1),
                   metrics::format_double(row.offered_per_sec, 1),
                   metrics::format_double(row.achieved_per_sec, 1),
                   std::to_string(row.submitted),
                   std::to_string(row.completed), std::to_string(row.met),
                   std::to_string(row.late), std::to_string(row.shed),
                   std::to_string(row.expired),
                   std::to_string(row.breaker_opens),
                   metrics::format_double(row.goodput_per_sec, 1),
                   metrics::format_nanos(
                       static_cast<double>(row.queueing_p99))});
  }
  table.print(std::cout);

  if (!options.csv_path.empty()) {
    metrics::CsvWriter csv(
        {"hosts", "policy", "dispatch", "admission", "deadline_us",
         "load_factor", "offered_per_sec", "achieved_per_sec", "submitted",
         "completed", "met_deadline", "late", "shed", "shed_queue_full",
         "expired", "breaker_opens", "goodput_per_sec", "wall_seconds",
         "queueing_p50_ns", "queueing_p99_ns"});
    const auto policy_name = std::string(cluster::to_string(options.policy));
    const auto dispatch_name =
        std::string(cluster::to_string(options.dispatch));
    for (const SweepRow& row : rows) {
      csv.add_row({std::to_string(options.hosts), policy_name, dispatch_name,
                   options.admission ? "1" : "0",
                   std::to_string(options.deadline_us),
                   metrics::format_double(row.load, 2),
                   metrics::format_double(row.offered_per_sec, 2),
                   metrics::format_double(row.achieved_per_sec, 2),
                   std::to_string(row.submitted),
                   std::to_string(row.completed), std::to_string(row.met),
                   std::to_string(row.late), std::to_string(row.shed),
                   std::to_string(row.shed_queue_full),
                   std::to_string(row.expired),
                   std::to_string(row.breaker_opens),
                   metrics::format_double(row.goodput_per_sec, 2),
                   metrics::format_double(row.wall_seconds, 6),
                   std::to_string(row.queueing_p50),
                   std::to_string(row.queueing_p99)});
    }
    if (const auto status = csv.write_file(options.csv_path);
        !status.is_ok()) {
      std::cerr << "csv write failed: " << status.to_report() << "\n";
      return 1;
    }
  }

  // The graceful-degradation gate (admission runs only): goodput collapse
  // under overload is monotone in load, so the deepest-overload row is
  // the one that tells the story — it must hold >= 90% of the sweep's
  // peak goodput. Shedding early is only a win if the refused work
  // actually protects the work that was admitted.
  if (options.admission && !rows.empty()) {
    double peak = 0.0;
    for (const SweepRow& row : rows) {
      peak = std::max(peak, row.goodput_per_sec);
    }
    const SweepRow& deepest = rows.back();
    if (peak > 0.0 && deepest.goodput_per_sec < 0.9 * peak) {
      std::cerr << "overload gate FAILED: goodput at " << deepest.load
                << "x load is "
                << metrics::format_double(deepest.goodput_per_sec, 1)
                << " inv/s, below 90% of the sweep peak ("
                << metrics::format_double(peak, 1) << " inv/s)\n";
      return 1;
    }
    std::cout << "overload gate passed: goodput at "
              << metrics::format_double(deepest.load, 1)
              << "x load held >= 90% of the sweep peak\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);
  if (options.overload_sweep) {
    return run_overload_sweep(options);
  }
  return options.hosts == 0 ? run_single_host(options) : run_cluster(options);
}
