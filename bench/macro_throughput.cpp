// Macro benchmark (ours) — closed-loop control-plane throughput scaling,
// single-host and multi-host.
//
// Single-host mode (--hosts 0, the default) measures the sharded control
// plane's scaling claim: N submit threads driving disjoint function sets
// should deliver ~N× the aggregate invocations/sec of one thread (until
// real cores run out):
//
//   * F functions (mixed uLL / plain), each provisioned with a small warm
//     pool and snapshot;
//   * T closed-loop submit threads, each owning the functions
//     {t, t+T, t+2T, ...} so threads map onto disjoint control shards;
//   * a fixed per-thread invocation count with a steady mode mix (mostly
//     kHorse for uLL / kWarm for plain, a sprinkle of kCold + kRestore);
//   * results as a table plus optional CSV (--csv), including the shard
//     and ull-manager lock contention fractions that explain any
//     sub-linear scaling. Contention and occupancy come from ONE
//     control-plane snapshot so each reported row is internally
//     consistent (occupancy read separately from the contention counters
//     could straddle concurrent assign/untrack calls).
//
// Cluster mode (--hosts N, N >= 1) runs the same workload through the
// multi-host ClusterScheduler and reports per-host dispatch-latency
// percentiles — the E18 policy × dispatch-mode matrix:
//
//   macro_throughput --hosts 4 --policy rr|least_loaded|most_warm
//                    --dispatch push|pull [--skew] [--csv out.csv]
//
// --skew switches the closed-loop mix to the 90/10 shape (90% tiny uLL
// kHorse requests, 10% cold starts of a plain function, thousands of
// times slower): under push the long requests convoy short ones behind
// them on the early-bound host, under pull an idle host takes the next
// request the moment a worker frees — E18's expectation is a visibly
// lower p99 for pull under this skew.
//
// CI runs single-host --threads 1/8 plus a --hosts 4 cluster smoke in
// both dispatch modes, archiving the CSVs.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/scheduler.hpp"
#include "faas/platform.hpp"
#include "metrics/csv.hpp"
#include "metrics/reporter.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "workloads/array_filter.hpp"
#include "workloads/nat.hpp"

namespace {

using namespace horse;

struct Options {
  std::size_t threads = 4;
  std::size_t per_thread = 2000;
  std::size_t functions = 16;
  std::size_t cpus = 16;
  std::uint32_t ull_queues = 4;
  std::size_t provision = 4;
  std::string csv_path;
  // --- cluster mode (0 hosts = legacy single-host path) -------------------
  std::size_t hosts = 0;
  std::size_t workers_per_host = 2;
  cluster::PolicyKind policy = cluster::PolicyKind::kRoundRobin;
  cluster::DispatchMode dispatch = cluster::DispatchMode::kPush;
  bool skew = false;
  std::uint64_t seed = 42;
};

Options parse_args(int argc, char** argv) {
  Options options;
  const auto usage = [] {
    std::cerr << "usage: macro_throughput [--threads N] [--per-thread M]\n"
                 "    [--functions F] [--cpus C] [--ull-queues Q]\n"
                 "    [--provision P] [--csv PATH]\n"
                 "    [--hosts H] [--workers-per-host W]\n"
                 "    [--policy rr|least_loaded|most_warm]\n"
                 "    [--dispatch push|pull] [--skew] [--seed S]\n";
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      options.threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--per-thread") {
      options.per_thread = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--functions") {
      options.functions = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--cpus") {
      options.cpus = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--ull-queues") {
      options.ull_queues =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--provision") {
      options.provision = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--csv") {
      options.csv_path = next();
    } else if (arg == "--hosts") {
      options.hosts = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--workers-per-host") {
      options.workers_per_host = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--policy") {
      const auto policy = cluster::parse_policy(next());
      if (!policy) {
        std::cerr << policy.status().to_report() << "\n";
        std::exit(2);
      }
      options.policy = *policy;
    } else if (arg == "--dispatch") {
      const auto mode = cluster::parse_dispatch_mode(next());
      if (!mode) {
        std::cerr << mode.status().to_report() << "\n";
        std::exit(2);
      }
      options.dispatch = *mode;
    } else if (arg == "--skew") {
      options.skew = true;
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else {
      usage();
    }
  }
  return options;
}

workloads::Request filter_request() {
  workloads::Request request;
  request.payload = {5, 10, 15, 20};
  request.threshold = 7;
  return request;
}

workloads::Request packet_request() {
  workloads::Request request;
  request.header = "src=10.0.0.1 dst=10.0.0.2 port=443 proto=tcp";
  return request;
}

faas::FunctionSpec make_spec(std::size_t index, bool ull) {
  faas::FunctionSpec spec;
  spec.name = (ull ? "nat-" : "filter-") + std::to_string(index);
  if (ull) {
    spec.implementation = std::make_shared<workloads::NatFunction>(64);
  } else {
    spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  }
  spec.sandbox.name = spec.name + "-sb";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = ull;
  return spec;
}

// ---------------------------------------------------------------------------
// Single-host path (--hosts 0): the original sharded-control-plane bench.
// ---------------------------------------------------------------------------

int run_single_host(const Options& options) {
  faas::PlatformConfig config;
  config.num_cpus = options.cpus;
  config.horse.num_ull_runqueues = options.ull_queues;
  // Substrate constructors throw on invalid configs (queues > cpus,
  // zero queues, ...); surface that as a usage error, not a terminate.
  std::optional<faas::Platform> platform_storage;
  try {
    platform_storage.emplace(config);
  } catch (const std::exception& error) {
    std::cerr << "invalid configuration: " << error.what() << "\n";
    return 2;
  }
  faas::Platform& platform = *platform_storage;

  // Register F functions: even ids are uLL packet functions (kHorse-able),
  // odd ids are plain filter functions (kWarm ceiling).
  struct Fn {
    faas::FunctionId id = 0;
    bool ull = false;
  };
  std::vector<Fn> functions;
  for (std::size_t i = 0; i < options.functions; ++i) {
    const bool ull = (i % 2) == 0;
    const auto id = platform.registry().add(make_spec(i, ull));
    if (!id) {
      std::cerr << "register failed: " << id.status().to_report() << "\n";
      return 1;
    }
    functions.push_back({*id, ull});
    if (!platform.provision(*id, options.provision).is_ok() ||
        !platform.ensure_snapshot(*id).is_ok()) {
      std::cerr << "provision failed for function " << *id << "\n";
      return 1;
    }
  }

  // Closed-loop submit threads over disjoint function sets.
  const std::size_t threads = std::min(options.threads, functions.size());
  std::vector<std::jthread> submitters;
  const util::Nanos started = util::monotonic_now();
  for (std::size_t t = 0; t < threads; ++t) {
    submitters.emplace_back([&platform, &functions, &options, t, threads] {
      // Thread t owns functions {t, t+T, t+2T, ...}: disjoint shards.
      std::vector<const Fn*> mine;
      for (std::size_t j = t; j < functions.size(); j += threads) {
        mine.push_back(&functions[j]);
      }
      for (std::size_t i = 0; i < options.per_thread; ++i) {
        const Fn& fn = *mine[i % mine.size()];
        faas::StartMode mode;
        if (i % 64 == 63) {
          mode = faas::StartMode::kCold;
        } else if (i % 64 == 31) {
          mode = faas::StartMode::kRestore;
        } else {
          mode = fn.ull ? faas::StartMode::kHorse : faas::StartMode::kWarm;
        }
        const auto record =
            platform.invoke(fn.id, fn.ull ? packet_request() : filter_request(),
                            mode);
        (void)record;  // failures are counted by the platform
      }
    });
  }
  submitters.clear();  // join
  const double wall_seconds =
      static_cast<double>(util::monotonic_now() - started) / 1e9;

  const faas::PlatformCounters counters = platform.counters();
  // One consistent control-plane snapshot: the shard contention, the
  // ull-manager contention, and the reserved-queue occupancy in a single
  // reported row all describe the same instant.
  const faas::ControlPlaneSnapshot plane = platform.control_plane_snapshot();
  std::size_t ull_paused = 0;
  for (const auto& queue : plane.ull.occupancy) {
    ull_paused += queue.paused;
  }
  const double inv_per_sec =
      wall_seconds > 0.0
          ? static_cast<double>(counters.invocations) / wall_seconds
          : 0.0;

  metrics::TextTable table(
      "Macro: closed-loop control-plane throughput",
      {"threads", "invocations", "wall (s)", "inv/s", "cold", "restore",
       "warm", "horse", "failed", "shard contended", "ull contended",
       "ull paused"});
  table.add_row({std::to_string(threads), std::to_string(counters.invocations),
                 metrics::format_double(wall_seconds, 3),
                 metrics::format_double(inv_per_sec, 1),
                 std::to_string(counters.cold),
                 std::to_string(counters.restore),
                 std::to_string(counters.warm),
                 std::to_string(counters.horse),
                 std::to_string(counters.failed),
                 metrics::format_double(
                     plane.shard_contention.contended_fraction(), 4),
                 metrics::format_double(
                     plane.ull.contention.contended_fraction(), 4),
                 std::to_string(ull_paused)});
  table.print(std::cout);

  if (!options.csv_path.empty()) {
    metrics::CsvWriter csv(
        {"threads", "invocations", "wall_seconds", "inv_per_sec", "cold",
         "restore", "warm", "horse", "failed", "shard_contended_fraction",
         "ull_contended_fraction", "ull_paused"});
    csv.add_numeric_row({static_cast<double>(threads),
                         static_cast<double>(counters.invocations),
                         wall_seconds, inv_per_sec,
                         static_cast<double>(counters.cold),
                         static_cast<double>(counters.restore),
                         static_cast<double>(counters.warm),
                         static_cast<double>(counters.horse),
                         static_cast<double>(counters.failed),
                         plane.shard_contention.contended_fraction(),
                         plane.ull.contention.contended_fraction(),
                         static_cast<double>(ull_paused)});
    if (const auto status = csv.write_file(options.csv_path);
        !status.is_ok()) {
      std::cerr << "csv write failed: " << status.to_report() << "\n";
      return 1;
    }
  }

  // Closed-loop sanity: every submitted invocation must be accounted for.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(threads) * options.per_thread;
  if (counters.invocations + counters.failed != expected) {
    std::cerr << "accounting mismatch: " << counters.invocations << " ok + "
              << counters.failed << " failed != " << expected << "\n";
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Cluster path (--hosts N): the E18 policy × dispatch-mode matrix cell.
// ---------------------------------------------------------------------------

int run_cluster(const Options& options) {
  cluster::ClusterConfig config;
  config.num_hosts = options.hosts;
  config.workers_per_host = options.workers_per_host;
  config.dispatch = options.dispatch;
  config.policy = options.policy;
  config.platform.num_cpus = options.cpus;
  config.platform.horse.num_ull_runqueues = options.ull_queues;
  config.platform.seed = options.seed;
  // The skewed mix cold-starts one function in volume; parked sandboxes
  // beyond the cap would fail the park and pollute the outcome counts.
  config.platform.warm_pool.max_per_function = 1 << 16;

  std::optional<cluster::ClusterScheduler> cluster_storage;
  try {
    cluster_storage.emplace(config);
  } catch (const std::exception& error) {
    std::cerr << "invalid configuration: " << error.what() << "\n";
    return 2;
  }
  cluster::ClusterScheduler& sched = *cluster_storage;

  // Function fleet: function 0 is the hot uLL function the skewed mix
  // hammers; the rest alternate uLL/plain as in single-host mode.
  struct Fn {
    faas::FunctionId id = 0;
    bool ull = false;
  };
  std::vector<Fn> functions;
  for (std::size_t i = 0; i < std::max<std::size_t>(2, options.functions);
       ++i) {
    const bool ull = (i % 2) == 0;
    const auto id =
        sched.register_function([i, ull] { return make_spec(i, ull); });
    if (!id) {
      std::cerr << "register failed: " << id.status().to_report() << "\n";
      return 1;
    }
    functions.push_back({*id, ull});
    if (!sched.provision(*id, options.provision).is_ok() ||
        !sched.ensure_snapshot(*id).is_ok()) {
      std::cerr << "provision failed for function " << *id << "\n";
      return 1;
    }
  }

  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  std::vector<std::jthread> submitters;
  const util::Nanos started = util::monotonic_now();
  for (std::size_t t = 0; t < threads; ++t) {
    submitters.emplace_back([&sched, &functions, &options, t] {
      util::Xoshiro256 rng(options.seed + t * 1000003ULL);
      for (std::size_t i = 0; i < options.per_thread; ++i) {
        if (options.skew) {
          // The 90/10 shape: 90% tiny kHorse resumes of the hot uLL
          // function, 10% cold starts of a plain function — orders of
          // magnitude slower, the head-of-line blockers push suffers.
          if (rng.uniform01() < 0.9) {
            sched.submit(functions[0].id, packet_request(),
                         faas::StartMode::kHorse);
          } else {
            sched.submit(functions[1].id, filter_request(),
                         faas::StartMode::kCold);
          }
        } else {
          const Fn& fn = functions[(t + i) % functions.size()];
          faas::StartMode mode;
          if (i % 64 == 63) {
            mode = faas::StartMode::kCold;
          } else {
            mode = fn.ull ? faas::StartMode::kHorse : faas::StartMode::kWarm;
          }
          sched.submit(fn.id, fn.ull ? packet_request() : filter_request(),
                       mode);
        }
      }
    });
  }
  submitters.clear();  // join
  const auto outcomes = sched.drain();
  const double wall_seconds =
      static_cast<double>(util::monotonic_now() - started) / 1e9;

  std::uint64_t failed = 0;
  metrics::Histogram cluster_queueing;
  for (const auto& outcome : outcomes) {
    failed += outcome.status.is_ok() ? 0 : 1;
    cluster_queueing.record(outcome.queueing);
  }
  const cluster::ClusterStats stats = sched.stats();
  const double inv_per_sec =
      wall_seconds > 0.0 ? static_cast<double>(outcomes.size()) / wall_seconds
                         : 0.0;

  const std::string title =
      "Macro: cluster throughput, hosts=" + std::to_string(options.hosts) +
      " policy=" + std::string(cluster::to_string(options.policy)) +
      " dispatch=" + std::string(cluster::to_string(options.dispatch)) +
      (options.skew ? " (skewed 90/10)" : "");
  metrics::TextTable table(
      title, {"host", "dispatched", "completed", "decisions", "queued",
              "pool sb", "ull paused", "disp p50", "disp p99"});
  for (const cluster::HostStats& host : stats.hosts) {
    table.add_row(
        {std::to_string(host.host), std::to_string(host.dispatched),
         std::to_string(host.completed), std::to_string(host.policy_decisions),
         std::to_string(host.queued), std::to_string(host.pool_sandboxes),
         std::to_string(host.ull_paused),
         metrics::format_nanos(static_cast<double>(host.dispatch_latency.p50())),
         metrics::format_nanos(
             static_cast<double>(host.dispatch_latency.p99()))});
  }
  table.print(std::cout);
  std::cout << "cluster: " << outcomes.size() << " invocations ("
            << failed << " failed) in "
            << metrics::format_double(wall_seconds, 3) << " s = "
            << metrics::format_double(inv_per_sec, 1)
            << " inv/s; dispatch p50 "
            << metrics::format_nanos(
                   static_cast<double>(cluster_queueing.p50()))
            << ", p99 "
            << metrics::format_nanos(
                   static_cast<double>(cluster_queueing.p99()))
            << "; redispatched " << stats.counters.redispatched
            << ", drops " << stats.counters.dispatch_drops << "\n";

  if (!options.csv_path.empty()) {
    // One row per host plus an aggregate row (host = -1): the E18 matrix
    // joins these CSVs across (policy, dispatch) cells.
    metrics::CsvWriter csv(
        {"hosts", "policy", "dispatch", "skew", "host", "dispatched",
         "completed", "decisions", "pool_sandboxes", "ull_paused",
         "dispatch_p50_ns", "dispatch_p99_ns", "wall_seconds",
         "inv_per_sec", "failed"});
    const auto policy_name = std::string(cluster::to_string(options.policy));
    const auto dispatch_name =
        std::string(cluster::to_string(options.dispatch));
    for (const cluster::HostStats& host : stats.hosts) {
      csv.add_row({std::to_string(options.hosts), policy_name, dispatch_name,
                   options.skew ? "1" : "0", std::to_string(host.host),
                   std::to_string(host.dispatched),
                   std::to_string(host.completed),
                   std::to_string(host.policy_decisions),
                   std::to_string(host.pool_sandboxes),
                   std::to_string(host.ull_paused),
                   std::to_string(host.dispatch_latency.p50()),
                   std::to_string(host.dispatch_latency.p99()),
                   metrics::format_double(wall_seconds, 6),
                   metrics::format_double(inv_per_sec, 2),
                   std::to_string(failed)});
    }
    csv.add_row({std::to_string(options.hosts), policy_name, dispatch_name,
                 options.skew ? "1" : "0", "-1",
                 std::to_string(outcomes.size()),
                 std::to_string(stats.counters.completed),
                 std::to_string(stats.counters.submitted), "0", "0",
                 std::to_string(cluster_queueing.p50()),
                 std::to_string(cluster_queueing.p99()),
                 metrics::format_double(wall_seconds, 6),
                 metrics::format_double(inv_per_sec, 2),
                 std::to_string(failed)});
    if (const auto status = csv.write_file(options.csv_path);
        !status.is_ok()) {
      std::cerr << "csv write failed: " << status.to_report() << "\n";
      return 1;
    }
  }

  const std::uint64_t expected =
      static_cast<std::uint64_t>(threads) * options.per_thread;
  if (outcomes.size() != expected) {
    std::cerr << "accounting mismatch: " << outcomes.size()
              << " outcomes != " << expected << " submissions\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);
  return options.hosts == 0 ? run_single_host(options) : run_cluster(options);
}
