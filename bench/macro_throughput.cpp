// Macro benchmark (ours) — closed-loop control-plane throughput scaling,
// single-host and multi-host.
//
// Single-host mode (--hosts 0, the default) measures the sharded control
// plane's scaling claim: N submit threads driving disjoint function sets
// should deliver ~N× the aggregate invocations/sec of one thread (until
// real cores run out):
//
//   * F functions (mixed uLL / plain), each provisioned with a small warm
//     pool and snapshot;
//   * T closed-loop submit threads, each owning the functions
//     {t, t+T, t+2T, ...} so threads map onto disjoint control shards;
//   * a fixed per-thread invocation count with a steady mode mix (mostly
//     kHorse for uLL / kWarm for plain, a sprinkle of kCold + kRestore);
//   * results as a table plus optional CSV (--csv), including the shard
//     and ull-manager lock contention fractions that explain any
//     sub-linear scaling. Contention and occupancy come from ONE
//     control-plane snapshot so each reported row is internally
//     consistent (occupancy read separately from the contention counters
//     could straddle concurrent assign/untrack calls).
//
// Cluster mode (--hosts N, N >= 1) runs the same workload through the
// multi-host ClusterScheduler and reports per-host dispatch-latency
// percentiles — the E18 policy × dispatch-mode matrix:
//
//   macro_throughput --hosts 4 --policy rr|least_loaded|most_warm
//                    --dispatch push|pull [--skew] [--csv out.csv]
//
// --skew switches the closed-loop mix to the 90/10 shape (90% tiny uLL
// kHorse requests, 10% cold starts of a plain function, thousands of
// times slower): under push the long requests convoy short ones behind
// them on the early-bound host, under pull an idle host takes the next
// request the moment a worker frees — E18's expectation is a visibly
// lower p99 for pull under this skew.
//
// Overload mode (--overload-sweep, cluster only) is the E19 driver: it
// first calibrates the cluster's closed-loop capacity (no deadlines, no
// pacing), then replays the same mix open-loop at {0.8x, 1.2x, 2.0x} of
// that capacity with a per-request deadline (--deadline-us, default
// 5 ms). Each submission carries deadline = now + slack, so past
// saturation the admission path sheds (typed kQueueShed/kQueueFull) and
// the dispatcher expires stale queue entries instead of wasting workers
// on work the caller already abandoned. The CSV reports per-load goodput
// (deadline-met completions/s), shed/expiry counts, and breaker opens;
// with admission enabled the bench FAILS if goodput past saturation
// drops below 90% of the peak row — the graceful-degradation gate CI
// enforces. --no-admission runs the same sweep with cluster admission
// off for the baseline column.
//
// Crash mode (--kill-host ID@N / --crash-sweep, cluster only) is the
// E20 driver: phase-1 traffic crashes host ID after N submissions
// (--crash-sweep defaults to host 0 at the halfway point), the lease
// failure detector declares it dead and re-dispatches its backlog and
// in-flight orphans through the dedup ledger, the host restarts after
// --restart-after-us and rejoins through a half-open probe, then a
// phase-2 burst measures the post-failover warm-hit rate on the killed
// host. The run FAILS on any lost or double-executed submission;
// --crash-sweep additionally runs a --no-rehydrate baseline and FAILS
// unless warm rejoin rehydration strictly beats it on post-failover
// warm hits. The report includes the recovery counter table (detection
// latency, orphans re-dispatched, duplicates suppressed, rejoins).
//
// CI runs single-host --threads 1/8 plus a --hosts 4 cluster smoke in
// both dispatch modes, archiving the CSVs.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/scheduler.hpp"
#include "faas/platform.hpp"
#include "metrics/csv.hpp"
#include "metrics/histogram.hpp"
#include "metrics/reporter.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "workloads/array_filter.hpp"
#include "workloads/firewall.hpp"
#include "workloads/nat.hpp"

namespace {

using namespace horse;

struct Options {
  std::size_t threads = 4;
  std::size_t per_thread = 2000;
  std::size_t functions = 16;
  std::size_t cpus = 16;
  std::uint32_t ull_queues = 4;
  std::size_t provision = 4;
  std::string csv_path;
  // --- cluster mode (0 hosts = legacy single-host path) -------------------
  std::size_t hosts = 0;
  std::size_t workers_per_host = 2;
  cluster::PolicyKind policy = cluster::PolicyKind::kRoundRobin;
  cluster::DispatchMode dispatch = cluster::DispatchMode::kPush;
  bool skew = false;
  std::uint64_t seed = 42;
  // --- overload control (cluster mode) ------------------------------------
  /// Relative per-request deadline in microseconds (0 = none).
  std::uint64_t deadline_us = 0;
  /// Calibrate capacity, then sweep {0.8x, 1.2x, 2.0x} offered load.
  bool overload_sweep = false;
  /// Cluster admission control (--no-admission turns it off: baseline).
  bool admission = true;
  // --- crash tolerance (cluster mode) --------------------------------------
  /// --kill-host ID@N: crash host ID after N total submissions; the
  /// failure detector declares it dead and recovers the orphans.
  bool kill = false;
  std::size_t kill_host = 0;
  std::size_t kill_after = 0;
  /// The crashed host's process comes back this long after the crash
  /// (the half-open probe path rejoins it).
  std::uint64_t restart_after_us = 2000;
  /// E20: run the crash once with warm rejoin rehydration and once
  /// without, and gate on rehydration winning post-failover warm hits.
  bool crash_sweep = false;
  /// --no-rehydrate: disable rejoin rehydration (the baseline column).
  bool rehydrate = true;
  // --- workflow chains (single-host) ----------------------------------------
  /// E21: comma-separated stage workloads (firewall|nat|array_filter),
  /// e.g. --chain firewall,nat,array_filter. Measures the same chain
  /// fused (one kHorse resume), unfused (per-hop dispatch), and
  /// cross-sandbox (shape-mismatched stages, planner splits) and gates on
  /// fused strictly beating unfused p99.
  std::string chain;
};

Options parse_args(int argc, char** argv) {
  Options options;
  const auto usage = [] {
    std::cerr << "usage: macro_throughput [--threads N] [--per-thread M]\n"
                 "    [--functions F] [--cpus C] [--ull-queues Q]\n"
                 "    [--provision P] [--csv PATH]\n"
                 "    [--hosts H] [--workers-per-host W]\n"
                 "    [--policy rr|least_loaded|most_warm]\n"
                 "    [--dispatch push|pull] [--skew] [--seed S]\n"
                 "    [--deadline-us D] [--overload-sweep] [--no-admission]\n"
                 "    [--kill-host ID@N] [--restart-after-us U]\n"
                 "    [--crash-sweep] [--no-rehydrate]\n"
                 "    [--chain w1,w2,... (firewall|nat|array_filter)]\n";
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      options.threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--per-thread") {
      options.per_thread = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--functions") {
      options.functions = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--cpus") {
      options.cpus = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--ull-queues") {
      options.ull_queues =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--provision") {
      options.provision = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--csv") {
      options.csv_path = next();
    } else if (arg == "--hosts") {
      options.hosts = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--workers-per-host") {
      options.workers_per_host = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--policy") {
      const auto policy = cluster::parse_policy(next());
      if (!policy) {
        std::cerr << policy.status().to_report() << "\n";
        std::exit(2);
      }
      options.policy = *policy;
    } else if (arg == "--dispatch") {
      const auto mode = cluster::parse_dispatch_mode(next());
      if (!mode) {
        std::cerr << mode.status().to_report() << "\n";
        std::exit(2);
      }
      options.dispatch = *mode;
    } else if (arg == "--skew") {
      options.skew = true;
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--deadline-us") {
      options.deadline_us = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--overload-sweep") {
      options.overload_sweep = true;
    } else if (arg == "--no-admission") {
      options.admission = false;
    } else if (arg == "--kill-host") {
      const char* value = next();
      char* end = nullptr;
      options.kill_host = std::strtoull(value, &end, 10);
      if (end == nullptr || *end != '@') {
        std::cerr << "--kill-host wants ID@N (host id, '@', submission "
                     "index)\n";
        std::exit(2);
      }
      options.kill_after = std::strtoull(end + 1, nullptr, 10);
      options.kill = true;
    } else if (arg == "--restart-after-us") {
      options.restart_after_us = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--crash-sweep") {
      options.crash_sweep = true;
    } else if (arg == "--no-rehydrate") {
      options.rehydrate = false;
    } else if (arg == "--chain") {
      options.chain = next();
    } else {
      usage();
    }
  }
  if (options.crash_sweep || options.kill) {
    if (options.hosts < 2) {
      std::cerr << "--crash-sweep / --kill-host require --hosts >= 2 "
                   "(somewhere for the orphans to go)\n";
      std::exit(2);
    }
    if (options.overload_sweep) {
      std::cerr << "--crash-sweep and --overload-sweep are exclusive\n";
      std::exit(2);
    }
    if (options.kill && options.kill_host >= options.hosts) {
      std::cerr << "--kill-host id " << options.kill_host
                << " out of range (hosts=" << options.hosts << ")\n";
      std::exit(2);
    }
    if (options.kill &&
        options.kill_after >=
            std::max<std::size_t>(1, options.threads) * options.per_thread) {
      std::cerr << "--kill-host @N must land inside the run "
                   "(N < threads * per-thread)\n";
      std::exit(2);
    }
  }
  if (options.overload_sweep) {
    if (options.hosts == 0) {
      std::cerr << "--overload-sweep requires cluster mode (--hosts N)\n";
      std::exit(2);
    }
    if (options.deadline_us == 0) {
      options.deadline_us = 5000;  // 5 ms of slack by default
    }
  }
  if (!options.chain.empty() &&
      (options.hosts != 0 || options.overload_sweep || options.kill ||
       options.crash_sweep)) {
    std::cerr << "--chain is a single-host mode (no --hosts/--overload-sweep/"
                 "--kill-host/--crash-sweep)\n";
    std::exit(2);
  }
  return options;
}

workloads::Request filter_request() {
  workloads::Request request;
  request.payload = {5, 10, 15, 20};
  request.threshold = 7;
  return request;
}

workloads::Request packet_request() {
  workloads::Request request;
  request.header = "src=10.0.0.1 dst=10.0.0.2 port=443 proto=tcp";
  return request;
}

faas::FunctionSpec make_spec(std::size_t index, bool ull) {
  faas::FunctionSpec spec;
  spec.name = (ull ? "nat-" : "filter-") + std::to_string(index);
  if (ull) {
    spec.implementation = std::make_shared<workloads::NatFunction>(64);
  } else {
    spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  }
  spec.sandbox.name = spec.name + "-sb";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 1;
  spec.sandbox.ull = ull;
  return spec;
}

// ---------------------------------------------------------------------------
// Single-host path (--hosts 0): the original sharded-control-plane bench.
// ---------------------------------------------------------------------------

int run_single_host(const Options& options) {
  faas::PlatformConfig config;
  config.num_cpus = options.cpus;
  config.horse.num_ull_runqueues = options.ull_queues;
  // Substrate constructors throw on invalid configs (queues > cpus,
  // zero queues, ...); surface that as a usage error, not a terminate.
  std::optional<faas::Platform> platform_storage;
  try {
    platform_storage.emplace(config);
  } catch (const std::exception& error) {
    std::cerr << "invalid configuration: " << error.what() << "\n";
    return 2;
  }
  faas::Platform& platform = *platform_storage;

  // Register F functions: even ids are uLL packet functions (kHorse-able),
  // odd ids are plain filter functions (kWarm ceiling).
  struct Fn {
    faas::FunctionId id = 0;
    bool ull = false;
  };
  std::vector<Fn> functions;
  for (std::size_t i = 0; i < options.functions; ++i) {
    const bool ull = (i % 2) == 0;
    const auto id = platform.registry().add(make_spec(i, ull));
    if (!id) {
      std::cerr << "register failed: " << id.status().to_report() << "\n";
      return 1;
    }
    functions.push_back({*id, ull});
    if (!platform.provision(*id, options.provision).is_ok() ||
        !platform.ensure_snapshot(*id).is_ok()) {
      std::cerr << "provision failed for function " << *id << "\n";
      return 1;
    }
  }

  // Closed-loop submit threads over disjoint function sets.
  const std::size_t threads = std::min(options.threads, functions.size());
  std::vector<std::jthread> submitters;
  const util::Nanos started = util::monotonic_now();
  for (std::size_t t = 0; t < threads; ++t) {
    submitters.emplace_back([&platform, &functions, &options, t, threads] {
      // Thread t owns functions {t, t+T, t+2T, ...}: disjoint shards.
      std::vector<const Fn*> mine;
      for (std::size_t j = t; j < functions.size(); j += threads) {
        mine.push_back(&functions[j]);
      }
      for (std::size_t i = 0; i < options.per_thread; ++i) {
        const Fn& fn = *mine[i % mine.size()];
        faas::StartMode mode;
        if (i % 64 == 63) {
          mode = faas::StartMode::kCold;
        } else if (i % 64 == 31) {
          mode = faas::StartMode::kRestore;
        } else {
          mode = fn.ull ? faas::StartMode::kHorse : faas::StartMode::kWarm;
        }
        const auto record =
            platform.invoke(fn.id, fn.ull ? packet_request() : filter_request(),
                            mode);
        (void)record;  // failures are counted by the platform
      }
    });
  }
  submitters.clear();  // join
  const double wall_seconds =
      static_cast<double>(util::monotonic_now() - started) / 1e9;

  const faas::PlatformCounters counters = platform.counters();
  // One consistent control-plane snapshot: the shard contention, the
  // ull-manager contention, and the reserved-queue occupancy in a single
  // reported row all describe the same instant.
  const faas::ControlPlaneSnapshot plane = platform.control_plane_snapshot();
  std::size_t ull_paused = 0;
  for (const auto& queue : plane.ull.occupancy) {
    ull_paused += queue.paused;
  }
  const double inv_per_sec =
      wall_seconds > 0.0
          ? static_cast<double>(counters.invocations) / wall_seconds
          : 0.0;

  // Fast-path cycle accounting, aggregated across the sharded engines
  // (PR 10): p99 of whole-resume TSC cycles, 0 when cycle timing is off
  // or no HORSE resume ran.
  metrics::Histogram resume_cycles;
  for (const auto& engine : platform.horse_engines()) {
    resume_cycles.merge(engine->cycle_stats().total_cycles);
  }
  const double resume_cycles_p99 =
      static_cast<double>(resume_cycles.p99());

  metrics::TextTable table(
      "Macro: closed-loop control-plane throughput",
      {"threads", "invocations", "wall (s)", "inv/s", "cold", "restore",
       "warm", "horse", "failed", "shard contended", "ull contended",
       "ull paused", "resume cycles p99"});
  table.add_row({std::to_string(threads), std::to_string(counters.invocations),
                 metrics::format_double(wall_seconds, 3),
                 metrics::format_double(inv_per_sec, 1),
                 std::to_string(counters.cold),
                 std::to_string(counters.restore),
                 std::to_string(counters.warm),
                 std::to_string(counters.horse),
                 std::to_string(counters.failed),
                 metrics::format_double(
                     plane.shard_contention.contended_fraction(), 4),
                 metrics::format_double(
                     plane.ull.contention.contended_fraction(), 4),
                 std::to_string(ull_paused),
                 metrics::format_double(resume_cycles_p99, 0)});
  table.print(std::cout);

  if (!options.csv_path.empty()) {
    metrics::CsvWriter csv(
        {"threads", "invocations", "wall_seconds", "inv_per_sec", "cold",
         "restore", "warm", "horse", "failed", "shard_contended_fraction",
         "ull_contended_fraction", "ull_paused", "resume_cycles_p99"});
    csv.add_numeric_row({static_cast<double>(threads),
                         static_cast<double>(counters.invocations),
                         wall_seconds, inv_per_sec,
                         static_cast<double>(counters.cold),
                         static_cast<double>(counters.restore),
                         static_cast<double>(counters.warm),
                         static_cast<double>(counters.horse),
                         static_cast<double>(counters.failed),
                         plane.shard_contention.contended_fraction(),
                         plane.ull.contention.contended_fraction(),
                         static_cast<double>(ull_paused),
                         resume_cycles_p99});
    if (const auto status = csv.write_file(options.csv_path);
        !status.is_ok()) {
      std::cerr << "csv write failed: " << status.to_report() << "\n";
      return 1;
    }
  }

  // Closed-loop sanity: every submitted invocation must be accounted for.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(threads) * options.per_thread;
  if (counters.invocations + counters.failed != expected) {
    std::cerr << "accounting mismatch: " << counters.invocations << " ok + "
              << counters.failed << " failed != " << expected << "\n";
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Cluster path (--hosts N): the E18 policy × dispatch-mode matrix cell.
// ---------------------------------------------------------------------------

struct ClusterFn {
  faas::FunctionId id = 0;
  bool ull = false;
};

/// Shared cluster setup for the smoke run and the overload sweep: build
/// the scheduler and register/provision the function fleet. Function 0 is
/// the hot uLL function the skewed mix hammers; the rest alternate
/// uLL/plain as in single-host mode. Returns 0 on success.
int setup_cluster(const Options& options,
                  std::optional<cluster::ClusterScheduler>& cluster_storage,
                  std::vector<ClusterFn>& functions) {
  cluster::ClusterConfig config;
  config.num_hosts = options.hosts;
  config.workers_per_host = options.workers_per_host;
  config.dispatch = options.dispatch;
  config.policy = options.policy;
  config.admission.enabled = options.admission;
  config.platform.num_cpus = options.cpus;
  config.platform.horse.num_ull_runqueues = options.ull_queues;
  config.platform.seed = options.seed;
  // The skewed mix cold-starts one function in volume; parked sandboxes
  // beyond the cap would fail the park and pollute the outcome counts.
  config.platform.warm_pool.max_per_function = 1 << 16;
  if (options.kill || options.crash_sweep) {
    // Failure-detector timing tuned for a bench run: a crashed host is
    // declared dead within ~1 ms and probed every few hundred µs, so
    // the restart window (--restart-after-us) dominates the measured
    // recovery time instead of detector defaults sized for production.
    config.health.lease_duration = 500 * util::kMicrosecond;
    config.health.missed_to_death = 2;
    config.health.sweep_period = 200 * util::kMicrosecond;
    config.health.probe_backoff_base = 200 * util::kMicrosecond;
    config.health.probe_backoff_cap = 2 * util::kMillisecond;
    // Rehydrate every function the keep-alive policy remembers: the
    // sweep's gate compares post-failover warm hits against the
    // --no-rehydrate baseline, so the treatment arm should cover the
    // whole working set.
    config.health.rehydrate_top_k =
        options.rehydrate ? std::max<std::size_t>(2, options.functions) : 0;
    config.health.rehydrate_per_function = 1;
  }

  try {
    cluster_storage.emplace(config);
  } catch (const std::exception& error) {
    std::cerr << "invalid configuration: " << error.what() << "\n";
    return 2;
  }
  cluster::ClusterScheduler& sched = *cluster_storage;

  functions.clear();
  for (std::size_t i = 0; i < std::max<std::size_t>(2, options.functions);
       ++i) {
    const bool ull = (i % 2) == 0;
    const auto id =
        sched.register_function([i, ull] { return make_spec(i, ull); });
    if (!id) {
      std::cerr << "register failed: " << id.status().to_report() << "\n";
      return 1;
    }
    functions.push_back({*id, ull});
    if (!sched.provision(*id, options.provision).is_ok() ||
        !sched.ensure_snapshot(*id).is_ok()) {
      std::cerr << "provision failed for function " << *id << "\n";
      return 1;
    }
  }
  return 0;
}

int run_cluster(const Options& options) {
  std::optional<cluster::ClusterScheduler> cluster_storage;
  std::vector<ClusterFn> functions;
  if (const int rc = setup_cluster(options, cluster_storage, functions);
      rc != 0) {
    return rc;
  }
  cluster::ClusterScheduler& sched = *cluster_storage;

  const util::Nanos deadline_rel =
      static_cast<util::Nanos>(options.deadline_us) * util::kMicrosecond;
  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  std::vector<std::jthread> submitters;
  const util::Nanos started = util::monotonic_now();
  for (std::size_t t = 0; t < threads; ++t) {
    submitters.emplace_back([&sched, &functions, &options, deadline_rel, t] {
      util::Xoshiro256 rng(options.seed + t * 1000003ULL);
      // Absolute deadline = submit instant + the requested slack; 0 keeps
      // the legacy no-deadline path (never shed, never expired).
      const auto deadline = [deadline_rel]() -> util::Nanos {
        return deadline_rel == 0 ? 0 : util::monotonic_now() + deadline_rel;
      };
      for (std::size_t i = 0; i < options.per_thread; ++i) {
        if (options.skew) {
          // The 90/10 shape: 90% tiny kHorse resumes of the hot uLL
          // function, 10% cold starts of a plain function — orders of
          // magnitude slower, the head-of-line blockers push suffers.
          if (rng.uniform01() < 0.9) {
            sched.submit(functions[0].id, packet_request(),
                         faas::StartMode::kHorse, deadline());
          } else {
            sched.submit(functions[1].id, filter_request(),
                         faas::StartMode::kCold, deadline());
          }
        } else {
          const ClusterFn& fn = functions[(t + i) % functions.size()];
          faas::StartMode mode;
          if (i % 64 == 63) {
            mode = faas::StartMode::kCold;
          } else {
            mode = fn.ull ? faas::StartMode::kHorse : faas::StartMode::kWarm;
          }
          sched.submit(fn.id, fn.ull ? packet_request() : filter_request(),
                       mode, deadline());
        }
      }
    });
  }
  submitters.clear();  // join
  const auto outcomes = sched.drain();
  const double wall_seconds =
      static_cast<double>(util::monotonic_now() - started) / 1e9;

  std::uint64_t failed = 0;
  std::uint64_t met = 0;
  std::uint64_t late = 0;
  metrics::Histogram cluster_queueing;
  for (const auto& outcome : outcomes) {
    failed += outcome.status.is_ok() ? 0 : 1;
    cluster_queueing.record(outcome.queueing);
    if (deadline_rel != 0 && outcome.status.is_ok()) {
      // A completion met its deadline when queueing + init + execution
      // fit inside the slack it was submitted with.
      const util::Nanos finish_rel = outcome.queueing +
                                     outcome.record.init_time +
                                     outcome.record.exec_time;
      (finish_rel <= deadline_rel ? met : late)++;
    }
  }
  const cluster::ClusterStats stats = sched.stats();
  std::uint64_t breaker_opens = 0;
  for (std::size_t i = 0; i < sched.num_hosts(); ++i) {
    breaker_opens += sched.host(i).platform().counters().breaker_opens;
  }
  const double inv_per_sec =
      wall_seconds > 0.0 ? static_cast<double>(outcomes.size()) / wall_seconds
                         : 0.0;

  const std::string title =
      "Macro: cluster throughput, hosts=" + std::to_string(options.hosts) +
      " policy=" + std::string(cluster::to_string(options.policy)) +
      " dispatch=" + std::string(cluster::to_string(options.dispatch)) +
      (options.skew ? " (skewed 90/10)" : "");
  metrics::TextTable table(
      title, {"host", "dispatched", "completed", "expired", "decisions",
              "queued", "pool sb", "ull paused", "disp p50", "disp p99"});
  for (const cluster::HostStats& host : stats.hosts) {
    table.add_row(
        {std::to_string(host.host), std::to_string(host.dispatched),
         std::to_string(host.completed), std::to_string(host.expired),
         std::to_string(host.policy_decisions),
         std::to_string(host.queued), std::to_string(host.pool_sandboxes),
         std::to_string(host.ull_paused),
         metrics::format_nanos(static_cast<double>(host.dispatch_latency.p50())),
         metrics::format_nanos(
             static_cast<double>(host.dispatch_latency.p99()))});
  }
  table.print(std::cout);
  std::cout << "cluster: " << outcomes.size() << " invocations ("
            << failed << " failed) in "
            << metrics::format_double(wall_seconds, 3) << " s = "
            << metrics::format_double(inv_per_sec, 1)
            << " inv/s; dispatch p50 "
            << metrics::format_nanos(
                   static_cast<double>(cluster_queueing.p50()))
            << ", p99 "
            << metrics::format_nanos(
                   static_cast<double>(cluster_queueing.p99()))
            << "; redispatched " << stats.counters.redispatched
            << ", drops " << stats.counters.dispatch_drops
            << "; shed " << stats.counters.shed << " (queue-full "
            << stats.counters.shed_queue_full << "), expired "
            << stats.counters.expired << ", breaker opens "
            << breaker_opens;
  if (deadline_rel != 0) {
    std::cout << "; deadline " << options.deadline_us << " us: " << met
              << " met, " << late << " late";
  }
  std::cout << "\n";

  if (!options.csv_path.empty()) {
    // One row per host plus an aggregate row (host = -1): the E18 matrix
    // joins these CSVs across (policy, dispatch) cells.
    metrics::CsvWriter csv(
        {"hosts", "policy", "dispatch", "skew", "host", "dispatched",
         "completed", "decisions", "pool_sandboxes", "ull_paused",
         "dispatch_p50_ns", "dispatch_p99_ns", "wall_seconds",
         "inv_per_sec", "failed", "deadline_us", "met_deadline", "late",
         "shed", "shed_queue_full", "expired", "breaker_opens"});
    const auto policy_name = std::string(cluster::to_string(options.policy));
    const auto dispatch_name =
        std::string(cluster::to_string(options.dispatch));
    for (const cluster::HostStats& host : stats.hosts) {
      // Shed / deadline accounting is cluster-level (the front door refuses
      // before a host is chosen), so per-host rows carry only their own
      // expiry count; the aggregate row (host = -1) has the rest.
      csv.add_row({std::to_string(options.hosts), policy_name, dispatch_name,
                   options.skew ? "1" : "0", std::to_string(host.host),
                   std::to_string(host.dispatched),
                   std::to_string(host.completed),
                   std::to_string(host.policy_decisions),
                   std::to_string(host.pool_sandboxes),
                   std::to_string(host.ull_paused),
                   std::to_string(host.dispatch_latency.p50()),
                   std::to_string(host.dispatch_latency.p99()),
                   metrics::format_double(wall_seconds, 6),
                   metrics::format_double(inv_per_sec, 2),
                   std::to_string(failed),
                   std::to_string(options.deadline_us), "0", "0", "0", "0",
                   std::to_string(host.expired), "0"});
    }
    csv.add_row({std::to_string(options.hosts), policy_name, dispatch_name,
                 options.skew ? "1" : "0", "-1",
                 std::to_string(outcomes.size()),
                 std::to_string(stats.counters.completed),
                 std::to_string(stats.counters.submitted), "0", "0",
                 std::to_string(cluster_queueing.p50()),
                 std::to_string(cluster_queueing.p99()),
                 metrics::format_double(wall_seconds, 6),
                 metrics::format_double(inv_per_sec, 2),
                 std::to_string(failed),
                 std::to_string(options.deadline_us), std::to_string(met),
                 std::to_string(late), std::to_string(stats.counters.shed),
                 std::to_string(stats.counters.shed_queue_full),
                 std::to_string(stats.counters.expired),
                 std::to_string(breaker_opens)});
    if (const auto status = csv.write_file(options.csv_path);
        !status.is_ok()) {
      std::cerr << "csv write failed: " << status.to_report() << "\n";
      return 1;
    }
  }

  const std::uint64_t expected =
      static_cast<std::uint64_t>(threads) * options.per_thread;
  if (outcomes.size() != expected) {
    std::cerr << "accounting mismatch: " << outcomes.size()
              << " outcomes != " << expected << " submissions\n";
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Overload sweep (--overload-sweep): calibrate capacity, then measure
// goodput at {0.8x, 1.2x, 2.0x} offered load with per-request deadlines.
// ---------------------------------------------------------------------------

struct SweepRow {
  double load = 0.0;            // offered load as a fraction of capacity
  double offered_per_sec = 0.0;
  /// What the pacing threads actually delivered (submitted / submit
  /// phase): sleep granularity can cap the achievable rate, and the gate
  /// is only meaningful relative to what was really offered.
  double achieved_per_sec = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  // OK outcomes (includes late ones)
  std::uint64_t met = 0;        // completed within the deadline slack
  std::uint64_t late = 0;
  std::uint64_t shed = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t expired = 0;
  std::uint64_t breaker_opens = 0;
  double wall_seconds = 0.0;
  double goodput_per_sec = 0.0;  // met / wall
  std::int64_t queueing_p50 = 0;
  std::int64_t queueing_p99 = 0;
};

/// One sweep run: a fresh cluster (clean EWMAs, breakers, counters)
/// driven open-loop at `rate_per_sec` (0 = closed loop, the calibration
/// shape) with per-submission deadline slack `deadline_rel` (0 = none).
int run_one_load(const Options& options, double rate_per_sec,
                 util::Nanos deadline_rel, SweepRow& row) {
  std::optional<cluster::ClusterScheduler> cluster_storage;
  std::vector<ClusterFn> functions;
  if (const int rc = setup_cluster(options, cluster_storage, functions);
      rc != 0) {
    return rc;
  }
  cluster::ClusterScheduler& sched = *cluster_storage;

  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  // Open-loop pacing: each thread owns an absolute submission schedule at
  // rate/threads so a slow submit() cannot silently lower the offered
  // load (the next slot is start + i*interval, not now + interval).
  const util::Nanos interval =
      rate_per_sec > 0.0 ? static_cast<util::Nanos>(
                               1e9 * static_cast<double>(threads) /
                               rate_per_sec)
                         : 0;
  std::vector<std::jthread> submitters;
  const util::Nanos started = util::monotonic_now();
  for (std::size_t t = 0; t < threads; ++t) {
    submitters.emplace_back(
        [&sched, &functions, &options, deadline_rel, interval, t] {
          const util::Nanos thread_start = util::monotonic_now();
          for (std::size_t i = 0; i < options.per_thread; ++i) {
            if (interval > 0) {
              // One sleep toward the absolute slot, no spinning: a spin
              // wait would starve the worker threads on small machines
              // and inflate queueing. A late wake self-corrects — the
              // following slots are already due, so the thread submits
              // straight through until it catches the schedule back up.
              const util::Nanos target =
                  thread_start + static_cast<util::Nanos>(i) * interval;
              const util::Nanos now = util::monotonic_now();
              if (now < target) {
                std::this_thread::sleep_for(
                    std::chrono::nanoseconds(target - now));
              }
            }
            const ClusterFn& fn = functions[(t + i) % functions.size()];
            const faas::StartMode mode =
                i % 64 == 63 ? faas::StartMode::kCold
                             : (fn.ull ? faas::StartMode::kHorse
                                       : faas::StartMode::kWarm);
            const util::Nanos deadline =
                deadline_rel == 0 ? 0 : util::monotonic_now() + deadline_rel;
            sched.submit(fn.id, fn.ull ? packet_request() : filter_request(),
                         mode, deadline);
          }
        });
  }
  submitters.clear();  // join
  const double submit_seconds =
      static_cast<double>(util::monotonic_now() - started) / 1e9;
  const auto outcomes = sched.drain();
  const double wall_seconds =
      static_cast<double>(util::monotonic_now() - started) / 1e9;

  metrics::Histogram queueing;
  row = SweepRow{};
  row.offered_per_sec = rate_per_sec;
  row.submitted = outcomes.size();
  row.achieved_per_sec =
      submit_seconds > 0.0
          ? static_cast<double>(outcomes.size()) / submit_seconds
          : 0.0;
  row.wall_seconds = wall_seconds;
  for (const auto& outcome : outcomes) {
    queueing.record(outcome.queueing);
    if (outcome.status.is_ok()) {
      ++row.completed;
      if (deadline_rel != 0) {
        const util::Nanos finish_rel = outcome.queueing +
                                       outcome.record.init_time +
                                       outcome.record.exec_time;
        (finish_rel <= deadline_rel ? row.met : row.late)++;
      }
    }
  }
  const cluster::ClusterCounters counters = sched.counters();
  row.shed = counters.shed;
  row.shed_queue_full = counters.shed_queue_full;
  row.expired = counters.expired;
  for (std::size_t i = 0; i < sched.num_hosts(); ++i) {
    row.breaker_opens +=
        sched.host(i).platform().counters().breaker_opens;
  }
  // Calibration (no deadline): goodput IS throughput.
  const std::uint64_t good = deadline_rel == 0 ? row.completed : row.met;
  row.goodput_per_sec =
      wall_seconds > 0.0 ? static_cast<double>(good) / wall_seconds : 0.0;
  row.queueing_p50 = queueing.p50();
  row.queueing_p99 = queueing.p99();

  if (outcomes.size() !=
      static_cast<std::uint64_t>(threads) * options.per_thread) {
    std::cerr << "accounting mismatch: " << outcomes.size() << " outcomes != "
              << threads * options.per_thread << " submissions\n";
    return 1;
  }
  return 0;
}

int run_overload_sweep(const Options& options) {
  const util::Nanos deadline_rel =
      static_cast<util::Nanos>(options.deadline_us) * util::kMicrosecond;

  // Phase 1 — calibrate: closed-loop, no deadlines, no pacing. The
  // completion rate of this run is the cluster's capacity; sweep loads
  // are offered relative to it, so the same flags mean the same relative
  // overload on any machine (including sanitizer builds).
  SweepRow capacity_row;
  if (const int rc = run_one_load(options, 0.0, 0, capacity_row); rc != 0) {
    return rc;
  }
  const double capacity = capacity_row.goodput_per_sec;
  if (capacity <= 0.0) {
    std::cerr << "calibration produced zero throughput\n";
    return 1;
  }
  std::cout << "calibrated capacity: " << metrics::format_double(capacity, 1)
            << " inv/s (closed loop, " << capacity_row.submitted
            << " invocations, admission "
            << (options.admission ? "on" : "off") << ")\n";

  // Phase 2 — the sweep: below saturation, just past it, and 2x.
  const double loads[] = {0.8, 1.2, 2.0};
  std::vector<SweepRow> rows;
  for (const double load : loads) {
    SweepRow row;
    if (const int rc = run_one_load(options, load * capacity, deadline_rel,
                                    row);
        rc != 0) {
      return rc;
    }
    row.load = load;
    rows.push_back(row);
  }

  metrics::TextTable table(
      "Macro: overload sweep, hosts=" + std::to_string(options.hosts) +
          " deadline=" + std::to_string(options.deadline_us) + "us" +
          (options.admission ? "" : " (admission OFF)"),
      {"load", "offered/s", "achieved/s", "submitted", "completed", "met",
       "late", "shed", "expired", "breaker", "goodput/s", "queue p99"});
  for (const SweepRow& row : rows) {
    table.add_row({metrics::format_double(row.load, 1),
                   metrics::format_double(row.offered_per_sec, 1),
                   metrics::format_double(row.achieved_per_sec, 1),
                   std::to_string(row.submitted),
                   std::to_string(row.completed), std::to_string(row.met),
                   std::to_string(row.late), std::to_string(row.shed),
                   std::to_string(row.expired),
                   std::to_string(row.breaker_opens),
                   metrics::format_double(row.goodput_per_sec, 1),
                   metrics::format_nanos(
                       static_cast<double>(row.queueing_p99))});
  }
  table.print(std::cout);

  if (!options.csv_path.empty()) {
    metrics::CsvWriter csv(
        {"hosts", "policy", "dispatch", "admission", "deadline_us",
         "load_factor", "offered_per_sec", "achieved_per_sec", "submitted",
         "completed", "met_deadline", "late", "shed", "shed_queue_full",
         "expired", "breaker_opens", "goodput_per_sec", "wall_seconds",
         "queueing_p50_ns", "queueing_p99_ns"});
    const auto policy_name = std::string(cluster::to_string(options.policy));
    const auto dispatch_name =
        std::string(cluster::to_string(options.dispatch));
    for (const SweepRow& row : rows) {
      csv.add_row({std::to_string(options.hosts), policy_name, dispatch_name,
                   options.admission ? "1" : "0",
                   std::to_string(options.deadline_us),
                   metrics::format_double(row.load, 2),
                   metrics::format_double(row.offered_per_sec, 2),
                   metrics::format_double(row.achieved_per_sec, 2),
                   std::to_string(row.submitted),
                   std::to_string(row.completed), std::to_string(row.met),
                   std::to_string(row.late), std::to_string(row.shed),
                   std::to_string(row.shed_queue_full),
                   std::to_string(row.expired),
                   std::to_string(row.breaker_opens),
                   metrics::format_double(row.goodput_per_sec, 2),
                   metrics::format_double(row.wall_seconds, 6),
                   std::to_string(row.queueing_p50),
                   std::to_string(row.queueing_p99)});
    }
    if (const auto status = csv.write_file(options.csv_path);
        !status.is_ok()) {
      std::cerr << "csv write failed: " << status.to_report() << "\n";
      return 1;
    }
  }

  // The graceful-degradation gate (admission runs only): goodput collapse
  // under overload is monotone in load, so the deepest-overload row is
  // the one that tells the story — it must hold >= 90% of the sweep's
  // peak goodput. Shedding early is only a win if the refused work
  // actually protects the work that was admitted.
  if (options.admission && !rows.empty()) {
    double peak = 0.0;
    for (const SweepRow& row : rows) {
      peak = std::max(peak, row.goodput_per_sec);
    }
    const SweepRow& deepest = rows.back();
    if (peak > 0.0 && deepest.goodput_per_sec < 0.9 * peak) {
      std::cerr << "overload gate FAILED: goodput at " << deepest.load
                << "x load is "
                << metrics::format_double(deepest.goodput_per_sec, 1)
                << " inv/s, below 90% of the sweep peak ("
                << metrics::format_double(peak, 1) << " inv/s)\n";
      return 1;
    }
    std::cout << "overload gate passed: goodput at "
              << metrics::format_double(deepest.load, 1)
              << "x load held >= 90% of the sweep peak\n";
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Crash recovery (--kill-host / --crash-sweep): the E20 driver.
// ---------------------------------------------------------------------------

struct CrashRow {
  bool rehydrate = false;
  std::uint64_t submitted = 0;      // phase-1 + phase-2
  std::uint64_t outcomes = 0;       // drain() results (completions + sheds)
  std::uint64_t completed_ok = 0;
  std::uint64_t lost = 0;           // submitted - outcomes (must be 0)
  std::uint64_t double_executed = 0;  // duplicate idempotency keys (must be 0)
  cluster::ClusterCounters counters;
  double detection_ms = 0.0;   // crash() -> declared dead
  double recovery_ms = 0.0;    // crash() -> rejoined rotation
  std::uint64_t victim_invocations = 0;  // phase-2 serves on the killed host
  std::uint64_t victim_warm_hits = 0;    // ... at kWarm or kHorse
  double warm_hit_rate = 0.0;
  double wall_seconds = 0.0;
};

/// One crash/recover run: phase-1 traffic with a mid-run host kill, a
/// timed restart, a rejoin wait, then a phase-2 burst whose warm-hit
/// rate on the killed host isolates what rejoin rehydration bought.
int run_crash_once(const Options& options, bool rehydrate, CrashRow& row) {
  Options local = options;
  local.rehydrate = rehydrate;
  std::optional<cluster::ClusterScheduler> cluster_storage;
  std::vector<ClusterFn> functions;
  if (const int rc = setup_cluster(local, cluster_storage, functions);
      rc != 0) {
    return rc;
  }
  cluster::ClusterScheduler& sched = *cluster_storage;

  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  const std::uint64_t phase1 =
      static_cast<std::uint64_t>(threads) * options.per_thread;
  const std::uint64_t kill_after =
      options.kill ? options.kill_after : phase1 / 2;
  const std::size_t victim = options.kill ? options.kill_host : 0;
  const util::Nanos restart_delay =
      static_cast<util::Nanos>(options.restart_after_us) * util::kMicrosecond;

  std::atomic<std::uint64_t> submit_count{0};
  std::atomic<util::Nanos> crashed_at{0};

  // The "operator": the moment the crash fires, schedule the process
  // restart; the scheduler's half-open probes then rejoin the host.
  std::jthread restarter([&sched, &crashed_at, restart_delay, victim] {
    while (crashed_at.load(std::memory_order_acquire) == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    std::this_thread::sleep_for(std::chrono::nanoseconds(restart_delay));
    sched.host(victim).restart();
  });

  const util::Nanos started = util::monotonic_now();
  {
    std::vector<std::jthread> submitters;
    for (std::size_t t = 0; t < threads; ++t) {
      submitters.emplace_back(
          [&sched, &functions, &options, &submit_count, &crashed_at,
           kill_after, victim, t] {
            for (std::size_t i = 0; i < options.per_thread; ++i) {
              const std::uint64_t n =
                  submit_count.fetch_add(1, std::memory_order_relaxed);
              if (n == kill_after) {
                // Kill the host wholesale mid-traffic: queued work will
                // be stolen at declared death, in-flight work finishes
                // as zombies the dedup ledger must suppress.
                sched.host(victim).crash();
                crashed_at.store(util::monotonic_now(),
                                 std::memory_order_release);
              }
              const ClusterFn& fn = functions[(t + i) % functions.size()];
              const faas::StartMode mode =
                  i % 64 == 63 ? faas::StartMode::kCold
                               : (fn.ull ? faas::StartMode::kHorse
                                         : faas::StartMode::kWarm);
              sched.submit(fn.id,
                           fn.ull ? packet_request() : filter_request(), mode,
                           0);
            }
          });
    }
  }  // join phase-1

  const util::Nanos crash_time = crashed_at.load(std::memory_order_acquire);
  if (crash_time == 0) {
    std::cerr << "crash run: the kill never fired\n";
    return 1;
  }

  // Wait for the ladder to complete: declared dead -> restarted ->
  // probed back into rotation. Bounded so a detector regression fails
  // loudly instead of hanging CI.
  const util::Nanos wait_start = util::monotonic_now();
  util::Nanos rejoin_time = 0;
  while (true) {
    if (sched.counters().hosts_rejoined >= 1) {
      rejoin_time = util::monotonic_now();
      break;
    }
    if (util::monotonic_now() - wait_start > 10 * util::kSecond) {
      std::cerr << "crash run: host " << victim
                << " never rejoined within 10 s\n";
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // Quiesce phase-1 (drain arithmetic: every submission plus every
  // re-dispatched orphan yields a host outcome or a shed) so zombie
  // completions cannot pollute the phase-2 warm-hit snapshot.
  while (true) {
    const cluster::ClusterCounters c = sched.counters();
    if (c.completed + c.shed >= phase1 + c.orphans_redispatched) {
      break;
    }
    if (util::monotonic_now() - wait_start > 30 * util::kSecond) {
      std::cerr << "crash run: phase-1 never quiesced\n";
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  // Phase 2: a post-failover burst. The victim's platform counters
  // record the mode each invocation was actually served at, so the
  // delta across this burst IS the post-failover warm-hit rate.
  const faas::PlatformCounters before = sched.host(victim).platform().counters();
  const std::size_t phase2_per_thread =
      std::max<std::size_t>(64, options.per_thread / 8);
  {
    std::vector<std::jthread> submitters;
    for (std::size_t t = 0; t < threads; ++t) {
      submitters.emplace_back(
          [&sched, &functions, phase2_per_thread, t] {
            for (std::size_t i = 0; i < phase2_per_thread; ++i) {
              const ClusterFn& fn = functions[(t + i) % functions.size()];
              sched.submit(fn.id,
                           fn.ull ? packet_request() : filter_request(),
                           fn.ull ? faas::StartMode::kHorse
                                  : faas::StartMode::kWarm,
                           0);
            }
          });
    }
  }  // join phase-2
  const auto outcomes = sched.drain();
  row.wall_seconds =
      static_cast<double>(util::monotonic_now() - started) / 1e9;
  const faas::PlatformCounters after = sched.host(victim).platform().counters();

  row.rehydrate = rehydrate;
  row.submitted =
      phase1 + static_cast<std::uint64_t>(threads) * phase2_per_thread;
  row.outcomes = outcomes.size();
  row.lost =
      row.submitted > outcomes.size() ? row.submitted - outcomes.size() : 0;
  std::vector<std::uint64_t> keys;
  keys.reserve(outcomes.size());
  for (const auto& outcome : outcomes) {
    keys.push_back(outcome.key);
    if (outcome.status.is_ok()) {
      ++row.completed_ok;
    }
  }
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (keys[i] == keys[i - 1]) {
      ++row.double_executed;
    }
  }
  row.counters = sched.counters();
  row.detection_ms =
      static_cast<double>(sched.last_detection_latency()) / 1e6;
  row.recovery_ms = static_cast<double>(rejoin_time - crash_time) / 1e6;
  row.victim_invocations = after.invocations - before.invocations;
  row.victim_warm_hits =
      (after.warm + after.horse) - (before.warm + before.horse);
  row.warm_hit_rate =
      row.victim_invocations > 0
          ? static_cast<double>(row.victim_warm_hits) /
                static_cast<double>(row.victim_invocations)
          : 0.0;
  if (row.victim_invocations == 0) {
    std::cerr << "crash run: the rejoined host received no phase-2 traffic "
                 "— the warm-hit comparison is meaningless\n";
    return 1;
  }
  return 0;
}

int report_crash_rows(const Options& options,
                      const std::vector<CrashRow>& rows) {
  metrics::TextTable table(
      "Macro: host-crash recovery, hosts=" + std::to_string(options.hosts) +
          " dispatch=" + std::string(cluster::to_string(options.dispatch)) +
          " restart-after=" + std::to_string(options.restart_after_us) + "us",
      {"rehydrate", "submitted", "outcomes", "ok", "shed", "lost", "dup",
       "detect", "recover", "orphans", "suppressed", "rehydrated sb",
       "victim inv", "warm-hit"});
  for (const CrashRow& row : rows) {
    table.add_row(
        {row.rehydrate ? "on" : "off", std::to_string(row.submitted),
         std::to_string(row.outcomes), std::to_string(row.completed_ok),
         std::to_string(row.counters.shed), std::to_string(row.lost),
         std::to_string(row.double_executed),
         metrics::format_nanos(row.detection_ms * 1e6),
         metrics::format_nanos(row.recovery_ms * 1e6),
         std::to_string(row.counters.orphans_redispatched),
         std::to_string(row.counters.duplicates_suppressed),
         std::to_string(row.counters.rehydrated_sandboxes),
         std::to_string(row.victim_invocations),
         metrics::format_percent(row.warm_hit_rate)});
  }
  table.print(std::cout);
  for (const CrashRow& row : rows) {
    // The recovery accounting next to the latency table, in the shared
    // counter format every fault experiment logs.
    metrics::counters_table(
        std::string("Cluster crash-recovery counters (rehydrate=") +
            (row.rehydrate ? "on)" : "off)"),
        {{"host_crashes", row.counters.host_crashes},
         {"missed_heartbeats", row.counters.missed_heartbeats},
         {"hosts_declared_dead", row.counters.hosts_declared_dead},
         {"probes", row.counters.probes},
         {"hosts_rejoined", row.counters.hosts_rejoined},
         {"backlog_redispatched", row.counters.redispatched},
         {"orphans_redispatched", row.counters.orphans_redispatched},
         {"duplicates_suppressed", row.counters.duplicates_suppressed},
         {"rehydrated_sandboxes", row.counters.rehydrated_sandboxes},
         {"forced_routes", row.counters.forced_routes},
         {"victim_warm_hits", row.victim_warm_hits}})
        .print(std::cout);
  }

  if (!options.csv_path.empty()) {
    metrics::CsvWriter csv(
        {"hosts", "policy", "dispatch", "rehydrate", "restart_after_us",
         "submitted", "outcomes", "completed_ok", "shed", "lost",
         "double_executed", "host_crashes", "missed_heartbeats",
         "hosts_declared_dead", "probes", "hosts_rejoined",
         "orphans_redispatched", "duplicates_suppressed",
         "rehydrated_sandboxes", "forced_routes", "detection_ms",
         "recovery_ms", "victim_invocations", "victim_warm_hits",
         "warm_hit_rate", "wall_seconds"});
    for (const CrashRow& row : rows) {
      csv.add_row(
          {std::to_string(options.hosts),
           std::string(cluster::to_string(options.policy)),
           std::string(cluster::to_string(options.dispatch)),
           row.rehydrate ? "1" : "0",
           std::to_string(options.restart_after_us),
           std::to_string(row.submitted), std::to_string(row.outcomes),
           std::to_string(row.completed_ok),
           std::to_string(row.counters.shed), std::to_string(row.lost),
           std::to_string(row.double_executed),
           std::to_string(row.counters.host_crashes),
           std::to_string(row.counters.missed_heartbeats),
           std::to_string(row.counters.hosts_declared_dead),
           std::to_string(row.counters.probes),
           std::to_string(row.counters.hosts_rejoined),
           std::to_string(row.counters.orphans_redispatched),
           std::to_string(row.counters.duplicates_suppressed),
           std::to_string(row.counters.rehydrated_sandboxes),
           std::to_string(row.counters.forced_routes),
           metrics::format_double(row.detection_ms, 3),
           metrics::format_double(row.recovery_ms, 3),
           std::to_string(row.victim_invocations),
           std::to_string(row.victim_warm_hits),
           metrics::format_double(row.warm_hit_rate, 4),
           metrics::format_double(row.wall_seconds, 6)});
    }
    if (const auto status = csv.write_file(options.csv_path);
        !status.is_ok()) {
      std::cerr << "csv write failed: " << status.to_report() << "\n";
      return 1;
    }
  }

  // The exactly-once gate: a crash may shed work (typed) but may never
  // lose a submission or execute one twice.
  for (const CrashRow& row : rows) {
    if (row.lost != 0 || row.double_executed != 0) {
      std::cerr << "crash gate FAILED (rehydrate="
                << (row.rehydrate ? "on" : "off") << "): " << row.lost
                << " lost, " << row.double_executed
                << " double-executed submissions\n";
      return 1;
    }
  }
  std::cout << "crash gate passed: zero lost, zero double-executed across "
            << rows.size() << " run(s)\n";
  return 0;
}

int run_crash_single(const Options& options) {
  CrashRow row;
  if (const int rc = run_crash_once(options, options.rehydrate, row);
      rc != 0) {
    return rc;
  }
  return report_crash_rows(options, {row});
}

int run_crash_sweep(const Options& options) {
  // Treatment arm first (warm rejoin rehydration on), then the
  // --no-rehydrate baseline: same traffic, same kill, same restart.
  CrashRow with_rehydrate;
  if (const int rc = run_crash_once(options, true, with_rehydrate);
      rc != 0) {
    return rc;
  }
  CrashRow baseline;
  if (const int rc = run_crash_once(options, false, baseline); rc != 0) {
    return rc;
  }
  if (const int rc = report_crash_rows(options, {with_rehydrate, baseline});
      rc != 0) {
    return rc;
  }
  // The rehydration gate: warm rejoin must strictly beat the cold
  // baseline on post-failover warm hits, or the subsystem is dead
  // weight.
  if (with_rehydrate.warm_hit_rate <= baseline.warm_hit_rate) {
    std::cerr << "rehydration gate FAILED: post-failover warm-hit rate "
              << metrics::format_percent(with_rehydrate.warm_hit_rate)
              << " (rehydrate) is not above "
              << metrics::format_percent(baseline.warm_hit_rate)
              << " (baseline)\n";
    return 1;
  }
  std::cout << "rehydration gate passed: post-failover warm-hit rate "
            << metrics::format_percent(with_rehydrate.warm_hit_rate)
            << " (rehydrate) > "
            << metrics::format_percent(baseline.warm_hit_rate)
            << " (baseline)\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Workflow chains (--chain w1,w2,...): the E21 driver. The same stage list
// is measured three ways on a fresh platform each:
//   * fused         — all-uLL, same sandbox shape: the planner fuses the
//                     whole chain into ONE kHorse resume (one pool take,
//                     one resume prologue, in-sandbox handoff);
//   * unfused       — identical stages, dispatched per hop: every stage
//                     pays its own pool take + resume prologue (what a
//                     chain cost before platform-side fusion);
//   * cross-sandbox — identical stages but mismatched sandbox shapes
//                     (memory grows per stage), so no edge is fusable and
//                     invoke_chain degrades to per-stage segments.
// The gate: fused p99 must be strictly below unfused p99, or fusion is
// dead weight and the run exits non-zero.
// ---------------------------------------------------------------------------

struct ChainStageKind {
  std::string name;
  std::shared_ptr<workloads::Function> (*make)();
};

std::shared_ptr<workloads::Function> make_firewall() {
  return std::make_shared<workloads::FirewallFunction>(256);
}
std::shared_ptr<workloads::Function> make_nat() {
  return std::make_shared<workloads::NatFunction>(64);
}
std::shared_ptr<workloads::Function> make_array_filter() {
  return std::make_shared<workloads::ArrayFilterFunction>();
}

std::vector<ChainStageKind> parse_chain_stages(const std::string& spec) {
  std::vector<ChainStageKind> stages;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t comma = spec.find(',', begin);
    const std::string name =
        spec.substr(begin, comma == std::string::npos ? comma : comma - begin);
    if (name == "firewall") {
      stages.push_back({name, &make_firewall});
    } else if (name == "nat") {
      stages.push_back({name, &make_nat});
    } else if (name == "array_filter") {
      stages.push_back({name, &make_array_filter});
    } else {
      std::cerr << "--chain: unknown workload '" << name
                << "' (want firewall|nat|array_filter)\n";
      std::exit(2);
    }
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  return stages;
}

workloads::Request chain_request() {
  workloads::Request request = packet_request();
  request.payload = {5, 10, 15, 20};
  request.threshold = 7;
  return request;
}

struct ChainVariantResult {
  std::string variant;
  std::uint64_t iterations = 0;
  std::uint64_t failed = 0;
  std::uint64_t fused_segments = 0;
  std::uint64_t fallback_stages = 0;
  std::int64_t p50 = 0;
  std::int64_t p99 = 0;
};

/// One variant on a fresh platform: register the stages (same shape when
/// `same_shape`, growing memory footprints otherwise), provision + snapshot
/// every stage, then time `iterations` end-to-end chain executions.
/// `per_hop` dispatches stage by stage through Platform::invoke (the
/// pre-fusion baseline); otherwise the chain goes through invoke_chain and
/// the planner decides.
int run_chain_variant(const Options& options, const char* variant,
                      const std::vector<ChainStageKind>& kinds,
                      bool same_shape, bool per_hop,
                      ChainVariantResult& result) {
  faas::PlatformConfig config;
  config.num_cpus = options.cpus;
  config.horse.num_ull_runqueues = options.ull_queues;
  std::optional<faas::Platform> platform_storage;
  try {
    platform_storage.emplace(config);
  } catch (const std::exception& error) {
    std::cerr << "invalid configuration: " << error.what() << "\n";
    return 2;
  }
  faas::Platform& platform = *platform_storage;

  faas::WorkflowSpec workflow;
  workflow.name = "bench-chain";
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    faas::FunctionSpec spec;
    spec.name = std::string(variant) + "-" + kinds[i].name + "-" +
                std::to_string(i);
    spec.implementation = kinds[i].make();
    spec.sandbox.name = spec.name + "-sb";
    spec.sandbox.num_vcpus = 1;
    // Same shape → every adjacent uLL pair fuses; growing footprint →
    // no downstream stage fits the upstream sandbox, planner splits.
    spec.sandbox.memory_mb = same_shape ? 1 : (1u << i);
    spec.sandbox.ull = true;
    const auto id = platform.registry().add(std::move(spec));
    if (!id) {
      std::cerr << "register failed: " << id.status().to_report() << "\n";
      return 1;
    }
    workflow.stages.push_back(*id);
    // The unfused/cross-sandbox variants resume every stage from its own
    // pool; the fused variant only ever takes the entry sandbox, but
    // provisioning all keeps the three platforms identically prepared.
    if (!platform.provision(*id, std::max<std::size_t>(1, options.provision))
             .is_ok() ||
        !platform.ensure_snapshot(*id).is_ok()) {
      std::cerr << "provision failed for stage " << kinds[i].name << "\n";
      return 1;
    }
  }
  const auto workflow_id = platform.registry().add_workflow(workflow);
  if (!workflow_id) {
    std::cerr << "workflow registration failed: "
              << workflow_id.status().to_report() << "\n";
    return 1;
  }
  const faas::WorkflowSpec& spec = **platform.registry().find_workflow(
      *workflow_id);

  const std::size_t warmup = 64;
  const std::size_t iterations = std::max<std::size_t>(1, options.per_thread);
  metrics::Histogram latency;
  std::uint64_t failed = 0;
  for (std::size_t i = 0; i < warmup + iterations; ++i) {
    const util::Stopwatch watch;
    bool ok = true;
    if (per_hop) {
      // The pre-fusion shape: each hop is its own dispatch (pool take,
      // resume prologue, pause-and-pool), edges applied by the caller.
      workloads::Request request = chain_request();
      for (std::size_t hop = 0; hop < spec.stages.size(); ++hop) {
        const auto record = platform.invoke(spec.stages[hop], request,
                                            faas::StartMode::kHorse);
        if (!record) {
          ok = false;
          break;
        }
        if (hop + 1 < spec.stages.size() &&
            !faas::apply_edge(spec.edges[hop], record->response, request)) {
          break;  // gated (never fires for these workloads' requests)
        }
      }
    } else {
      const auto chain = platform.invoke_chain(*workflow_id, chain_request(),
                                               faas::StartMode::kHorse);
      ok = chain.has_value();
    }
    if (i < warmup) {
      continue;
    }
    if (ok) {
      latency.record(watch.elapsed());
    } else {
      ++failed;
    }
  }

  const faas::PlatformCounters counters = platform.counters();
  result.variant = variant;
  result.iterations = iterations;
  result.failed = failed;
  result.fused_segments = counters.fused_segments;
  result.fallback_stages = counters.chain_fallback_stages;
  result.p50 = latency.p50();
  result.p99 = latency.p99();
  if (failed == iterations) {
    std::cerr << "chain variant '" << variant << "' never completed\n";
    return 1;
  }
  return 0;
}

int run_chain(const Options& options) {
  const std::vector<ChainStageKind> kinds = parse_chain_stages(options.chain);
  if (kinds.size() < 2) {
    std::cerr << "--chain wants at least two stages\n";
    return 2;
  }

  ChainVariantResult fused;
  ChainVariantResult unfused;
  ChainVariantResult cross;
  if (const int rc = run_chain_variant(options, "fused", kinds,
                                       /*same_shape=*/true, /*per_hop=*/false,
                                       fused);
      rc != 0) {
    return rc;
  }
  if (const int rc = run_chain_variant(options, "unfused", kinds,
                                       /*same_shape=*/true, /*per_hop=*/true,
                                       unfused);
      rc != 0) {
    return rc;
  }
  if (const int rc = run_chain_variant(options, "cross-sandbox", kinds,
                                       /*same_shape=*/false,
                                       /*per_hop=*/false, cross);
      rc != 0) {
    return rc;
  }
  // The fused arm must actually have fused (one segment per iteration,
  // none fell back) and the cross-sandbox arm must NOT have.
  if (fused.fused_segments == 0) {
    std::cerr << "chain gate FAILED: the fused variant never produced a "
                 "fused segment (planner split an all-uLL same-shape "
                 "chain)\n";
    return 1;
  }
  if (cross.fused_segments != 0) {
    std::cerr << "chain gate FAILED: the cross-sandbox variant fused "
                 "despite mismatched sandbox shapes\n";
    return 1;
  }

  metrics::TextTable table(
      "Macro: workflow chain [" + options.chain + "], " +
          std::to_string(kinds.size()) + " stages, kHorse",
      {"variant", "iterations", "failed", "fused segs", "fallback stages",
       "p50", "p99"});
  for (const ChainVariantResult* row : {&fused, &unfused, &cross}) {
    table.add_row({row->variant, std::to_string(row->iterations),
                   std::to_string(row->failed),
                   std::to_string(row->fused_segments),
                   std::to_string(row->fallback_stages),
                   metrics::format_nanos(static_cast<double>(row->p50)),
                   metrics::format_nanos(static_cast<double>(row->p99))});
  }
  table.print(std::cout);

  if (!options.csv_path.empty()) {
    metrics::CsvWriter csv({"chain", "stages", "variant", "iterations",
                            "failed", "fused_segments", "fallback_stages",
                            "p50_ns", "p99_ns"});
    for (const ChainVariantResult* row : {&fused, &unfused, &cross}) {
      csv.add_row({options.chain, std::to_string(kinds.size()), row->variant,
                   std::to_string(row->iterations),
                   std::to_string(row->failed),
                   std::to_string(row->fused_segments),
                   std::to_string(row->fallback_stages),
                   std::to_string(row->p50), std::to_string(row->p99)});
    }
    if (const auto status = csv.write_file(options.csv_path);
        !status.is_ok()) {
      std::cerr << "csv write failed: " << status.to_report() << "\n";
      return 1;
    }
  }

  // The E21 gate: fusing the chain into one resume must strictly beat
  // per-hop dispatch at the tail, or the fusion path is dead weight.
  if (fused.p99 >= unfused.p99) {
    std::cerr << "chain gate FAILED: fused p99 "
              << metrics::format_nanos(static_cast<double>(fused.p99))
              << " is not strictly below unfused per-hop p99 "
              << metrics::format_nanos(static_cast<double>(unfused.p99))
              << "\n";
    return 1;
  }
  std::cout << "chain gate passed: fused p99 "
            << metrics::format_nanos(static_cast<double>(fused.p99))
            << " < unfused per-hop p99 "
            << metrics::format_nanos(static_cast<double>(unfused.p99))
            << " (cross-sandbox p99 "
            << metrics::format_nanos(static_cast<double>(cross.p99)) << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);
  if (!options.chain.empty()) {
    return run_chain(options);
  }
  if (options.overload_sweep) {
    return run_overload_sweep(options);
  }
  if (options.crash_sweep) {
    return run_crash_sweep(options);
  }
  if (options.kill) {
    return run_crash_single(options);
  }
  return options.hosts == 0 ? run_single_host(options) : run_cluster(options);
}
