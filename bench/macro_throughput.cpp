// Macro benchmark (ours) — closed-loop control-plane throughput scaling.
//
// The sharded control plane's whole claim is that invocations of
// different functions do not contend: N submit threads driving disjoint
// function sets should deliver ~N× the aggregate invocations/sec of one
// thread (until real cores run out). This harness measures exactly that:
//
//   * F functions (mixed uLL / plain), each provisioned with a small warm
//     pool and snapshot;
//   * T closed-loop submit threads, each owning the functions
//     {t, t+T, t+2T, ...} so threads map onto disjoint control shards;
//   * a fixed per-thread invocation count with a steady mode mix (mostly
//     kHorse for uLL / kWarm for plain, a sprinkle of kCold + kRestore);
//   * results as a table plus optional CSV (--csv), including the shard
//     and ull-manager lock contention fractions that explain any
//     sub-linear scaling.
//
// CI runs this with --threads 1 and --threads 8 and archives the CSV so
// the scaling ratio is tracked per PR. On boxes with fewer real cores
// than threads the ratio degrades toward 1 — the contended-fraction
// columns distinguish "no cores" from "lock convoy".
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "faas/platform.hpp"
#include "metrics/csv.hpp"
#include "metrics/reporter.hpp"
#include "util/time.hpp"
#include "workloads/array_filter.hpp"
#include "workloads/nat.hpp"

namespace {

using namespace horse;

struct Options {
  std::size_t threads = 4;
  std::size_t per_thread = 2000;
  std::size_t functions = 16;
  std::size_t cpus = 16;
  std::uint32_t ull_queues = 4;
  std::size_t provision = 4;
  std::string csv_path;
};

Options parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      options.threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--per-thread") {
      options.per_thread = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--functions") {
      options.functions = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--cpus") {
      options.cpus = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--ull-queues") {
      options.ull_queues =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--provision") {
      options.provision = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--csv") {
      options.csv_path = next();
    } else {
      std::cerr << "usage: macro_throughput [--threads N] [--per-thread M]\n"
                   "    [--functions F] [--cpus C] [--ull-queues Q]\n"
                   "    [--provision P] [--csv PATH]\n";
      std::exit(2);
    }
  }
  return options;
}

workloads::Request filter_request() {
  workloads::Request request;
  request.payload = {5, 10, 15, 20};
  request.threshold = 7;
  return request;
}

workloads::Request packet_request() {
  workloads::Request request;
  request.header = "src=10.0.0.1 dst=10.0.0.2 port=443 proto=tcp";
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);

  faas::PlatformConfig config;
  config.num_cpus = options.cpus;
  config.horse.num_ull_runqueues = options.ull_queues;
  // Substrate constructors throw on invalid configs (queues > cpus,
  // zero queues, ...); surface that as a usage error, not a terminate.
  std::optional<faas::Platform> platform_storage;
  try {
    platform_storage.emplace(config);
  } catch (const std::exception& error) {
    std::cerr << "invalid configuration: " << error.what() << "\n";
    return 2;
  }
  faas::Platform& platform = *platform_storage;

  // Register F functions: even ids are uLL packet functions (kHorse-able),
  // odd ids are plain filter functions (kWarm ceiling).
  struct Fn {
    faas::FunctionId id = 0;
    bool ull = false;
  };
  std::vector<Fn> functions;
  for (std::size_t i = 0; i < options.functions; ++i) {
    const bool ull = (i % 2) == 0;
    faas::FunctionSpec spec;
    spec.name = (ull ? "nat-" : "filter-") + std::to_string(i);
    if (ull) {
      spec.implementation = std::make_shared<workloads::NatFunction>(64);
    } else {
      spec.implementation =
          std::make_shared<workloads::ArrayFilterFunction>();
    }
    spec.sandbox.name = spec.name + "-sb";
    spec.sandbox.num_vcpus = 1;
    spec.sandbox.memory_mb = 1;
    spec.sandbox.ull = ull;
    const auto id = platform.registry().add(std::move(spec));
    if (!id) {
      std::cerr << "register failed: " << id.status().to_report() << "\n";
      return 1;
    }
    functions.push_back({*id, ull});
    if (!platform.provision(*id, options.provision).is_ok() ||
        !platform.ensure_snapshot(*id).is_ok()) {
      std::cerr << "provision failed for function " << *id << "\n";
      return 1;
    }
  }

  // Closed-loop submit threads over disjoint function sets.
  const std::size_t threads =
      std::min(options.threads, functions.size());
  std::vector<std::jthread> submitters;
  const util::Nanos started = util::monotonic_now();
  for (std::size_t t = 0; t < threads; ++t) {
    submitters.emplace_back([&platform, &functions, &options, t, threads] {
      // Thread t owns functions {t, t+T, t+2T, ...}: disjoint shards.
      std::vector<const Fn*> mine;
      for (std::size_t j = t; j < functions.size(); j += threads) {
        mine.push_back(&functions[j]);
      }
      for (std::size_t i = 0; i < options.per_thread; ++i) {
        const Fn& fn = *mine[i % mine.size()];
        faas::StartMode mode;
        if (i % 64 == 63) {
          mode = faas::StartMode::kCold;
        } else if (i % 64 == 31) {
          mode = faas::StartMode::kRestore;
        } else {
          mode = fn.ull ? faas::StartMode::kHorse : faas::StartMode::kWarm;
        }
        const auto record =
            platform.invoke(fn.id, fn.ull ? packet_request() : filter_request(),
                            mode);
        (void)record;  // failures are counted by the platform
      }
    });
  }
  submitters.clear();  // join
  const double wall_seconds =
      static_cast<double>(util::monotonic_now() - started) / 1e9;

  const faas::PlatformCounters counters = platform.counters();
  const metrics::ContentionStats shard_lock = platform.shard_contention();
  const metrics::ContentionStats ull_lock =
      platform.ull_manager().contention();
  const double inv_per_sec =
      wall_seconds > 0.0
          ? static_cast<double>(counters.invocations) / wall_seconds
          : 0.0;

  metrics::TextTable table(
      "Macro: closed-loop control-plane throughput",
      {"threads", "invocations", "wall (s)", "inv/s", "cold", "restore",
       "warm", "horse", "failed", "shard contended", "ull contended"});
  table.add_row({std::to_string(threads), std::to_string(counters.invocations),
                 metrics::format_double(wall_seconds, 3),
                 metrics::format_double(inv_per_sec, 1),
                 std::to_string(counters.cold),
                 std::to_string(counters.restore),
                 std::to_string(counters.warm),
                 std::to_string(counters.horse),
                 std::to_string(counters.failed),
                 metrics::format_double(shard_lock.contended_fraction(), 4),
                 metrics::format_double(ull_lock.contended_fraction(), 4)});
  table.print(std::cout);

  if (!options.csv_path.empty()) {
    metrics::CsvWriter csv(
        {"threads", "invocations", "wall_seconds", "inv_per_sec", "cold",
         "restore", "warm", "horse", "failed", "shard_contended_fraction",
         "ull_contended_fraction"});
    csv.add_numeric_row({static_cast<double>(threads),
                         static_cast<double>(counters.invocations),
                         wall_seconds, inv_per_sec,
                         static_cast<double>(counters.cold),
                         static_cast<double>(counters.restore),
                         static_cast<double>(counters.warm),
                         static_cast<double>(counters.horse),
                         static_cast<double>(counters.failed),
                         shard_lock.contended_fraction(),
                         ull_lock.contended_fraction()});
    if (const auto status = csv.write_file(options.csv_path);
        !status.is_ok()) {
      std::cerr << "csv write failed: " << status.to_report() << "\n";
      return 1;
    }
  }

  // Closed-loop sanity: every submitted invocation must be accounted for.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(threads) * options.per_thread;
  if (counters.invocations + counters.failed != expected) {
    std::cerr << "accounting mismatch: " << counters.invocations << " ok + "
              << counters.failed << " failed != " << expected << "\n";
    return 1;
  }
  return 0;
}
