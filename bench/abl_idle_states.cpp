// E15 (system-integration ablation, ours) — CPU idle states vs the fast
// path.
//
// HORSE gets software resume down to ~150 ns, but between triggers the
// reserved CPU idles, and a menu-style cpuidle governor would put it into
// C6 whose ~133 µs exit latency dwarfs the entire fast path. This harness
// quantifies the interaction across trigger gaps and shows the latency
// cap a uLL reservation must place on its CPU — connecting HORSE to the
// idle-state literature the paper cites (µDPM, AgileWatts, Yawn).
#include <iostream>

#include "metrics/reporter.hpp"
#include "sched/idle_governor.hpp"
#include "sim/cost_model.hpp"

namespace {

using namespace horse;

}  // namespace

int main() {
  const auto costs = sim::CostModel::defaults(vmm::VmmProfile::firecracker());
  const util::Nanos horse_resume = costs.horse_resume(1);

  metrics::TextTable table(
      "Idle states x HORSE: effective uLL trigger latency on the ull CPU",
      {"trigger gap", "policy", "c-state", "wake penalty", "horse resume",
       "effective init", "idle power"});

  for (const util::Nanos gap :
       {1 * util::kMillisecond, 100 * util::kMillisecond, 1 * util::kSecond}) {
    for (const bool capped : {false, true}) {
      sched::IdleGovernor governor(1);
      if (capped) {
        governor.set_latency_cap(0, 500);  // the uLL reservation's QoS cap
      }
      for (int i = 0; i < 10; ++i) {
        governor.observe_idle(0, gap);
      }
      const auto state_index = governor.select(0);
      const auto& state = governor.state(state_index);
      const util::Nanos effective = state.exit_latency + horse_resume;
      table.add_row(
          {metrics::format_nanos(static_cast<double>(gap)),
           capped ? "ull cap 500ns" : "menu (default)",
           std::string(state.name),
           metrics::format_nanos(static_cast<double>(state.exit_latency)),
           metrics::format_nanos(static_cast<double>(horse_resume)),
           metrics::format_nanos(static_cast<double>(effective)),
           metrics::format_double(state.power_watts, 1) + " W"});
    }
  }
  table.print(std::cout);
  std::cout << "\nWithout the cap, C6's 133 us exit adds ~900x the entire "
               "HORSE resume; the reservation trades idle power (35 W vs "
               "5 W per core) for keeping the 150 ns path meaningful — the "
               "trade the idle-state papers (uDPM, AgileWatts, Yawn) "
               "attack from the hardware side.\n";
  return 0;
}
