// E4 — Figure 3: resume time of a sandbox under the four setups
// (vanil / coal / ppsm / horse) across the vCPU sweep.
//
// Paper bands: coal improves the vanilla resume by 16-20%, ppsm by
// 55-69%, HORSE by up to 85% (7.16x) with a flat O(1) curve (~150 ns on
// the authors' Xeon; absolute values here are this host's).
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <new>

#include "core/horse_resume.hpp"
#include "metrics/csv.hpp"
#include "metrics/reporter.hpp"
#include "metrics/stats.hpp"
#include "util/alloc_counter.hpp"

namespace {

using namespace horse;

constexpr int kRepetitions = 31;
const std::vector<std::uint32_t> kVcpuSweep{1, 2, 4, 8, 16, 24, 32, 36};

// --strict-alloc: gate the full-HORSE resume on zero heap allocations.
// Only meaningful when util/alloc_hook.cpp is compiled into this binary
// (the build does that for fig3; a canary check verifies it is live).
bool g_strict_alloc = false;
std::uint64_t g_strict_checked = 0;
std::uint64_t g_strict_violations = 0;

/// Median resume latency for one engine/feature setup at `vcpus`. With
/// `strict`, every resume after the first is asserted allocation-free
/// (rep 0 is the warm-up rep: first-touch growth of reusable buffers is
/// allowed there, steady state is what the 150 ns claim is about).
double measure(vmm::ResumeEngine& engine, std::uint32_t vcpus, bool ull,
               bool strict = false) {
  vmm::SandboxConfig config;
  config.name = "probe";
  config.num_vcpus = vcpus;
  config.memory_mb = 1;
  config.ull = ull;
  vmm::Sandbox sandbox(10'000 + vcpus, config);
  (void)engine.start(sandbox);
  metrics::SampleStats samples;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    (void)engine.pause(sandbox);
    vmm::ResumeBreakdown bd;
    const std::uint64_t allocs_before = util::thread_alloc_count();
    (void)engine.resume(sandbox, &bd);
    const std::uint64_t allocs_after = util::thread_alloc_count();
    if (strict && g_strict_alloc && rep > 0) {
      ++g_strict_checked;
      if (allocs_after != allocs_before) {
        ++g_strict_violations;
        std::cerr << "strict-alloc violation: " << (allocs_after - allocs_before)
                  << " allocation(s) in resume (vcpus=" << vcpus
                  << " rep=" << rep << ")\n";
      }
    }
    samples.add(static_cast<double>(bd.total()));
  }
  (void)engine.destroy(sandbox);
  return samples.percentile(50);
}

void add_background(vmm::ResumeEngine& engine, vmm::Sandbox& background) {
  for (std::uint32_t i = 0; i < background.num_vcpus(); ++i) {
    background.vcpu(i).credit = 1000 * (i + 1);
  }
  (void)engine.start(background);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict-alloc") == 0) {
      g_strict_alloc = true;
    }
  }
  if (g_strict_alloc) {
    // Canary: a zero reading is only trustworthy if the counting
    // operator new is actually linked into this binary. Call operator
    // new through a volatile pointer so -O3 cannot elide the paired
    // new/delete the way it can for a make_unique expression.
    const std::uint64_t before = util::thread_alloc_count();
    void* (*volatile raw_new)(std::size_t) = ::operator new;
    ::operator delete(raw_new(sizeof(int)));
    if (util::thread_alloc_count() == before) {
      std::cerr << "--strict-alloc: alloc hook not live in this binary\n";
      return 2;
    }
  }

  const auto profile = vmm::VmmProfile::firecracker();
  vmm::SandboxConfig bg_config;
  bg_config.name = "background";
  bg_config.num_vcpus = 16;
  bg_config.memory_mb = 1;

  struct Setup {
    std::string name;
    std::function<double(std::uint32_t)> measure;
    std::unique_ptr<sched::CpuTopology> topology;
    std::unique_ptr<vmm::ResumeEngine> engine;
    std::unique_ptr<vmm::Sandbox> background;
  };
  std::vector<Setup> setups;

  auto add_setup = [&](const std::string& name, bool horse_engine,
                       core::HorseFeatures features, bool strict = false) {
    Setup setup;
    setup.name = name;
    setup.topology = std::make_unique<sched::CpuTopology>(8);
    if (horse_engine) {
      setup.engine = std::make_unique<core::HorseResumeEngine>(
          *setup.topology, profile, core::HorseConfig{}, features);
    } else {
      setup.engine = std::make_unique<vmm::ResumeEngine>(*setup.topology, profile);
    }
    setup.background = std::make_unique<vmm::Sandbox>(888, bg_config);
    add_background(*setup.engine, *setup.background);
    const bool ull = horse_engine;
    vmm::ResumeEngine* engine = setup.engine.get();
    setup.measure = [engine, ull, strict](std::uint32_t vcpus) {
      return measure(*engine, vcpus, ull, strict);
    };
    setups.push_back(std::move(setup));
  };

  add_setup("vanil", false, {});
  add_setup("coal", true, core::HorseFeatures::coalescing_only());
  add_setup("ppsm", true, core::HorseFeatures::ppsm_only());
  add_setup("horse", true, core::HorseFeatures::all(), /*strict=*/true);

  // The full-HORSE engine, for the degraded-resume accounting: a fallback
  // merge means a sample was NOT the O(1) splice (stale/poisoned index) —
  // Figure 3's flat curve is only meaningful if this column stays 0.
  auto* horse_engine =
      static_cast<core::HorseResumeEngine*>(setups.back().engine.get());

  metrics::TextTable table(
      "Figure 3: resume time by setup (median ns over 31 runs)",
      {"vcpus", "vanil", "coal", "ppsm", "horse", "horse speedup"});
  std::vector<metrics::Series> series(5);
  for (std::size_t i = 0; i < setups.size(); ++i) {
    series[i].name = setups[i].name;
  }
  series[4].name = "horse_degraded_resumes";

  for (const std::uint32_t vcpus : kVcpuSweep) {
    std::vector<double> results;
    const std::uint64_t degraded_before =
        horse_engine->degradation_stats().fallback_merges;
    for (auto& setup : setups) {
      results.push_back(setup.measure(vcpus));
    }
    const std::uint64_t degraded_after =
        horse_engine->degradation_stats().fallback_merges;
    table.add_row({std::to_string(vcpus), metrics::format_nanos(results[0]),
                   metrics::format_nanos(results[1]),
                   metrics::format_nanos(results[2]),
                   metrics::format_nanos(results[3]),
                   metrics::format_double(results[0] / results[3], 2) + "x"});
    for (std::size_t i = 0; i < setups.size(); ++i) {
      series[i].xs.push_back(vcpus);
      series[i].ys.push_back(results[i]);
    }
    series[4].xs.push_back(vcpus);
    series[4].ys.push_back(static_cast<double>(degraded_after - degraded_before));
  }

  table.print(std::cout);
  std::cout << "\n";
  metrics::print_series(std::cout, "Figure 3 series (ns)", "vcpus", series);

  // Degradation accounting for the full-HORSE engine across the whole
  // sweep: nonzero fallback counts flag samples that silently took the
  // vanilla walk instead of the measured O(1) splice.
  const core::ResumeDegradationStats deg = horse_engine->degradation_stats();
  metrics::counters_table("HORSE degraded-resume counters",
                 {{"fallback_merges", deg.fallback_merges},
                  {"stale_index_fallbacks", deg.stale_index_fallbacks},
                  {"poisoned_index_fallbacks", deg.poisoned_index_fallbacks},
                  {"merge_error_fallbacks", deg.merge_error_fallbacks},
                  {"deferred_refreshes", deg.deferred_refreshes}})
      .print(std::cout);

  // Machine-readable copy for plotting / diffing against the paper.
  const auto csv_status = metrics::series_to_csv("vcpus", series)
                              .write_file("fig3_resume_time.csv");
  if (csv_status.is_ok()) {
    std::cout << "\nwrote fig3_resume_time.csv\n";
  }

  const double improvement_36 =
      1.0 - series[3].ys.back() / series[0].ys.back();
  const double flatness =
      series[3].ys.back() / series[3].ys.front();
  std::cout << "\nhorse improvement at 36 vCPUs: "
            << metrics::format_percent(improvement_36, 1) << " ("
            << metrics::format_double(series[0].ys.back() / series[3].ys.back(), 2)
            << "x)\nhorse 36-vCPU / 1-vCPU ratio (flatness): "
            << metrics::format_double(flatness, 2)
            << "\nPaper bands: coal 16-20%, ppsm 55-69%, horse up to 85% "
               "(7.16x); horse flat across vCPUs.\n";

  if (g_strict_alloc) {
    std::cout << "\nstrict-alloc: " << g_strict_checked
              << " steady-state HORSE resumes checked, " << g_strict_violations
              << " violation(s)\n";
    if (g_strict_checked == 0 || g_strict_violations != 0) {
      return 1;
    }
  }
  return 0;
}
