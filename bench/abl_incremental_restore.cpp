// E14 (restore ablation, ours) — full vs incremental (dirty-page) restore.
//
// The paper's restore baseline is FaaSnap, whose core claim is that
// restore cost should track the *working set*, not the image. This
// harness sweeps the dirty fraction of a sandbox image and compares the
// measured copy time of a full restore against base+delta restores —
// the real-copy component of Table 1's restore row.
#include <iostream>
#include <memory>

#include "metrics/reporter.hpp"
#include "metrics/stats.hpp"
#include "sched/topology.hpp"
#include "util/rng.hpp"
#include "vmm/resume_engine.hpp"
#include "vmm/snapshot.hpp"

namespace {

using namespace horse;

constexpr int kRepetitions = 9;

}  // namespace

int main() {
  sched::CpuTopology topology(2);
  vmm::ResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  vmm::SnapshotManager manager(vmm::VmmProfile::firecracker());

  // A 512 MB-configured sandbox → 8 MiB scaled image (2048 pages).
  vmm::SandboxConfig config;
  config.name = "restore-probe";
  config.num_vcpus = 1;
  config.memory_mb = 512;
  vmm::Sandbox sandbox(1, config);
  util::Xoshiro256 rng(3);
  for (auto& byte : sandbox.guest_memory()) {
    byte = static_cast<std::byte>(rng.bounded(256));
  }
  (void)engine.start(sandbox);
  (void)engine.pause(sandbox);
  const auto base = manager.take(sandbox);
  if (!base) {
    std::cerr << "base snapshot failed\n";
    return 1;
  }
  const std::size_t total_pages =
      sandbox.guest_memory().size() / vmm::DirtyTracker::kPageSize;

  metrics::TextTable table(
      "Restore cost vs working set (8 MiB scaled image, 2048 pages)",
      {"dirty pages", "dirty %", "snapshot capture", "restore copy",
       "vs full"});

  // Full restore reference; full capture = take() copying the image.
  metrics::SampleStats full_capture;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    util::Stopwatch watch;
    auto snapshot = manager.take(sandbox);
    full_capture.add(static_cast<double>(watch.elapsed()));
  }
  metrics::SampleStats full_samples;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    auto restored = manager.restore(*base, 100 + rep);
    if (!restored) {
      std::cerr << "full restore failed: " << restored.status().to_report()
                << "\n";
      return 1;
    }
    full_samples.add(static_cast<double>(restored->copy_time));
  }
  const double full_copy = full_samples.percentile(50);
  table.add_row({"full image", "100%",
                 metrics::format_nanos(full_capture.percentile(50)),
                 metrics::format_nanos(full_copy), "1.00x"});

  for (const double fraction : {0.01, 0.05, 0.25, 0.50}) {
    const auto dirty_pages =
        static_cast<std::size_t>(fraction * static_cast<double>(total_pages));
    vmm::DirtyTracker tracker(sandbox.guest_memory().size());
    util::Xoshiro256 page_rng(7);
    for (std::size_t i = 0; i < dirty_pages; ++i) {
      tracker.mark(page_rng.bounded(total_pages) * vmm::DirtyTracker::kPageSize);
    }
    metrics::SampleStats capture_samples;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      util::Stopwatch watch;
      auto probe = manager.take_delta(sandbox, *base, tracker);
      capture_samples.add(static_cast<double>(watch.elapsed()));
    }
    const auto delta = manager.take_delta(sandbox, *base, tracker);
    if (!delta) {
      std::cerr << "delta failed: " << delta.status().to_report() << "\n";
      return 1;
    }
    metrics::SampleStats samples;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      auto restored = manager.restore_incremental(*base, *delta, 200 + rep);
      if (!restored) {
        std::cerr << "restore failed\n";
        return 1;
      }
      samples.add(static_cast<double>(restored->copy_time));
    }
    const double median = samples.percentile(50);
    table.add_row({std::to_string(delta->pages.size()),
                   metrics::format_percent(fraction, 0),
                   metrics::format_nanos(capture_samples.percentile(50)),
                   metrics::format_nanos(median),
                   metrics::format_double(median / full_copy, 2) + "x"});
  }

  table.print(std::cout);
  std::cout << "\nNote: the base+delta copy includes duplicating the base "
               "image, so the win shows in the *delta capture* and page-in "
               "volume; a FaaSnap-grade lazy restore would map the base "
               "copy-on-write and make the dirty columns sub-1.00x.\n";
  (void)engine.destroy(sandbox);
  return 0;
}
