// E17 (maintenance-cost ablation, ours) — the rebuild storm, measured.
//
// N co-resident paused sandboxes all index the same reserved
// ull_runqueue. Every structural mutation of the queue stales all N
// indexes at once; before this PR each of them answered with an
// O(|A|+|B|) rebuild — N full rebuilds per mutation. The journal-backed
// repair() answers with O(runs + delta) work instead.
//
// This harness sweeps N ∈ {1, 4, 16, 64} × mutation-batch size (how many
// queue mutations land between maintenance rounds; all within the
// journal window) and reports, per strategy, the per-mutation
// maintenance cost plus the O(1) splice-merge latency the maintained
// index buys. Output: text table, optional CSV (--csv PATH), and a JSON
// summary (default BENCH_p2sm_maintenance.json, --json PATH) for CI.
//
// The binary compiles src/util/alloc_hook.cpp (counting operator
// new/delete), so it can also assert the tentpole's allocation claim:
// with --strict-alloc it exits non-zero if the steady-state repair or
// merge phases touch the heap at all.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/p2sm.hpp"
#include "metrics/csv.hpp"
#include "metrics/reporter.hpp"
#include "sched/run_queue.hpp"
#include "util/alloc_counter.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace {

using namespace horse;

constexpr std::uint32_t kVcpusPerSandbox = 8;
// The reserved ull_runqueue aggregates the runnable vCPUs of every
// resident uLL function, so rebuild's O(|B|) term is what the storm
// multiplies by N; size it like a busy reserved queue, not a toy one.
constexpr std::size_t kQueueOccupancy = 256;
constexpr int kTimedRounds = 256;
constexpr int kMergeReps = 64;

struct Options {
  std::vector<std::size_t> sandbox_counts{1, 4, 16, 64};
  std::string csv_path;
  std::string json_path = "BENCH_p2sm_maintenance.json";
  bool strict_alloc = false;
};

Options parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--only-n") {
      options.sandbox_counts = {static_cast<std::size_t>(std::stoul(next()))};
    } else if (arg == "--csv") {
      options.csv_path = next();
    } else if (arg == "--json") {
      options.json_path = next();
    } else if (arg == "--strict-alloc") {
      options.strict_alloc = true;
    } else {
      std::cerr << "usage: abl_p2sm_maintenance [--only-n N] [--csv PATH]\n"
                   "    [--json PATH] [--strict-alloc]\n";
      std::exit(2);
    }
  }
  return options;
}

/// One paused uLL sandbox: owned vCPU storage + the sorted merge list.
struct PausedSandbox {
  std::vector<std::unique_ptr<sched::Vcpu>> storage;
  sched::VcpuList merge_vcpus;
  core::P2smIndex index;

  explicit PausedSandbox(std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    std::vector<sched::Credit> credits;
    for (std::uint32_t i = 0; i < kVcpusPerSandbox; ++i) {
      credits.push_back(static_cast<sched::Credit>(rng.bounded(1'000'000)));
    }
    std::sort(credits.begin(), credits.end());
    for (const auto credit : credits) {
      auto vcpu = std::make_unique<sched::Vcpu>();
      vcpu->credit = credit;
      merge_vcpus.push_back(*vcpu);
      storage.push_back(std::move(vcpu));
    }
  }
  ~PausedSandbox() { merge_vcpus.clear(); }
};

struct Row {
  std::size_t sandboxes = 0;
  std::size_t batch = 0;
  double rebuild_ns_per_mutation = 0.0;
  double repair_ns_per_mutation = 0.0;
  double speedup = 0.0;
  double merge_ns = 0.0;
  std::uint64_t steady_state_allocs = 0;
};

/// The mutation source: a pool of churn vCPUs inserted into / removed
/// from the queue in alternating half-rounds, keeping the queue size
/// oscillating around its initial occupancy.
class MutationDriver {
 public:
  MutationDriver(sched::RunQueue& queue, std::size_t batch)
      : queue_(queue), batch_(batch) {
    util::Xoshiro256 rng(99);
    for (std::size_t i = 0; i < batch; ++i) {
      auto vcpu = std::make_unique<sched::Vcpu>();
      vcpu->credit = static_cast<sched::Credit>(rng.bounded(1'000'000));
      pool_.push_back(std::move(vcpu));
    }
  }

  /// Apply one batch of journalled structural mutations.
  void step() {
    if (inserted_) {
      for (auto& vcpu : pool_) {
        queue_.remove(*vcpu);
      }
    } else {
      for (auto& vcpu : pool_) {
        queue_.insert_sorted(*vcpu);
      }
    }
    inserted_ = !inserted_;
  }

  /// Leave the queue the way the constructor found it.
  void drain() {
    if (inserted_) {
      step();
    }
  }

  [[nodiscard]] std::size_t batch() const noexcept { return batch_; }

 private:
  sched::RunQueue& queue_;
  std::size_t batch_;
  std::vector<std::unique_ptr<sched::Vcpu>> pool_;
  bool inserted_ = false;
};

Row run_cell(std::size_t n_sandboxes, std::size_t batch) {
  Row row;
  row.sandboxes = n_sandboxes;
  row.batch = batch;

  sched::RunQueue queue(0);
  std::vector<std::unique_ptr<sched::Vcpu>> occupants;
  util::Xoshiro256 rng(7);
  for (std::size_t i = 0; i < kQueueOccupancy; ++i) {
    auto vcpu = std::make_unique<sched::Vcpu>();
    vcpu->credit = static_cast<sched::Credit>(rng.bounded(1'000'000));
    queue.insert_sorted(*vcpu);
    occupants.push_back(std::move(vcpu));
  }

  std::vector<std::unique_ptr<PausedSandbox>> sandboxes;
  for (std::size_t s = 0; s < n_sandboxes; ++s) {
    sandboxes.push_back(std::make_unique<PausedSandbox>(1000 + s));
    sandboxes.back()->index.rebuild(sandboxes.back()->merge_vcpus, queue);
  }

  MutationDriver driver(queue, batch);
  const double mutations_per_round = static_cast<double>(batch);

  // --- strategy 1: full rebuild of every co-resident index ---------------
  driver.step();  // warm-up round (also sizes every arena)
  for (auto& sandbox : sandboxes) {
    sandbox->index.rebuild(sandbox->merge_vcpus, queue);
  }
  util::Nanos rebuild_total = 0;
  for (int round = 0; round < kTimedRounds; ++round) {
    driver.step();
    util::Stopwatch watch;
    for (auto& sandbox : sandboxes) {
      sandbox->index.rebuild(sandbox->merge_vcpus, queue);
    }
    rebuild_total += watch.elapsed();
  }
  row.rebuild_ns_per_mutation = static_cast<double>(rebuild_total) /
                                (kTimedRounds * mutations_per_round);

  // --- strategy 2: journal repair of every co-resident index -------------
  driver.step();  // warm-up
  for (auto& sandbox : sandboxes) {
    if (!sandbox->index.repair(sandbox->merge_vcpus, queue).is_ok()) {
      sandbox->index.rebuild(sandbox->merge_vcpus, queue);
    }
  }
  util::Nanos repair_total = 0;
  std::uint64_t allocs_before = util::thread_alloc_count();
  std::size_t repair_fallbacks = 0;
  for (int round = 0; round < kTimedRounds; ++round) {
    driver.step();
    util::Stopwatch watch;
    for (auto& sandbox : sandboxes) {
      if (!sandbox->index.repair(sandbox->merge_vcpus, queue).is_ok()) {
        sandbox->index.rebuild(sandbox->merge_vcpus, queue);
        ++repair_fallbacks;
      }
    }
    repair_total += watch.elapsed();
  }
  row.steady_state_allocs = util::thread_alloc_count() - allocs_before;
  row.repair_ns_per_mutation = static_cast<double>(repair_total) /
                               (kTimedRounds * mutations_per_round);
  row.speedup = row.repair_ns_per_mutation > 0.0
                    ? row.rebuild_ns_per_mutation / row.repair_ns_per_mutation
                    : 0.0;
  if (repair_fallbacks > 0) {
    std::cerr << "warning: " << repair_fallbacks
              << " repair fallbacks in the timed loop (N=" << n_sandboxes
              << ", batch=" << batch << ")\n";
  }
  driver.drain();

  // --- merge latency off the maintained index ----------------------------
  // What the maintenance pays for: sandbox 0's O(#runs) splice. The index
  // is re-prepared outside the timed region; un-splicing restores the
  // queue between reps. Warm-up rep first (task buffer sizing).
  core::SequentialMergeExecutor executor;
  PausedSandbox& subject = *sandboxes.front();
  auto unsplice = [&queue, &subject] {
    for (auto& vcpu : subject.storage) {
      queue.remove(*vcpu);
      auto it = subject.merge_vcpus.begin();
      while (it != subject.merge_vcpus.end() && it->credit <= vcpu->credit) {
        ++it;
      }
      subject.merge_vcpus.insert(it, *vcpu);
    }
  };
  // Warm-up cycle outside the alloc window: the first merge sizes the
  // splice task buffer, which maintenance never touches.
  subject.index.rebuild(subject.merge_vcpus, queue);
  (void)subject.index.merge(subject.merge_vcpus, queue, executor);
  unsplice();

  util::Nanos merge_total = 0;
  allocs_before = util::thread_alloc_count();
  for (int rep = 0; rep < kMergeReps; ++rep) {
    subject.index.rebuild(subject.merge_vcpus, queue);
    util::Stopwatch watch;
    (void)subject.index.merge(subject.merge_vcpus, queue, executor);
    merge_total += watch.elapsed();
    unsplice();
  }
  row.steady_state_allocs += util::thread_alloc_count() - allocs_before;
  row.merge_ns = static_cast<double>(merge_total) / kMergeReps;
  return row;
}

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"p2sm_maintenance\",\n"
       << "  \"queue_occupancy\": " << kQueueOccupancy << ",\n"
       << "  \"vcpus_per_sandbox\": " << kVcpusPerSandbox << ",\n"
       << "  \"journal_capacity\": " << sched::RunQueue::kJournalCapacity
       << ",\n"
       << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"sandboxes\": " << row.sandboxes
         << ", \"mutation_batch\": " << row.batch
         << ", \"rebuild_ns_per_mutation\": "
         << metrics::format_double(row.rebuild_ns_per_mutation, 1)
         << ", \"repair_ns_per_mutation\": "
         << metrics::format_double(row.repair_ns_per_mutation, 1)
         << ", \"speedup\": " << metrics::format_double(row.speedup, 2)
         << ", \"merge_ns\": " << metrics::format_double(row.merge_ns, 1)
         << ", \"steady_state_allocs\": " << row.steady_state_allocs << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "json write failed: cannot open " << path << "\n";
    return;
  }
  out << json.str();
  std::cout << "json written to " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);

  metrics::TextTable table(
      "E17 — P2SM maintenance: delta repair vs full rebuild per queue "
      "mutation",
      {"sandboxes", "batch", "rebuild/mutation", "repair/mutation", "speedup",
       "merge latency", "allocs"});
  std::vector<Row> rows;
  for (const std::size_t n : options.sandbox_counts) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{8},
                                    std::size_t{32}}) {
      const Row row = run_cell(n, batch);
      rows.push_back(row);
      table.add_row({std::to_string(row.sandboxes), std::to_string(row.batch),
                     metrics::format_nanos(row.rebuild_ns_per_mutation),
                     metrics::format_nanos(row.repair_ns_per_mutation),
                     metrics::format_double(row.speedup, 1) + "x",
                     metrics::format_nanos(row.merge_ns),
                     std::to_string(row.steady_state_allocs)});
    }
  }
  table.print(std::cout);

  if (!options.csv_path.empty()) {
    metrics::CsvWriter csv({"sandboxes", "mutation_batch",
                            "rebuild_ns_per_mutation", "repair_ns_per_mutation",
                            "speedup", "merge_ns", "steady_state_allocs"});
    for (const Row& row : rows) {
      csv.add_numeric_row({static_cast<double>(row.sandboxes),
                           static_cast<double>(row.batch),
                           row.rebuild_ns_per_mutation,
                           row.repair_ns_per_mutation, row.speedup,
                           row.merge_ns,
                           static_cast<double>(row.steady_state_allocs)});
    }
    if (const auto status = csv.write_file(options.csv_path);
        !status.is_ok()) {
      std::cerr << "csv write failed: " << status.to_report() << "\n";
    } else {
      std::cout << "csv written to " << options.csv_path << "\n";
    }
  }
  write_json(rows, options.json_path);

  if (options.strict_alloc) {
    std::uint64_t total_allocs = 0;
    for (const Row& row : rows) {
      total_allocs += row.steady_state_allocs;
    }
    if (total_allocs > 0) {
      std::cerr << "STRICT-ALLOC FAILURE: " << total_allocs
                << " heap allocations in steady-state repair/merge loops\n";
      return 1;
    }
    std::cout << "strict-alloc: steady-state repair and merge loops touched "
                 "the heap 0 times\n";
  }
  return 0;
}
