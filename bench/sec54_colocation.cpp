// E7 — §5.4: impact of HORSE on colocated longer-running functions.
//
// Thumbnail invocations arrive per a (synthetic) Azure-trace 30 s window;
// in parallel, 10 uLL sandboxes resume every second, with the uLL vCPU
// count swept 1→36. Reported: thumbnail mean / p95 / p99 latency under
// vanilla and HORSE, and HORSE's relative p99 change.
//
// Paper bands: Δmean = Δp95 = 0; Δp99 <= 0.00107% (≈30 µs) at 36 vCPUs,
// caused by 𝒫²𝒮ℳ merge threads preempting a longer-running function.
#include <iostream>

#include "faas/colocation.hpp"
#include "metrics/reporter.hpp"

namespace {

using namespace horse;

const std::vector<std::uint32_t> kVcpuSweep{1, 8, 16, 36};

}  // namespace

int main() {
  const auto costs = sim::CostModel::defaults(vmm::VmmProfile::firecracker());
  const auto arrivals =
      faas::default_thumbnail_arrivals(30 * util::kSecond, /*seed=*/42);
  std::cout << "thumbnail arrivals in 30 s window: " << arrivals.size()
            << "\n\n";

  metrics::TextTable table(
      "Sec 5.4: thumbnail latency, vanilla vs HORSE (30 s Azure window)",
      {"ull vcpus", "mean vanil", "mean horse", "p95 vanil", "p95 horse",
       "p99 vanil", "p99 horse", "d(p99)", "preempts"});
  metrics::TextTable energy_table(
      "Sec 5.4 (extension): DVFS/energy outcome over the window",
      {"ull vcpus", "mean freq vanil", "mean freq horse", "energy vanil",
       "energy horse", "d(energy)"});

  for (const std::uint32_t vcpus : kVcpuSweep) {
    faas::ColocationParams params;
    params.num_cpus = 12;
    params.ull_vcpus = vcpus;
    params.duration = 30 * util::kSecond;

    params.mode = faas::ColocationMode::kVanilla;
    const auto vanilla = faas::ColocationExperiment(params, costs).run(arrivals);
    params.mode = faas::ColocationMode::kHorse;
    const auto horse = faas::ColocationExperiment(params, costs).run(arrivals);

    const double dp99 =
        vanilla.p99_ns == 0.0 ? 0.0
                              : (horse.p99_ns - vanilla.p99_ns) / vanilla.p99_ns;
    table.add_row({std::to_string(vcpus),
                   metrics::format_nanos(vanilla.mean_ns),
                   metrics::format_nanos(horse.mean_ns),
                   metrics::format_nanos(vanilla.p95_ns),
                   metrics::format_nanos(horse.p95_ns),
                   metrics::format_nanos(vanilla.p99_ns),
                   metrics::format_nanos(horse.p99_ns),
                   metrics::format_percent(dp99, 5),
                   std::to_string(horse.preemptions)});
    const double denergy =
        vanilla.energy_joules == 0.0
            ? 0.0
            : (horse.energy_joules - vanilla.energy_joules) /
                  vanilla.energy_joules;
    energy_table.add_row(
        {std::to_string(vcpus),
         metrics::format_double(vanilla.mean_freq_khz / 1000.0, 0) + " MHz",
         metrics::format_double(horse.mean_freq_khz / 1000.0, 0) + " MHz",
         metrics::format_double(vanilla.energy_joules, 1) + " J",
         metrics::format_double(horse.energy_joules, 1) + " J",
         metrics::format_percent(denergy, 3)});
  }

  table.print(std::cout);
  std::cout << "\n";
  energy_table.print(std::cout);
  std::cout << "\nPaper bands: no mean/p95 difference (uLL isolation on the "
               "reserved queue); p99 overhead <= 0.00107% (~30 us) at 36 "
               "vCPUs from merge-thread preemption.\n";
  return 0;
}
