// E7 — §5.4: impact of HORSE on colocated longer-running functions.
//
// Thumbnail invocations arrive per a (synthetic) Azure-trace 30 s window;
// in parallel, 10 uLL sandboxes resume every second, with the uLL vCPU
// count swept 1→36. Reported: thumbnail mean / p95 / p99 latency under
// vanilla and HORSE, and HORSE's relative p99 change.
//
// Paper bands: Δmean = Δp95 = 0; Δp99 <= 0.00107% (≈30 µs) at 36 vCPUs,
// caused by 𝒫²𝒮ℳ merge threads preempting a longer-running function.
//
// PR-10 extension: an SFS (short-function-first) sweep on the vanilla
// arm on a deliberately contended 2-CPU host — wake preemption held ON
// for both sides, Credit2Params::short_function_first toggled. Gates
// (exit code 1): SFS must not make any uLL p99 worse, must improve it
// somewhere in the sweep, and must not regress the colocated thumbnail
// p99 by more than 1% anywhere.
#include <algorithm>
#include <cstdint>
#include <iostream>

#include "faas/colocation.hpp"
#include "metrics/csv.hpp"
#include "metrics/reporter.hpp"

namespace {

using namespace horse;

const std::vector<std::uint32_t> kVcpuSweep{1, 8, 16, 36};

}  // namespace

int main() {
  const auto costs = sim::CostModel::defaults(vmm::VmmProfile::firecracker());
  const auto arrivals =
      faas::default_thumbnail_arrivals(30 * util::kSecond, /*seed=*/42);
  std::cout << "thumbnail arrivals in 30 s window: " << arrivals.size()
            << "\n\n";

  metrics::TextTable table(
      "Sec 5.4: thumbnail latency, vanilla vs HORSE (30 s Azure window)",
      {"ull vcpus", "mean vanil", "mean horse", "p95 vanil", "p95 horse",
       "p99 vanil", "p99 horse", "d(p99)", "preempts"});
  metrics::TextTable energy_table(
      "Sec 5.4 (extension): DVFS/energy outcome over the window",
      {"ull vcpus", "mean freq vanil", "mean freq horse", "energy vanil",
       "energy horse", "d(energy)"});

  for (const std::uint32_t vcpus : kVcpuSweep) {
    faas::ColocationParams params;
    params.num_cpus = 12;
    params.ull_vcpus = vcpus;
    params.duration = 30 * util::kSecond;

    params.mode = faas::ColocationMode::kVanilla;
    const auto vanilla = faas::ColocationExperiment(params, costs).run(arrivals);
    params.mode = faas::ColocationMode::kHorse;
    const auto horse = faas::ColocationExperiment(params, costs).run(arrivals);

    const double dp99 =
        vanilla.p99_ns == 0.0 ? 0.0
                              : (horse.p99_ns - vanilla.p99_ns) / vanilla.p99_ns;
    table.add_row({std::to_string(vcpus),
                   metrics::format_nanos(vanilla.mean_ns),
                   metrics::format_nanos(horse.mean_ns),
                   metrics::format_nanos(vanilla.p95_ns),
                   metrics::format_nanos(horse.p95_ns),
                   metrics::format_nanos(vanilla.p99_ns),
                   metrics::format_nanos(horse.p99_ns),
                   metrics::format_percent(dp99, 5),
                   std::to_string(horse.preemptions)});
    const double denergy =
        vanilla.energy_joules == 0.0
            ? 0.0
            : (horse.energy_joules - vanilla.energy_joules) /
                  vanilla.energy_joules;
    energy_table.add_row(
        {std::to_string(vcpus),
         metrics::format_double(vanilla.mean_freq_khz / 1000.0, 0) + " MHz",
         metrics::format_double(horse.mean_freq_khz / 1000.0, 0) + " MHz",
         metrics::format_double(vanilla.energy_joules, 1) + " J",
         metrics::format_double(horse.energy_joules, 1) + " J",
         metrics::format_percent(denergy, 3)});
  }

  table.print(std::cout);
  std::cout << "\n";
  energy_table.print(std::cout);
  std::cout << "\nPaper bands: no mean/p95 difference (uLL isolation on the "
               "reserved queue); p99 overhead <= 0.00107% (~30 us) at 36 "
               "vCPUs from merge-thread preemption.\n";

  // --- SFS knob sweep (vanilla arm, wake preemption on both sides) --------
  metrics::TextTable sfs_table(
      "Sec 5.4 (extension): short-function-first on the vanilla arm",
      {"ull vcpus", "ull p99 off", "ull p99 on", "d(ull p99)", "thumb p99 off",
       "thumb p99 on", "d(thumb p99)", "preempts on"});
  metrics::CsvWriter csv({"ull_vcpus", "ull_p99_off_ns", "ull_p99_on_ns",
                          "thumb_p99_off_ns", "thumb_p99_on_ns",
                          "preemptions_off", "preemptions_on"});
  bool gate_failed = false;
  double best_ull_improvement = 0.0;
  for (const std::uint32_t vcpus : kVcpuSweep) {
    faas::ColocationParams params;
    // Two general CPUs: ~40% per-CPU utilization from the heavy-tailed
    // thumbnail load, so uLL wakes regularly land on a CPU mid-slice.
    // On the roomy 12-CPU host pick_general() always finds an idle CPU
    // and the knob never gets to decide anything.
    params.num_cpus = 2;
    // Resistance above reset_credit (10 ms) fully damps credit-based
    // wake preemption: a fresh candidate can never out-credit a runner
    // by that much, so the SFS bypass is the only way a short function
    // reaches a busy CPU — the starvation regime the knob exists for.
    // With the stock 500 µs resistance, runners hover in (0.5 ms, 10 ms]
    // credit between resets and the uLL wake preempts via the credit
    // comparison in BOTH arms, making the sweep a no-op.
    params.preemption_resistance = 20 * util::kMillisecond;
    params.ull_vcpus = vcpus;
    params.duration = 30 * util::kSecond;
    params.mode = faas::ColocationMode::kVanilla;
    params.wake_preemption = true;

    params.short_function_first = false;
    const auto off = faas::ColocationExperiment(params, costs).run(arrivals);
    params.short_function_first = true;
    const auto on = faas::ColocationExperiment(params, costs).run(arrivals);

    const double d_ull = off.ull_p99_ns == 0.0
                             ? 0.0
                             : (on.ull_p99_ns - off.ull_p99_ns) / off.ull_p99_ns;
    const double d_thumb =
        off.p99_ns == 0.0 ? 0.0 : (on.p99_ns - off.p99_ns) / off.p99_ns;
    best_ull_improvement = std::max(best_ull_improvement, -d_ull);
    sfs_table.add_row({std::to_string(vcpus),
                       metrics::format_nanos(off.ull_p99_ns),
                       metrics::format_nanos(on.ull_p99_ns),
                       metrics::format_percent(d_ull, 2),
                       metrics::format_nanos(off.p99_ns),
                       metrics::format_nanos(on.p99_ns),
                       metrics::format_percent(d_thumb, 4),
                       std::to_string(on.preemptions)});
    csv.add_numeric_row({static_cast<double>(vcpus), off.ull_p99_ns,
                         on.ull_p99_ns, off.p99_ns, on.p99_ns,
                         static_cast<double>(off.preemptions),
                         static_cast<double>(on.preemptions)});
    // A uLL burst must never wait out a thumbnail slice with SFS on:
    // p99(on) strictly <= p99(off) at every sweep point.
    if (on.ull_p99_ns > off.ull_p99_ns) {
      std::cerr << "GATE FAILED: SFS worsened uLL p99 at " << vcpus
                << " vCPUs\n";
      gate_failed = true;
    }
    // ... and the colocated thumbnails must not pay for it: tolerate at
    // most 1% p99 movement (run-to-run placement noise), nothing more.
    if (d_thumb > 0.01) {
      std::cerr << "GATE FAILED: SFS regressed thumbnail p99 by "
                << metrics::format_percent(d_thumb, 3) << " at " << vcpus
                << " vCPUs\n";
      gate_failed = true;
    }
  }
  std::cout << "\n";
  sfs_table.print(std::cout);
  if (best_ull_improvement <= 0.0) {
    std::cerr << "GATE FAILED: SFS improved uLL p99 nowhere in the sweep\n";
    gate_failed = true;
  }
  const auto csv_status = csv.write_file("sec54_sfs.csv");
  if (csv_status.is_ok()) {
    std::cout << "\nwrote sec54_sfs.csv\n";
  }
  return gate_failed ? 1 : 0;
}
