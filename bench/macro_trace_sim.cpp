// E11 (macro extension, ours) — whole-node trace simulation.
//
// One hour of synthetic Azure-like traffic (Zipf popularity, bursty
// minutes) over a mixed fleet of uLL and longer functions, comparing the
// platform configurations a deployment would actually weigh:
//   fixed vs adaptive (hybrid-histogram) keep-alive  ×  HORSE on/off.
// Reported per configuration: cold-start fraction, median / p99 sandbox
// init latency, and warm-pool residency (the memory-cost proxy).
//
// A second section routes the same hour through the cluster policies
// (cluster::split_indices) across 4 modelled hosts — each slice then
// drives an independent single-host SimServer — showing how the routing
// policy alone shifts per-host load share and cold-start locality before
// any real threads are involved.
#include <iostream>

#include "cluster/sim_cluster.hpp"
#include "metrics/reporter.hpp"
#include "sim/server.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace horse;

trace::ArrivalSchedule hour_of_traffic() {
  trace::SyntheticTraceParams params;
  params.num_functions = 12;
  params.num_minutes = 60;
  params.top_rate_per_minute = 90.0;
  params.zipf_s = 1.1;
  params.seed = 4242;
  return trace::SyntheticAzureTrace(params).generate_schedule();
}

void register_fleet(sim::SimServer& server) {
  for (int i = 0; i < 12; ++i) {
    sim::SimFunctionSpec spec;
    spec.name = "fn-" + std::to_string(i);
    if (i % 3 == 0) {  // a third of the fleet is uLL
      spec.ull = true;
      spec.vcpus = 1;
      spec.durations.median = 2 * util::kMicrosecond;
      spec.durations.sigma = 0.3;
      spec.durations.tail_fraction = 0.0;
    } else {
      spec.vcpus = 2;
      spec.durations.median = 150 * util::kMillisecond;
      spec.durations.sigma = 0.5;
      spec.durations.tail_fraction = 0.02;
      spec.durations.tail_min = util::kSecond;
      spec.durations.tail_max = 10 * util::kSecond;
    }
    (void)server.add_function(spec);
  }
}

}  // namespace

int main() {
  const auto costs = sim::CostModel::defaults(vmm::VmmProfile::firecracker());
  const auto schedule = hour_of_traffic();
  std::cout << "synthetic Azure hour: " << schedule.size()
            << " invocations across 12 functions\n\n";

  metrics::TextTable table(
      "Macro: 1 h trace, keep-alive policy x HORSE",
      {"keep-alive", "horse", "cold %", "uLL init p50", "long init p50",
       "init p99", "e2e p99", "e2e p999", "warm sandbox-hours", "evictions"});

  for (const bool adaptive : {false, true}) {
    for (const bool horse : {false, true}) {
      sim::SimServerParams params;
      params.adaptive_keep_alive = adaptive;
      params.keep_alive_policy.min_samples = 6;
      params.fixed_keep_alive = 10LL * 60 * util::kSecond;
      params.use_horse = horse;
      sim::SimServer server(params, costs);
      register_fleet(server);
      const auto report = server.run(schedule);

      table.add_row(
          {adaptive ? "adaptive" : "fixed 10min", horse ? "on" : "off",
           metrics::format_percent(report.cold_fraction()),
           metrics::format_nanos(
               static_cast<double>(report.init_latency_ull.p50())),
           metrics::format_nanos(
               static_cast<double>(report.init_latency_long.p50())),
           metrics::format_nanos(
               static_cast<double>(report.init_latency.p99())),
           metrics::format_nanos(
               static_cast<double>(report.end_to_end_latency.p99())),
           metrics::format_nanos(
               static_cast<double>(report.end_to_end_latency.p999())),
           metrics::format_double(report.warm_sandbox_seconds / 3600.0, 2),
           std::to_string(report.evictions)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: HORSE cuts the init p50 for the uLL share "
               "of traffic; adaptive keep-alive trades a slightly higher "
               "cold %% for much lower warm residency on rare functions.\n\n";

  // --- Cluster section: split the same hour across 4 hosts per policy ---
  std::vector<util::Nanos> times;
  std::vector<faas::FunctionId> fns;
  times.reserve(schedule.size());
  fns.reserve(schedule.size());
  for (const trace::Arrival& arrival : schedule.arrivals()) {
    times.push_back(arrival.time);
    fns.push_back(static_cast<faas::FunctionId>(arrival.function_id));
  }

  metrics::TextTable cluster_table(
      "Macro: same hour split across 4 hosts by routing policy (HORSE on, "
      "adaptive keep-alive)",
      {"policy", "host", "share %", "cold %", "e2e p99", "e2e p999",
       "warm sb-hours"});
  for (const cluster::PolicyKind kind :
       {cluster::PolicyKind::kRoundRobin, cluster::PolicyKind::kLeastLoaded,
        cluster::PolicyKind::kMostWarmSlots}) {
    cluster::SimClusterParams split_params;
    split_params.num_hosts = 4;
    split_params.policy = kind;
    split_params.seed = 4242;
    split_params.defaults.slots = 8;
    const auto slices = cluster::split_indices(
        times, fns, split_params, /*service_hint=*/50 * util::kMillisecond);

    for (std::size_t host = 0; host < slices.size(); ++host) {
      trace::ArrivalSchedule slice;
      for (const std::uint64_t index : slices[host]) {
        slice.add(schedule.arrivals()[index]);
      }
      sim::SimServerParams params;
      params.adaptive_keep_alive = true;
      params.keep_alive_policy.min_samples = 6;
      params.use_horse = true;
      sim::SimServer server(params, costs);
      register_fleet(server);
      const auto report = server.run(slice);
      cluster_table.add_row(
          {std::string(cluster::to_string(kind)), std::to_string(host),
           metrics::format_percent(
               schedule.empty() ? 0.0
                                : static_cast<double>(slice.size()) /
                                      static_cast<double>(schedule.size())),
           metrics::format_percent(report.cold_fraction()),
           metrics::format_nanos(
               static_cast<double>(report.end_to_end_latency.p99())),
           metrics::format_nanos(
               static_cast<double>(report.end_to_end_latency.p999())),
           metrics::format_double(report.warm_sandbox_seconds / 3600.0, 2)});
    }
  }
  cluster_table.print(std::cout);
  std::cout << "\nExpected shape: round-robin splits the hour evenly; "
               "least-loaded tracks the burst structure; most-warm "
               "concentrates repeat traffic, trading balance for warmer "
               "per-host pools.\n\n";

  // --- Overload section: the same hour through SimCluster admission -----
  // The hour replayed in virtual time with per-request deadlines (uLL
  // 1 ms, long 250 ms of slack) against a deliberately small cluster
  // (2 hosts x 1 slot — the burst minutes exceed its capacity, the quiet
  // ones do not), with admission on vs off. Every refusal is a
  // typed outcome: shed (admission refused at submit), expired (deadline
  // passed in queue, dropped at dequeue), or completed — the three
  // columns always sum to the submitted count. "met" counts completions
  // that finished inside their deadline; admission converts would-be-late
  // executions into sheds, so its late column shrinks without starving
  // throughput.
  metrics::TextTable overload_table(
      "Macro: same hour with deadlines, 2 hosts x 1 slot, by policy",
      {"policy", "admission", "submitted", "completed", "shed", "expired",
       "met", "late", "met %"});
  for (const cluster::PolicyKind kind :
       {cluster::PolicyKind::kRoundRobin, cluster::PolicyKind::kLeastLoaded,
        cluster::PolicyKind::kMostWarmSlots}) {
    for (const bool admission : {true, false}) {
      cluster::SimClusterParams params;
      params.num_hosts = 2;
      params.policy = kind;
      params.seed = 4242;
      params.defaults.slots = 1;
      params.defaults.jitter = 0.1;
      params.admission = admission;
      cluster::SimCluster sim(params);
      for (const trace::Arrival& arrival : schedule.arrivals()) {
        const auto fn = static_cast<faas::FunctionId>(arrival.function_id);
        const bool ull = arrival.function_id % 3 == 0;
        const util::Nanos service =
            ull ? 2 * util::kMicrosecond : 150 * util::kMillisecond;
        const util::Nanos deadline =
            arrival.time +
            (ull ? util::kMillisecond : 250 * util::kMillisecond);
        sim.submit(arrival.time, fn, service, deadline);
      }
      sim.run_to_completion();

      std::uint64_t shed = 0;
      std::uint64_t expired = 0;
      for (const cluster::SimRejection& rejection : sim.rejections()) {
        (rejection.reject == faas::SubmissionReject::kDeadlineExpired
             ? expired
             : shed)++;
      }
      std::uint64_t met = 0;
      for (const cluster::SimCompletion& done : sim.completions()) {
        met += done.met_deadline() ? 1 : 0;
      }
      const std::uint64_t completed = sim.completions().size();
      const std::uint64_t late = completed - met;
      overload_table.add_row(
          {std::string(cluster::to_string(kind)), admission ? "on" : "off",
           std::to_string(schedule.size()), std::to_string(completed),
           std::to_string(shed), std::to_string(expired),
           std::to_string(met), std::to_string(late),
           metrics::format_percent(
               schedule.empty()
                   ? 0.0
                   : static_cast<double>(met) /
                         static_cast<double>(schedule.size()))});
    }
  }
  overload_table.print(std::cout);
  std::cout << "\nExpected shape: with admission on, late completions "
               "convert into typed sheds (completed + shed + expired == "
               "submitted either way); the met count stays comparable "
               "because shedding only refuses work that was already "
               "doomed by its deadline.\n";
  return 0;
}
