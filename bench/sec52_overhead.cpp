// E5 — §5.2: CPU and memory overhead of HORSE.
//
// Setup mirrors the paper: 10 1-vCPU CPU-burner sandboxes run in the
// background; 10 uLL sandboxes occupy the ull_runqueue (resumed); 10 more
// uLL sandboxes are paused for 5 s and then resumed, sweeping the uLL
// vCPU count. Reported:
//   * memory held by the 𝒫²𝒮ℳ precomputed structures of the 10 paused
//     sandboxes (paper: ≈528 KB, ≈0.11% of the ≈5 GB of sandbox memory —
//     kernel-scale structures; ours are user-space but same order logic);
//   * extra pause-path cost per sandbox (precompute + index build);
//   * index-maintenance CPU share over the 5 s pause window, assuming the
//     ull_runqueue mutates 100×/s (each mutation triggers a refresh of
//     every stale index — §4.1.3);
//   * median HORSE resume latency (the transient §5.2 resume cost).
#include <iostream>
#include <memory>

#include "core/horse_resume.hpp"
#include "metrics/reporter.hpp"
#include "metrics/stats.hpp"
#include "workloads/cpu_burner.hpp"

namespace {

using namespace horse;

constexpr int kSandboxesPerRole = 10;
constexpr double kPauseWindowSeconds = 5.0;
constexpr int kQueueMutationsPerSecond = 100;
const std::vector<std::uint32_t> kVcpuSweep{1, 4, 8, 16, 36};

std::unique_ptr<vmm::Sandbox> make_ull(sched::SandboxId id,
                                       std::uint32_t vcpus) {
  vmm::SandboxConfig config;
  config.name = "ull";
  config.num_vcpus = vcpus;
  config.memory_mb = 512;  // the paper's per-sandbox allocation
  config.ull = true;
  return std::make_unique<vmm::Sandbox>(id, config);
}

}  // namespace

int main() {
  metrics::TextTable table(
      "Sec 5.2: HORSE overhead (10 burners + 10 occupants + 10 paused uLL)",
      {"ull vcpus", "p2sm memory", "mem % of guest", "pause extra/sb",
       "maint CPU %", "resume median"});

  for (const std::uint32_t vcpus : kVcpuSweep) {
    sched::CpuTopology topology(12);
    core::HorseResumeEngine horse(topology, vmm::VmmProfile::firecracker());
    sched::CpuTopology vanilla_topology(12);
    vmm::ResumeEngine vanilla(vanilla_topology, vmm::VmmProfile::firecracker());

    // Background burners (sysbench stand-in), with a little real burn.
    std::vector<std::unique_ptr<vmm::Sandbox>> burners;
    for (int i = 0; i < kSandboxesPerRole; ++i) {
      vmm::SandboxConfig config;
      config.name = "burner";
      config.num_vcpus = 1;
      config.memory_mb = 512;
      auto sandbox = std::make_unique<vmm::Sandbox>(100 + i, config);
      (void)horse.start(*sandbox);
      burners.push_back(std::move(sandbox));
    }
    workloads::CpuBurnerFunction burner_fn(2'000);
    workloads::Request burn_request;
    (void)burner_fn.invoke(burn_request);

    // Occupants: resumed uLL sandboxes populating the reserved queue, so
    // the paused sandboxes' arrayB snapshots are non-trivial.
    std::vector<std::unique_ptr<vmm::Sandbox>> occupants;
    std::size_t guest_bytes = 0;
    for (int i = 0; i < kSandboxesPerRole; ++i) {
      auto sandbox = make_ull(200 + i, vcpus);
      (void)horse.start(*sandbox);
      (void)horse.pause(*sandbox);
      (void)horse.resume(*sandbox);
      guest_bytes += static_cast<std::size_t>(512) * 1024 * 1024;
      occupants.push_back(std::move(sandbox));
    }

    // Measured sandboxes: HORSE pause vs vanilla pause, per sandbox.
    std::vector<std::unique_ptr<vmm::Sandbox>> paused;
    metrics::SampleStats horse_pause;
    for (int i = 0; i < kSandboxesPerRole; ++i) {
      auto sandbox = make_ull(300 + i, vcpus);
      (void)horse.start(*sandbox);
      util::Stopwatch watch;
      (void)horse.pause(*sandbox);
      horse_pause.add(static_cast<double>(watch.elapsed()));
      guest_bytes += static_cast<std::size_t>(512) * 1024 * 1024;
      paused.push_back(std::move(sandbox));
    }
    metrics::SampleStats vanilla_pause;
    for (int i = 0; i < kSandboxesPerRole; ++i) {
      auto sandbox = make_ull(400 + i, vcpus);
      sandbox->guest_memory().clear();  // vanilla twin, memory irrelevant
      (void)vanilla.start(*sandbox);
      util::Stopwatch watch;
      (void)vanilla.pause(*sandbox);
      vanilla_pause.add(static_cast<double>(watch.elapsed()));
      (void)vanilla.destroy(*sandbox);
    }

    const std::size_t p2sm_bytes = horse.ull_manager().total_index_bytes();
    const double mem_fraction =
        static_cast<double>(p2sm_bytes) / static_cast<double>(guest_bytes);
    const double pause_extra =
        horse_pause.percentile(50) - vanilla_pause.percentile(50);

    // Index maintenance over the 5 s pause window: every queue mutation
    // invalidates the paused sandboxes' indexes; refresh() rebuilds them.
    const int refreshes = static_cast<int>(kPauseWindowSeconds) *
                          kQueueMutationsPerSecond;
    sched::RunQueue& ull_queue =
        topology.queue(horse.ull_manager().ull_cpus().front());
    util::Stopwatch maintenance_watch;
    for (int i = 0; i < refreshes; ++i) {
      ull_queue.bump_version();  // a scheduler mutation of the queue
      (void)horse.ull_manager().refresh();
    }
    const double maintenance_cpu =
        static_cast<double>(maintenance_watch.elapsed()) /
        (kPauseWindowSeconds * 1e9 * static_cast<double>(topology.num_cpus()));

    // Resume the paused sandboxes; median latency.
    metrics::SampleStats resumes;
    for (auto& sandbox : paused) {
      (void)horse.ull_manager().refresh();
      vmm::ResumeBreakdown bd;
      (void)horse.resume(*sandbox, &bd);
      resumes.add(static_cast<double>(bd.total()));
    }

    table.add_row(
        {std::to_string(vcpus),
         metrics::format_double(static_cast<double>(p2sm_bytes) / 1024.0, 1) +
             " KB",
         metrics::format_percent(mem_fraction, 4),
         metrics::format_nanos(pause_extra),
         metrics::format_percent(maintenance_cpu, 4),
         metrics::format_nanos(resumes.percentile(50))});

    for (auto& sandbox : paused) {
      (void)horse.destroy(*sandbox);
    }
    for (auto& sandbox : occupants) {
      (void)horse.destroy(*sandbox);
    }
    for (auto& sandbox : burners) {
      (void)horse.destroy(*sandbox);
    }
  }

  table.print(std::cout);
  std::cout << "\nPaper bands: ~528 KB of 𝒫²𝒮ℳ structures for 10 paused uLL "
               "sandboxes (~0.11% of guest memory); pause CPU overhead "
               "<=0.3%; resume CPU increase <=2.7%.\n";
  return 0;
}
