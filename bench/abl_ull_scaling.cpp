// E10 (ablation, ours) — multiple ull_runqueues (§4.1.3's scaling knob).
//
// Sweeps the number of reserved queues against a burst of paused uLL
// sandboxes and reports (a) how pause-time load balancing spreads the
// sandboxes, (b) aggregate resume latency for the burst, and (c) the
// adaptive scaler's behaviour on a synthetic rate pattern.
#include <iostream>
#include <memory>

#include "core/adaptive_ull.hpp"
#include "core/horse_resume.hpp"
#include "metrics/reporter.hpp"
#include "metrics/stats.hpp"

namespace {

using namespace horse;

constexpr int kSandboxes = 16;
constexpr std::uint32_t kVcpusPerSandbox = 8;

}  // namespace

int main() {
  metrics::TextTable table(
      "Ablation: reserved ull_runqueue count vs burst resume",
      {"queues", "sandboxes/queue (max)", "burst resume total",
       "median resume", "p99 resume"});

  for (const std::uint32_t queues : {1u, 2u, 4u, 8u}) {
    sched::CpuTopology topology(16);
    core::HorseConfig config;
    config.num_ull_runqueues = queues;
    core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker(),
                                   config);

    std::vector<std::unique_ptr<vmm::Sandbox>> sandboxes;
    for (int i = 0; i < kSandboxes; ++i) {
      vmm::SandboxConfig sandbox_config;
      sandbox_config.name = "ull";
      sandbox_config.num_vcpus = kVcpusPerSandbox;
      sandbox_config.memory_mb = 1;
      sandbox_config.ull = true;
      auto sandbox = std::make_unique<vmm::Sandbox>(
          static_cast<sched::SandboxId>(i + 1), sandbox_config);
      (void)engine.start(*sandbox);
      (void)engine.pause(*sandbox);
      sandboxes.push_back(std::move(sandbox));
    }

    // Pause-time balancing: count sandboxes per reserved queue.
    std::size_t max_per_queue = 0;
    for (const sched::CpuId cpu : engine.ull_manager().ull_cpus()) {
      std::size_t count = 0;
      for (const auto& sandbox : sandboxes) {
        const auto assignment =
            engine.ull_manager().assignment(sandbox->id());
        if (assignment && *assignment == cpu) {
          ++count;
        }
      }
      max_per_queue = std::max(max_per_queue, count);
    }

    // Burst resume: all 16, back to back.
    metrics::SampleStats latencies;
    util::Stopwatch burst;
    for (auto& sandbox : sandboxes) {
      (void)engine.ull_manager().refresh();
      vmm::ResumeBreakdown bd;
      (void)engine.resume(*sandbox, &bd);
      latencies.add(static_cast<double>(bd.total()));
    }
    const auto burst_total = burst.elapsed();

    table.add_row({std::to_string(queues), std::to_string(max_per_queue),
                   metrics::format_nanos(static_cast<double>(burst_total)),
                   metrics::format_nanos(latencies.percentile(50)),
                   metrics::format_nanos(latencies.percentile(99))});

    for (auto& sandbox : sandboxes) {
      (void)engine.destroy(*sandbox);
    }
  }
  table.print(std::cout);

  // Adaptive scaler trace on a rate ramp.
  std::cout << "\n== adaptive scaler on a trigger-rate ramp ==\n";
  sched::CpuTopology topology(16);
  core::UllRunQueueManager manager(topology, core::HorseConfig{});
  core::AdaptiveUllParams params;
  params.triggers_per_queue_per_sec = 1000.0;
  params.max_queues = 4;
  core::AdaptiveUllScaler scaler(manager, params);
  const std::uint64_t pattern[] = {100,  400,  900,  1700, 3400, 3400,
                                   1700, 900,  400,  100,  50,   50};
  for (const std::uint64_t rate : pattern) {
    const auto queues = scaler.observe(rate, util::kSecond);
    std::cout << "rate " << rate << "/s -> " << queues << " queue(s), ewma "
              << metrics::format_double(scaler.rate_estimate(), 0) << "/s\n";
  }
  std::cout << "grows: " << scaler.grows() << ", shrinks: " << scaler.shrinks()
            << "\n";
  return 0;
}
