// E3 — Figure 2: breakdown of the vanilla resume process by step (①-⑥)
// while varying the sandbox's vCPU count.
//
// Expectation from the paper: steps ④ (sorted merge) + ⑤ (load update)
// consume 87.5%-93.1% of the resume, growing with the vCPU count.
#include <iostream>
#include <memory>

#include "metrics/reporter.hpp"
#include "metrics/stats.hpp"
#include "sched/topology.hpp"
#include "vmm/resume_engine.hpp"

namespace {

using namespace horse;

constexpr int kRepetitions = 25;
const std::vector<std::uint32_t> kVcpuSweep{1, 2, 4, 8, 16, 24, 32, 36};

}  // namespace

int main() {
  sched::CpuTopology topology(8);
  vmm::ResumeEngine engine(topology, vmm::VmmProfile::firecracker());

  // Background occupancy so step ④'s sorted walks traverse a realistic
  // queue (an idle host would understate the merge share).
  vmm::SandboxConfig bg_config;
  bg_config.name = "background";
  bg_config.num_vcpus = 16;
  bg_config.memory_mb = 1;
  vmm::Sandbox background(999, bg_config);
  for (std::uint32_t i = 0; i < bg_config.num_vcpus; ++i) {
    background.vcpu(i).credit = 1000 * (i + 1);
  }
  (void)engine.start(background);

  metrics::TextTable table(
      "Figure 2: vanilla resume breakdown by step (median of 25 runs)",
      {"vcpus", "(1)parse", "(2)lock", "(3)sanity", "(4)merge", "(5)load",
       "(6)final", "total", "steps 4+5 %"});

  std::vector<metrics::Series> series(3);
  series[0].name = "merge+load ns";
  series[1].name = "other steps ns";
  series[2].name = "contested %";

  for (const std::uint32_t vcpus : kVcpuSweep) {
    vmm::SandboxConfig config;
    config.name = "probe";
    config.num_vcpus = vcpus;
    config.memory_mb = 1;
    vmm::Sandbox sandbox(vcpus, config);
    (void)engine.start(sandbox);

    // Median per-step over repetitions.
    metrics::SampleStats parse, lock, sanity, merge, load, finalize;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      (void)engine.pause(sandbox);
      vmm::ResumeBreakdown bd;
      if (!engine.resume(sandbox, &bd).is_ok()) {
        std::cerr << "resume failed\n";
        return 1;
      }
      parse.add(static_cast<double>(bd.parse));
      lock.add(static_cast<double>(bd.lock));
      sanity.add(static_cast<double>(bd.sanity));
      merge.add(static_cast<double>(bd.merge));
      load.add(static_cast<double>(bd.load_update));
      finalize.add(static_cast<double>(bd.finalize));
    }
    const double p = parse.percentile(50), l = lock.percentile(50),
                 s = sanity.percentile(50), m = merge.percentile(50),
                 u = load.percentile(50), f = finalize.percentile(50);
    const double total = p + l + s + m + u + f;
    const double contested = (m + u) / total;
    table.add_row({std::to_string(vcpus), metrics::format_nanos(p),
                   metrics::format_nanos(l), metrics::format_nanos(s),
                   metrics::format_nanos(m), metrics::format_nanos(u),
                   metrics::format_nanos(f), metrics::format_nanos(total),
                   metrics::format_percent(contested, 1)});
    series[0].xs.push_back(vcpus);
    series[0].ys.push_back(m + u);
    series[1].xs.push_back(vcpus);
    series[1].ys.push_back(p + l + s + f);
    series[2].xs.push_back(vcpus);
    series[2].ys.push_back(contested * 100.0);

    (void)engine.destroy(sandbox);
  }

  table.print(std::cout);
  std::cout << "\n";
  metrics::print_series(std::cout, "Figure 2 series", "vcpus", series);
  std::cout << "\nPaper band: steps 4+5 take 87.5%-93.1% of the resume and "
               "grow with the vCPU count.\n";
  (void)engine.destroy(background);
  return 0;
}
