// E13 (flavour check, ours) — Firecracker vs Xen resume behaviour.
//
// The paper implements HORSE in both Firecracker/KVM and Xen but reports
// only Firecracker numbers, noting "similar observations when using the
// Xen virtualization system" (§3.2, §5). This harness runs the Figure-3
// sweep on both flavours: Xen pays its (real, XenStore-backed) higher
// control-plane cost, but the shape — linear vanilla, flat HORSE — and
// the improvement factors must match across flavours.
#include <iostream>
#include <memory>

#include "core/horse_resume.hpp"
#include "metrics/reporter.hpp"
#include "metrics/stats.hpp"

namespace {

using namespace horse;

constexpr int kRepetitions = 25;
const std::vector<std::uint32_t> kVcpuSweep{1, 8, 16, 36};

double measure(vmm::ResumeEngine& engine, std::uint32_t vcpus, bool ull) {
  vmm::SandboxConfig config;
  config.name = "probe";
  config.num_vcpus = vcpus;
  config.memory_mb = 1;
  config.ull = ull;
  vmm::Sandbox sandbox(20'000 + vcpus, config);
  (void)engine.start(sandbox);
  metrics::SampleStats samples;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    (void)engine.pause(sandbox);
    vmm::ResumeBreakdown bd;
    (void)engine.resume(sandbox, &bd);
    samples.add(static_cast<double>(bd.total()));
  }
  (void)engine.destroy(sandbox);
  return samples.percentile(50);
}

}  // namespace

int main() {
  metrics::TextTable table(
      "Flavour check: vanilla vs HORSE resume, Firecracker and Xen",
      {"vcpus", "fc vanil", "fc horse", "fc speedup", "xen vanil",
       "xen horse", "xen speedup"});

  struct Flavour {
    vmm::VmmProfile profile;
    std::unique_ptr<sched::CpuTopology> vanilla_topo;
    std::unique_ptr<vmm::ResumeEngine> vanilla;
    std::unique_ptr<sched::CpuTopology> horse_topo;
    std::unique_ptr<core::HorseResumeEngine> horse;
  };
  auto make_flavour = [](vmm::VmmProfile profile) {
    Flavour flavour;
    flavour.profile = profile;
    flavour.vanilla_topo = std::make_unique<sched::CpuTopology>(8);
    flavour.vanilla = std::make_unique<vmm::ResumeEngine>(
        *flavour.vanilla_topo, profile);
    flavour.horse_topo = std::make_unique<sched::CpuTopology>(8);
    flavour.horse = std::make_unique<core::HorseResumeEngine>(
        *flavour.horse_topo, profile);
    return flavour;
  };
  auto fc = make_flavour(vmm::VmmProfile::firecracker());
  auto xen = make_flavour(vmm::VmmProfile::xen());

  double fc_speedup_36 = 0.0;
  double xen_speedup_36 = 0.0;
  for (const std::uint32_t vcpus : kVcpuSweep) {
    const double fc_vanil = measure(*fc.vanilla, vcpus, false);
    const double fc_horse = measure(*fc.horse, vcpus, true);
    const double xen_vanil = measure(*xen.vanilla, vcpus, false);
    const double xen_horse = measure(*xen.horse, vcpus, true);
    if (vcpus == 36) {
      fc_speedup_36 = fc_vanil / fc_horse;
      xen_speedup_36 = xen_vanil / xen_horse;
    }
    table.add_row({std::to_string(vcpus), metrics::format_nanos(fc_vanil),
                   metrics::format_nanos(fc_horse),
                   metrics::format_double(fc_vanil / fc_horse, 2) + "x",
                   metrics::format_nanos(xen_vanil),
                   metrics::format_nanos(xen_horse),
                   metrics::format_double(xen_vanil / xen_horse, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nPaper: \"we obtain similar observations when using the Xen "
               "virtualization system\" — speedup at 36 vCPUs: firecracker "
            << metrics::format_double(fc_speedup_36, 2) << "x vs xen "
            << metrics::format_double(xen_speedup_36, 2)
            << "x (same order; Xen's floor is its real XenStore reads).\n";
  return 0;
}
