// E1/E2 — Table 1 and Figure 1 of the paper.
//
// For the three uLL workload categories and the cold / restore / warm
// start strategies, report sandbox-initialization time, average execution
// time, and initialization's share of the end-to-end pipeline.
//
// Init times for cold/restore combine modelled guest-boot / device-reinit
// latency (the parts a user-space reproduction cannot execute; constants
// anchored at the paper's Table 1) with the measured costs of the real
// code paths; warm init is the real vanilla resume plus modelled dispatch
// plumbing. Execution times are real, measured on this host — absolute
// values differ from the paper's Node.js-on-Xeon numbers, but the
// *fractions* (the paper's claim) reproduce.
#include <iostream>
#include <memory>

#include "faas/platform.hpp"
#include "metrics/reporter.hpp"
#include "metrics/stats.hpp"
#include "workloads/array_filter.hpp"
#include "workloads/firewall.hpp"
#include "workloads/nat.hpp"

namespace {

using namespace horse;  // bench drivers: brevity over hygiene

struct Workload {
  std::string label;
  faas::FunctionId id;
  workloads::Request request;
};

constexpr int kRepetitions = 10;  // the paper's 10x procedure

}  // namespace

int main() {
  faas::PlatformConfig config;
  config.num_cpus = 4;
  faas::Platform platform(config);

  auto add = [&](const std::string& name,
                 std::shared_ptr<workloads::Function> impl) {
    faas::FunctionSpec spec;
    spec.name = name;
    spec.implementation = std::move(impl);
    spec.sandbox.name = name + "-sb";
    spec.sandbox.num_vcpus = 1;   // the §2 setup: 1 vCPU, 512 MB
    spec.sandbox.memory_mb = 64;  // scaled image keeps restore-copy real
    spec.sandbox.ull = true;
    return *platform.registry().add(std::move(spec));
  };

  workloads::Request packet;
  packet.header = "src=10.2.3.4 dst=192.168.0.1 port=443 proto=tcp";
  workloads::Request filter;
  filter.payload = workloads::ArrayFilterFunction::default_payload();
  filter.threshold = 995'000;

  std::vector<Workload> categories{
      {"Category1(firewall)",
       add("firewall", std::make_shared<workloads::FirewallFunction>(6000)),
       packet},
      {"Category2(nat)", add("nat", std::make_shared<workloads::NatFunction>()),
       packet},
      {"Category3(filter)",
       add("filter", std::make_shared<workloads::ArrayFilterFunction>()),
       filter},
  };

  const std::vector<faas::StartMode> modes{
      faas::StartMode::kCold, faas::StartMode::kRestore, faas::StartMode::kWarm};

  metrics::TextTable table(
      "Table 1: sandbox initialization vs uLL execution (10 runs each)",
      {"workload", "mode", "init (mean)", "exec (mean)", "init %",
       "ci95/mean"});
  std::vector<metrics::Series> fig1;

  for (const auto& workload : categories) {
    (void)platform.provision(workload.id, 1);
    metrics::Series series;
    series.name = workload.label;
    for (const auto mode : modes) {
      metrics::SampleStats init_stats;
      metrics::SampleStats exec_stats;
      // Warmup: populate caches and the warm pool before measuring.
      for (int warm = 0; warm < 3; ++warm) {
        (void)platform.invoke(workload.id, workload.request, mode);
      }
      for (int rep = 0; rep < kRepetitions; ++rep) {
        const auto record = platform.invoke(workload.id, workload.request, mode);
        if (!record) {
          std::cerr << "invoke failed: " << record.status().to_report() << "\n";
          return 1;
        }
        init_stats.add(static_cast<double>(record->init_time));
        exec_stats.add(static_cast<double>(record->exec_time));
      }
      const auto init = init_stats.summarize();
      const auto exec = exec_stats.summarize();
      const double fraction = init.mean / (init.mean + exec.mean);
      table.add_row({workload.label, std::string(to_string(mode)),
                     metrics::format_nanos(init.mean),
                     metrics::format_nanos(exec.mean),
                     metrics::format_percent(fraction),
                     metrics::format_percent(init.ci95_relative())});
      series.xs.push_back(static_cast<double>(series.xs.size()));
      series.ys.push_back(fraction * 100.0);
    }
    fig1.push_back(std::move(series));
  }

  table.print(std::cout);
  std::cout << "\n";
  metrics::print_series(
      std::cout,
      "Figure 1: init %% of pipeline (x: 0=cold, 1=restore, 2=warm)",
      "mode", fig1);
  std::cout << "\nPaper bands: cold/restore >= 98.7%; warm 6.07% (cat1), "
               "42.3% (cat2), 61.1% (cat3).\n";
  return 0;
}
