// E9 — ablation micro-benchmarks for load-update coalescing and the
// ull_runqueue load-balancing policy (google-benchmark).
#include <benchmark/benchmark.h>

#include <memory>

#include "core/coalesce.hpp"
#include "core/horse_resume.hpp"
#include "core/ull_manager.hpp"
#include "sched/run_queue.hpp"
#include "vmm/resume_engine.hpp"

namespace {

using namespace horse;

/// Vanilla step ⑤: n locked αx+β updates.
void BM_LoadUpdateIterative(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  sched::RunQueue queue(0);
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(queue.update_load_enqueue());
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LoadUpdateIterative)->Arg(1)->Arg(8)->Arg(36)->Arg(256)->Arg(1024);

/// HORSE step ⑤ with pause-time precompute: one locked FMA.
void BM_LoadUpdateCoalescedPrecomputed(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  sched::RunQueue queue(0);
  core::LoadCoalescer coalescer(queue.pelt().params());
  const auto pre = coalescer.precompute(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        queue.apply_precomputed_load(pre.alpha_n, pre.beta_geo_sum));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LoadUpdateCoalescedPrecomputed)
    ->Arg(1)
    ->Arg(8)
    ->Arg(36)
    ->Arg(256)
    ->Arg(1024);

/// Coalesced without precompute (pow() at resume): shows why the paper
/// moves the computation to pause time.
void BM_LoadUpdateCoalescedInline(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  sched::RunQueue queue(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.update_load_coalesced(n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LoadUpdateCoalescedInline)->Arg(1)->Arg(36)->Arg(1024);

/// Pause-time precompute itself (pow + divide).
void BM_CoalescePrecompute(benchmark::State& state) {
  core::LoadCoalescer coalescer;
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(coalescer.precompute(n));
  }
}
BENCHMARK(BM_CoalescePrecompute)->Arg(1)->Arg(36)->Arg(1024);

/// ull_runqueue assignment across queue counts (§4.1.3 load balancing).
void BM_UllAssignment(benchmark::State& state) {
  const auto queues = static_cast<std::uint32_t>(state.range(0));
  sched::CpuTopology topology(16);
  core::HorseConfig config;
  config.num_ull_runqueues = queues;
  core::UllRunQueueManager manager(topology, config);
  vmm::SandboxConfig sandbox_config;
  sandbox_config.name = "probe";
  sandbox_config.num_vcpus = 1;
  sandbox_config.memory_mb = 1;
  sandbox_config.ull = true;
  vmm::Sandbox sandbox(1, sandbox_config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.assign(sandbox));
  }
}
BENCHMARK(BM_UllAssignment)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Full HORSE pause path (the cost HORSE adds off the critical path) vs
/// vanilla pause, per vCPU count.
void BM_PausePath(benchmark::State& state) {
  const auto vcpus = static_cast<std::uint32_t>(state.range(0));
  const bool horse = state.range(1) != 0;
  sched::CpuTopology topology(8);
  std::unique_ptr<vmm::ResumeEngine> engine;
  if (horse) {
    engine = std::make_unique<core::HorseResumeEngine>(
        topology, vmm::VmmProfile::firecracker());
  } else {
    engine = std::make_unique<vmm::ResumeEngine>(
        topology, vmm::VmmProfile::firecracker());
  }
  vmm::SandboxConfig config;
  config.name = "probe";
  config.num_vcpus = vcpus;
  config.memory_mb = 1;
  config.ull = horse;
  vmm::Sandbox sandbox(1, config);
  (void)engine->start(sandbox);
  for (auto _ : state) {
    (void)engine->pause(sandbox);
    state.PauseTiming();
    (void)engine->resume(sandbox);
    state.ResumeTiming();
  }
  state.SetLabel(horse ? "horse" : "vanilla");
  (void)engine->destroy(sandbox);
}
BENCHMARK(BM_PausePath)
    ->Args({1, 0})
    ->Args({36, 0})
    ->Args({1, 1})
    ->Args({36, 1});

}  // namespace

BENCHMARK_MAIN();
