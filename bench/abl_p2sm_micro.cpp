// E8 — ablation micro-benchmarks for 𝒫²𝒮ℳ (google-benchmark).
//
// Measures the costs the paper's complexity analysis (§4.1.1-4.1.2)
// claims: O(1)-in-list-size merge (O(#runs) splices), the O(|B|) vanilla
// per-vCPU sorted merge it replaces, precompute rebuild cost, and
// steady-state incremental maintenance.
#include <benchmark/benchmark.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/merge_crew.hpp"
#include "core/p2sm.hpp"
#include "util/rng.hpp"

namespace {

using namespace horse;

struct Lists {
  std::vector<std::unique_ptr<sched::Vcpu>> storage;
  sched::VcpuList a;
  std::unique_ptr<sched::RunQueue> b;

  Lists(std::size_t a_size, std::size_t b_size, std::uint64_t seed) {
    b = std::make_unique<sched::RunQueue>(0);
    util::Xoshiro256 rng(seed);
    std::vector<sched::Credit> b_credits;
    for (std::size_t i = 0; i < b_size; ++i) {
      b_credits.push_back(static_cast<sched::Credit>(rng.bounded(1'000'000)));
    }
    std::sort(b_credits.begin(), b_credits.end());
    for (const auto credit : b_credits) {
      auto vcpu = std::make_unique<sched::Vcpu>();
      vcpu->credit = credit;
      // Pre-sorted: push_back keeps construction O(B) instead of O(B^2).
      b->push_back(*vcpu);
      storage.push_back(std::move(vcpu));
    }
    std::vector<sched::Credit> a_credits;
    for (std::size_t i = 0; i < a_size; ++i) {
      a_credits.push_back(static_cast<sched::Credit>(rng.bounded(1'000'000)));
    }
    std::sort(a_credits.begin(), a_credits.end());
    for (const auto credit : a_credits) {
      auto vcpu = std::make_unique<sched::Vcpu>();
      vcpu->credit = credit;
      a.push_back(*vcpu);
      storage.push_back(std::move(vcpu));
    }
  }

  ~Lists() {
    a.clear();
    b->list().clear();
  }
};

/// The merge phase alone (index prebuilt): the paper's O(1) claim. List
/// construction and teardown are excluded from the timed region.
void BM_P2smMergePhase(benchmark::State& state) {
  const auto a_size = static_cast<std::size_t>(state.range(0));
  const auto b_size = static_cast<std::size_t>(state.range(1));
  core::SequentialMergeExecutor executor;
  for (auto _ : state) {
    state.PauseTiming();
    auto lists = std::make_unique<Lists>(a_size, b_size, 42);
    core::P2smIndex index;
    index.rebuild(lists->a, *lists->b);
    state.ResumeTiming();

    benchmark::DoNotOptimize(index.merge(lists->a, *lists->b, executor));

    state.PauseTiming();
    lists.reset();  // O(|A|+|B|) teardown outside the timed region
    state.ResumeTiming();
  }
  state.SetLabel("A=" + std::to_string(a_size) + " B=" + std::to_string(b_size));
}
BENCHMARK(BM_P2smMergePhase)
    ->Args({1, 16})
    ->Args({8, 16})
    ->Args({36, 16})
    ->Args({36, 256})
    ->Args({36, 4096})
    ->Args({512, 4096});

/// The vanilla alternative: per-element sorted walks into the same queue.
void BM_VanillaSortedMerge(benchmark::State& state) {
  const auto a_size = static_cast<std::size_t>(state.range(0));
  const auto b_size = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    auto lists = std::make_unique<Lists>(a_size, b_size, 42);
    state.ResumeTiming();

    while (lists->a.size() > 0) {
      sched::Vcpu& vcpu = lists->a.pop_front();
      util::LockGuard guard(lists->b->lock());
      lists->b->insert_sorted(vcpu);
    }
    benchmark::ClobberMemory();

    state.PauseTiming();
    lists.reset();
    state.ResumeTiming();
  }
  state.SetLabel("A=" + std::to_string(a_size) + " B=" + std::to_string(b_size));
}
BENCHMARK(BM_VanillaSortedMerge)
    ->Args({1, 16})
    ->Args({8, 16})
    ->Args({36, 16})
    ->Args({36, 256})
    ->Args({36, 4096});

/// Precompute rebuild cost (amortised off the resume path): O(|A|+|B|).
void BM_P2smRebuild(benchmark::State& state) {
  const auto a_size = static_cast<std::size_t>(state.range(0));
  const auto b_size = static_cast<std::size_t>(state.range(1));
  Lists lists(a_size, b_size, 42);
  core::P2smIndex index;
  for (auto _ : state) {
    index.rebuild(lists.a, *lists.b);
    benchmark::DoNotOptimize(index.run_count());
  }
}
BENCHMARK(BM_P2smRebuild)->Args({36, 16})->Args({36, 256})->Args({36, 4096});

/// Steady-state incremental maintenance: one insert + one remove per
/// iteration against a fixed-size A (paper: O(n) insert, O(m) remove).
void BM_P2smIncrementalInsertRemove(benchmark::State& state) {
  const auto b_size = static_cast<std::size_t>(state.range(0));
  Lists lists(64, b_size, 42);
  core::P2smIndex index;
  index.rebuild(lists.a, *lists.b);
  util::Xoshiro256 rng(7);
  auto probe = std::make_unique<sched::Vcpu>();
  for (auto _ : state) {
    probe->credit = static_cast<sched::Credit>(rng.bounded(1'000'000));
    benchmark::DoNotOptimize(index.insert_into_a(lists.a, *probe, *lists.b));
    benchmark::DoNotOptimize(index.remove_from_a(lists.a, *probe));
  }
}
BENCHMARK(BM_P2smIncrementalInsertRemove)->Arg(16)->Arg(256)->Arg(4096);

/// Sequential vs parallel splice execution across run counts. The
/// parallel variants are only registered when the host has enough
/// hardware threads for the crew to actually run in parallel — on a
/// single-core machine the spin-dispatch degenerates to scheduler
/// ping-pong and measures the OS, not the algorithm.
void BM_SpliceExecution(benchmark::State& state) {
  const auto runs = static_cast<std::size_t>(state.range(0));
  const bool parallel = state.range(1) != 0;
  core::SequentialMergeExecutor sequential;
  std::unique_ptr<core::ParallelMergeCrew> crew;
  core::MergeExecutor* executor = &sequential;
  if (parallel) {
    crew = std::make_unique<core::ParallelMergeCrew>(4);
    crew->arm();
    executor = crew.get();
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto lists = std::make_unique<Lists>(runs, runs, 99);
    core::P2smIndex index;
    index.rebuild(lists->a, *lists->b);
    state.ResumeTiming();

    benchmark::DoNotOptimize(index.merge(lists->a, *lists->b, *executor));

    state.PauseTiming();
    lists.reset();
    state.ResumeTiming();
  }
  if (crew) {
    crew->disarm();
  }
  state.SetLabel(parallel ? "parallel" : "sequential");
}

void register_splice_benchmarks() {
  auto* bench = benchmark::RegisterBenchmark("BM_SpliceExecution",
                                             &BM_SpliceExecution);
  bench->Args({1, 0})->Args({8, 0})->Args({36, 0});
  if (std::thread::hardware_concurrency() >= 4) {
    bench->Args({1, 1})->Args({8, 1})->Args({36, 1});
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_splice_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
