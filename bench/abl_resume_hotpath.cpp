// E22 — resume hot-path ablation (PR 10): quantify what each hot-path
// optimisation buys on the SAME workload, and gate the combined result.
//
// Arms (HorseConfig toggles; everything else identical):
//   scalar     — cycle_timing off, branchless_walk off, epoch_reclaim off
//                (the pre-PR-10 hot path: chrono stage timing, per-vCPU
//                std::upper_bound walks, inline frees in untrack)
//   cycles     — rdtsc stage timing only
//   branchless — branchless/SIMD credit walk + single-lock merge only
//   epoch      — epoch-deferred reclamation only
//   all        — everything on (the shipped default)
//
// Workload: two 32-vCPU uLL sandboxes pinned to ONE reserved queue with
// interleaved credits, so every measured resume merges 32 vCPUs into a
// queue already holding 32 in 32 separate runs — the credit walk, the
// splice set and the retire path dominate the fixed prologue. Samples
// are 16-resume batch means (see kBatchReps). Gates (exit code 1):
//   * p99(all) must undercut p99(scalar) by >= 20% — downgraded to a
//     reported-but-non-fatal check with --advisory-perf-gate (shared CI
//     runners; see the hotpath-smoke job)
//   * the steady-state "all" resume must be allocation-free (this binary
//     carries the counting allocator; a canary verifies it is live) —
//     deterministic, always hard
#include <cstring>
#include <iostream>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "core/horse_resume.hpp"
#include "metrics/csv.hpp"
#include "metrics/histogram.hpp"
#include "metrics/reporter.hpp"
#include "util/alloc_counter.hpp"
#include "util/cycle_clock.hpp"

namespace {

using namespace horse;

constexpr std::uint32_t kVcpus = 32;
constexpr int kWarmupReps = 64;
// Latency samples are means over batches of consecutive resumes: a single
// resume runs in the hundreds of ns, where a raw p99 measures the host's
// interrupts, not the code. Per-sample batching (google-benchmark style)
// keeps the tail statistic about the resume path itself.
constexpr int kBatchReps = 16;

struct Arm {
  const char* name;
  bool cycle_timing;
  bool branchless_walk;
  bool epoch_reclaim;
};

const std::vector<Arm> kArms = {
    {"scalar", false, false, false},
    {"cycles", true, false, false},
    {"branchless", false, true, false},
    {"epoch", false, false, true},
    {"all", true, true, true},
};

struct ArmResult {
  std::string name;
  metrics::Histogram latency;  // 16-resume batch means of bd.total()
  std::uint64_t alloc_violations = 0;
  std::uint64_t alloc_checked = 0;
  core::ResumeCycleStats cycles;
};

ArmResult run_arm(const Arm& arm, int reps, bool strict_alloc) {
  sched::CpuTopology topology(8);
  core::HorseConfig config;
  config.num_ull_runqueues = 1;  // both sandboxes share one queue
  config.cycle_timing = arm.cycle_timing;
  config.branchless_walk = arm.branchless_walk;
  config.epoch_reclaim = arm.epoch_reclaim;
  // The timed resume runs the engine's sorted-walk merge (no 𝒫²𝒮ℳ): that
  // walk is the path the branchless/single-lock rewrite transforms, and
  // it is also the kHorse degradation rung every resume must survive.
  // The 𝒫²𝒮ℳ splice is already O(runs) pointer writes (~0.8 µs at this
  // size, E4/fig3 track it); ablating the walk arms there measures noise.
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker(),
                                 config, core::HorseFeatures::coalescing_only());

  vmm::SandboxConfig sandbox_config;
  sandbox_config.num_vcpus = kVcpus;
  sandbox_config.memory_mb = 1;
  sandbox_config.ull = true;
  sandbox_config.name = "resident";
  vmm::Sandbox resident(9'001, sandbox_config);
  sandbox_config.name = "probe";
  vmm::Sandbox probe(9'002, sandbox_config);

  // Interleaved credits: resident 0,2000,4000,... / probe 1000,3000,...
  // so every merge fragments into kVcpus runs (worst-case splice count).
  (void)engine.start(resident);
  for (std::uint32_t i = 0; i < kVcpus; ++i) {
    resident.vcpu(i).credit = 2'000 * static_cast<sched::Credit>(i);
  }
  (void)engine.start(probe);
  for (std::uint32_t i = 0; i < kVcpus; ++i) {
    probe.vcpu(i).credit = 2'000 * static_cast<sched::Credit>(i) + 1'000;
  }
  (void)engine.pause(resident);
  (void)engine.pause(probe);
  // The resident stays runnable on the reserved queue from here on.
  (void)engine.resume(resident);

  ArmResult result;
  result.name = arm.name;
  std::uint64_t warmup_fallbacks = 0;
  util::Nanos batch_sum = 0;
  int batch_count = 0;
  for (int rep = 0; rep < reps; ++rep) {
    if (rep == kWarmupReps) {
      // First-touch index builds may legitimately take the fallback walk
      // during warmup; only the measured reps must stay on the fast path.
      warmup_fallbacks = engine.degradation_stats().fallback_merges;
    }
    (void)engine.pause(probe);
    vmm::ResumeBreakdown bd;
    const std::uint64_t allocs_before = util::thread_alloc_count();
    const util::Status status = engine.resume(probe, &bd);
    const std::uint64_t allocs_after = util::thread_alloc_count();
    if (!status.is_ok()) {
      std::cerr << arm.name << ": resume failed: " << status.to_report()
                << "\n";
      std::exit(2);
    }
    if (rep < kWarmupReps) {
      continue;
    }
    batch_sum += bd.total();
    if (++batch_count == kBatchReps) {
      result.latency.record(batch_sum / kBatchReps);
      batch_sum = 0;
      batch_count = 0;
    }
    if (strict_alloc) {
      ++result.alloc_checked;
      if (allocs_after != allocs_before) {
        ++result.alloc_violations;
      }
    }
  }
  const core::ResumeDegradationStats deg = engine.degradation_stats();
  if (deg.fallback_merges != warmup_fallbacks) {
    // A degraded measured sample would mean the arms timed different paths.
    std::cerr << arm.name << ": " << deg.fallback_merges - warmup_fallbacks
              << " degraded resume(s) in the measured reps; arm results not "
                 "comparable\n";
    std::exit(2);
  }
  result.cycles = engine.cycle_stats();
  (void)engine.destroy(probe);
  (void)engine.destroy(resident);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 16'384;
  // --advisory-perf-gate: report the p99-reduction gate but do not fail
  // on it — for shared CI runners whose noisy neighbours make a relative
  // perf threshold flaky. The zero-alloc gate is deterministic and stays
  // hard in both modes.
  bool advisory_perf_gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--size") == 0 && i + 1 < argc) {
      reps = std::strcmp(argv[i + 1], "small") == 0 ? 4'096 : 16'384;
      ++i;
    } else if (std::strcmp(argv[i], "--advisory-perf-gate") == 0) {
      advisory_perf_gate = true;
    }
  }

  {
    // Canary: the zero-alloc gate is meaningless if the counting
    // operator new is not linked into this binary. Call operator new
    // through a volatile pointer — -O3 may elide a paired new/delete
    // expression (and did, for make_unique here), which reads as a
    // dead hook.
    const std::uint64_t before = util::thread_alloc_count();
    void* (*volatile raw_new)(std::size_t) = ::operator new;
    ::operator delete(raw_new(sizeof(int)));
    if (util::thread_alloc_count() == before) {
      std::cerr << "alloc hook not live in this binary\n";
      return 2;
    }
  }

  std::vector<ArmResult> results;
  for (const Arm& arm : kArms) {
    results.push_back(
        run_arm(arm, reps, /*strict_alloc=*/std::strcmp(arm.name, "all") == 0));
  }

  metrics::TextTable table(
      "E22: resume hot-path ablation (ns over 16-resume batch means, " +
          std::to_string(results.front().latency.count()) + " samples/arm)",
      {"arm", "p50", "p99", "p999", "max"});
  metrics::CsvWriter csv(
      {"arm", "p50_ns", "p99_ns", "p999_ns", "mean_ns", "resumes"});
  for (const ArmResult& r : results) {
    table.add_row({r.name, metrics::format_nanos(r.latency.p50()),
                   metrics::format_nanos(r.latency.p99()),
                   metrics::format_nanos(r.latency.p999()),
                   metrics::format_nanos(r.latency.max())});
    csv.add_row({r.name, std::to_string(r.latency.p50()),
                 std::to_string(r.latency.p99()),
                 std::to_string(r.latency.p999()),
                 std::to_string(r.latency.mean()),
                 std::to_string(r.latency.count())});
  }
  table.print(std::cout);

  // Per-stage cycle budget from the all-on arm (tentpole item 1).
  const core::ResumeCycleStats& cs = results.back().cycles;
  if (cs.resumes > 0) {
    const auto per_stage = [&](std::uint64_t cycles) {
      return metrics::format_nanos(static_cast<double>(
          util::CycleClock::cycles_to_nanos(cycles / cs.resumes)));
    };
    metrics::TextTable stages("Cycle budget per stage (mean ns, all arm)",
                              {"prologue", "lookup", "splice", "publish"});
    stages.add_row({per_stage(cs.prologue_cycles), per_stage(cs.lookup_cycles),
                    per_stage(cs.splice_cycles), per_stage(cs.publish_cycles)});
    stages.print(std::cout);
    std::cout << "resume cycles p99: " << cs.total_cycles.p99() << " ("
              << metrics::format_nanos(static_cast<double>(
                     util::CycleClock::cycles_to_nanos(cs.total_cycles.p99())))
              << ")\n";
  } else {
    std::cout << "cycle accounting unavailable (no TSC on this target)\n";
  }

  const auto csv_status = csv.write_file("abl_resume_hotpath.csv");
  if (csv_status.is_ok()) {
    std::cout << "wrote abl_resume_hotpath.csv\n";
  }

  // --- gates ---------------------------------------------------------------
  const ArmResult& scalar = results.front();
  const ArmResult& all = results.back();
  const double scalar_p99 = static_cast<double>(scalar.latency.p99());
  const double all_p99 = static_cast<double>(all.latency.p99());
  const double reduction = 1.0 - all_p99 / scalar_p99;
  std::cout << "\np99 scalar=" << metrics::format_nanos(scalar_p99)
            << " all=" << metrics::format_nanos(all_p99)
            << " reduction=" << metrics::format_percent(reduction, 1)
            << " (gate: >= 20%)\n";
  std::cout << "strict-alloc: " << all.alloc_checked << " resumes checked, "
            << all.alloc_violations << " violation(s)\n";

  bool failed = false;
  if (reduction < 0.20) {
    if (advisory_perf_gate) {
      std::cerr << "GATE MISSED (advisory): p99 reduction below 20%\n";
    } else {
      std::cerr << "GATE FAILED: p99 reduction below 20%\n";
      failed = true;
    }
  }
  if (all.alloc_checked == 0 || all.alloc_violations != 0) {
    std::cerr << "GATE FAILED: allocations on the timed resume path\n";
    failed = true;
  }
  return failed ? 1 : 0;
}
