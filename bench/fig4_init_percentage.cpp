// E6 — Figure 4: sandbox-initialization share of the trigger pipeline for
// the three uLL workloads under cold / restore / warm / HORSE.
//
// Paper bands: HORSE init share between 0.77% and 17.64%; HORSE beats
// warm by up to 8.95x, restore by up to 142.7x, cold by up to 142.84x.
#include <iostream>
#include <memory>

#include "faas/platform.hpp"
#include "metrics/reporter.hpp"
#include "metrics/stats.hpp"
#include "workloads/array_filter.hpp"
#include "workloads/firewall.hpp"
#include "workloads/nat.hpp"

namespace {

using namespace horse;

constexpr int kRepetitions = 10;

}  // namespace

int main() {
  faas::PlatformConfig config;
  config.num_cpus = 4;
  faas::Platform platform(config);

  auto add = [&](const std::string& name,
                 std::shared_ptr<workloads::Function> impl) {
    faas::FunctionSpec spec;
    spec.name = name;
    spec.implementation = std::move(impl);
    spec.sandbox.name = name + "-sb";
    spec.sandbox.num_vcpus = 1;
    spec.sandbox.memory_mb = 64;
    spec.sandbox.ull = true;
    const auto id = *platform.registry().add(std::move(spec));
    (void)platform.provision(id, 1);
    return id;
  };

  workloads::Request packet;
  packet.header = "src=10.2.3.4 dst=192.168.0.1 port=443 proto=tcp";
  workloads::Request filter;
  filter.payload = workloads::ArrayFilterFunction::default_payload();
  filter.threshold = 995'000;

  struct Workload {
    std::string label;
    faas::FunctionId id;
    workloads::Request request;
  };
  std::vector<Workload> workloads_list{
      {"Category1(firewall)",
       add("firewall", std::make_shared<workloads::FirewallFunction>(6000)),
       packet},
      {"Category2(nat)", add("nat", std::make_shared<workloads::NatFunction>()),
       packet},
      {"Category3(filter)",
       add("filter", std::make_shared<workloads::ArrayFilterFunction>()),
       filter},
  };
  const std::vector<faas::StartMode> modes{
      faas::StartMode::kCold, faas::StartMode::kRestore, faas::StartMode::kWarm,
      faas::StartMode::kHorse};

  metrics::TextTable table(
      "Figure 4: sandbox init %% of trigger pipeline (mean of 10 runs)",
      {"workload", "cold", "restore", "warm", "horse", "warm/horse",
       "cold/horse"});

  for (const auto& workload : workloads_list) {
    std::vector<double> fractions;
    for (const auto mode : modes) {
      metrics::SampleStats init_share;
      for (int rep = 0; rep < kRepetitions; ++rep) {
        const auto record = platform.invoke(workload.id, workload.request, mode);
        if (!record) {
          std::cerr << "invoke failed: " << record.status().to_report() << "\n";
          return 1;
        }
        init_share.add(record->init_fraction());
      }
      fractions.push_back(init_share.summarize().mean);
    }
    table.add_row(
        {workload.label, metrics::format_percent(fractions[0]),
         metrics::format_percent(fractions[1]),
         metrics::format_percent(fractions[2]),
         metrics::format_percent(fractions[3]),
         metrics::format_double(fractions[2] / fractions[3], 2) + "x",
         metrics::format_double(fractions[0] / fractions[3], 2) + "x"});
  }

  table.print(std::cout);
  std::cout << "\nPaper bands: horse init share 0.77%-17.64%; vs warm up to "
               "8.95x, vs restore up to 142.7x, vs cold up to 142.84x.\n";
  return 0;
}
