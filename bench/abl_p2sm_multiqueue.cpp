// E12 (design-justification ablation, ours) — why §4.1.3 reserves a
// dedicated ull_runqueue instead of indexing every run queue.
//
// "Applying 𝒫²𝒮ℳ would mean maintaining the two data structures (arrayB
// and posA) required by 𝒫²𝒮ℳ for all run queues, which would be
// computationally expensive." This harness quantifies that: for a server
// with Q candidate run queues and 10 paused uLL sandboxes, maintaining an
// index per (sandbox × queue) costs Q× the memory and Q× the refresh work
// per queue mutation; the reserved-queue design keeps both constant.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "core/p2sm.hpp"
#include "metrics/reporter.hpp"
#include "sched/run_queue.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace {

using namespace horse;

constexpr int kPausedSandboxes = 10;
constexpr std::uint32_t kVcpus = 8;
constexpr std::size_t kQueueOccupancy = 32;  // runnable vCPUs per queue

struct PausedSandboxLists {
  std::vector<std::unique_ptr<sched::Vcpu>> storage;
  sched::VcpuList merge_vcpus;

  explicit PausedSandboxLists(std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    std::vector<sched::Credit> credits;
    for (std::uint32_t i = 0; i < kVcpus; ++i) {
      credits.push_back(static_cast<sched::Credit>(rng.bounded(1'000'000)));
    }
    std::sort(credits.begin(), credits.end());
    for (const auto credit : credits) {
      auto vcpu = std::make_unique<sched::Vcpu>();
      vcpu->credit = credit;
      merge_vcpus.push_back(*vcpu);
      storage.push_back(std::move(vcpu));
    }
  }
  ~PausedSandboxLists() { merge_vcpus.clear(); }
};

}  // namespace

int main() {
  metrics::TextTable table(
      "Ablation: index-all-queues vs one reserved ull_runqueue",
      {"queues indexed", "indexes", "total memory", "refresh cost/mutation",
       "vs reserved"});

  double reserved_refresh_ns = 0.0;

  for (const std::size_t queues : {1u, 4u, 16u, 64u, 128u}) {
    // Q populated run queues.
    std::vector<std::unique_ptr<sched::RunQueue>> queue_storage;
    std::vector<std::vector<std::unique_ptr<sched::Vcpu>>> occupants(queues);
    util::Xoshiro256 rng(11);
    for (std::size_t q = 0; q < queues; ++q) {
      auto queue = std::make_unique<sched::RunQueue>(
          static_cast<sched::CpuId>(q));
      for (std::size_t i = 0; i < kQueueOccupancy; ++i) {
        auto vcpu = std::make_unique<sched::Vcpu>();
        vcpu->credit = static_cast<sched::Credit>(rng.bounded(1'000'000));
        util::LockGuard guard(queue->lock());
        queue->insert_sorted(*vcpu);
        occupants[q].push_back(std::move(vcpu));
      }
      queue_storage.push_back(std::move(queue));
    }

    // One index per (paused sandbox x queue).
    std::vector<std::unique_ptr<PausedSandboxLists>> sandboxes;
    std::vector<std::unique_ptr<core::P2smIndex>> indexes;
    for (int s = 0; s < kPausedSandboxes; ++s) {
      sandboxes.push_back(std::make_unique<PausedSandboxLists>(100 + s));
      for (std::size_t q = 0; q < queues; ++q) {
        auto index = std::make_unique<core::P2smIndex>();
        index->rebuild(sandboxes.back()->merge_vcpus, *queue_storage[q]);
        indexes.push_back(std::move(index));
      }
    }

    std::size_t memory = 0;
    for (const auto& index : indexes) {
      memory += index->memory_bytes();
    }

    // One mutation on every queue (the §4.1.3 trigger), then refresh all
    // stale indexes — the steady-state maintenance cost per change wave.
    util::Stopwatch watch;
    for (std::size_t q = 0; q < queues; ++q) {
      queue_storage[q]->bump_version();
    }
    std::size_t rebuilt = 0;
    std::size_t index_cursor = 0;
    for (int s = 0; s < kPausedSandboxes; ++s) {
      for (std::size_t q = 0; q < queues; ++q, ++index_cursor) {
        if (!indexes[index_cursor]->fresh(*queue_storage[q])) {
          indexes[index_cursor]->rebuild(sandboxes[s]->merge_vcpus,
                                         *queue_storage[q]);
          ++rebuilt;
        }
      }
    }
    const double refresh_ns = static_cast<double>(watch.elapsed());
    if (queues == 1) {
      reserved_refresh_ns = refresh_ns;
    }

    table.add_row(
        {std::to_string(queues), std::to_string(indexes.size()),
         metrics::format_double(static_cast<double>(memory) / 1024.0, 1) +
             " KB",
         metrics::format_nanos(refresh_ns),
         metrics::format_double(refresh_ns / reserved_refresh_ns, 1) + "x"});

    for (auto& queue : queue_storage) {
      queue->list().clear();
    }
  }

  table.print(std::cout);
  std::cout << "\nThe reserved-queue design (§4.1.3) keeps the left column "
               "at 1: maintenance and memory stay constant per paused "
               "sandbox instead of scaling with the server's queue count.\n";
  return 0;
}
