// Quickstart: register an ultra-low-latency function, provision a warm
// sandbox, and trigger it through the HORSE fast path.
//
//   $ ./quickstart
//
// Walks the minimal public-API surface: Platform, FunctionRegistry,
// provisioning, and the four start strategies.
#include <iostream>

#include "faas/platform.hpp"
#include "metrics/reporter.hpp"
#include "workloads/array_filter.hpp"

int main() {
  using namespace horse;

  // 1. A platform with 4 CPUs; the HORSE engine reserves the last one as
  //    the ull_runqueue.
  faas::PlatformConfig config;
  config.num_cpus = 4;
  faas::Platform platform(config);

  // 2. Register the paper's Category-3 workload: filter the indexes of a
  //    3000-integer array above a threshold. Mark it uLL so it is
  //    eligible for the fast path.
  faas::FunctionSpec spec;
  spec.name = "array-filter";
  spec.implementation = std::make_shared<workloads::ArrayFilterFunction>();
  spec.sandbox.name = "array-filter-sandbox";
  spec.sandbox.num_vcpus = 1;
  spec.sandbox.memory_mb = 64;
  spec.sandbox.ull = true;
  const auto function = *platform.registry().add(std::move(spec));

  // 3. Provisioned concurrency: keep one paused sandbox always ready
  //    (what Lambda Provisioned Concurrency / Azure Premium sell).
  if (auto status = platform.provision(function, 1); !status.is_ok()) {
    std::cerr << "provision failed: " << status.to_report() << "\n";
    return 1;
  }

  // 4. Trigger it with every start strategy and compare.
  workloads::Request request;
  request.payload = workloads::ArrayFilterFunction::default_payload();
  request.threshold = 900'000;

  for (const auto mode :
       {faas::StartMode::kCold, faas::StartMode::kRestore,
        faas::StartMode::kWarm, faas::StartMode::kHorse}) {
    const auto record = platform.invoke(function, request, mode);
    if (!record) {
      std::cerr << "invoke failed: " << record.status().to_report() << "\n";
      return 1;
    }
    std::cout << to_string(mode) << " start: init "
              << metrics::format_nanos(static_cast<double>(record->init_time))
              << " (modelled "
              << metrics::format_nanos(static_cast<double>(record->init_modelled))
              << "), exec "
              << metrics::format_nanos(static_cast<double>(record->exec_time))
              << ", init share "
              << metrics::format_percent(record->init_fraction()) << ", "
              << record->response.indexes.size() << " matches\n";
  }

  std::cout << "\nThe HORSE row should show the smallest init share: that is "
               "the paper's contribution.\n";
  return 0;
}
