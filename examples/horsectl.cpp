// horsectl: command-line control plane over the HORSE engine, speaking
// the same line protocol a Firecracker-style API socket would.
//
//   $ ./horsectl                 # interactive REPL
//   $ echo "create id=1 vcpus=4 memory_mb=64 ull
//           start id=1
//           pause id=1
//           resume id=1" | ./horsectl
//
// Commands: create/start/pause/resume/hotplug/unplug/destroy/state/list,
// plus `help` and `quit`. Resume replies include the measured latency, so
// the REPL doubles as a hands-on demo of the fast path: create a sandbox
// with and without `ull` and compare the `resume` timings.
#include <iostream>
#include <string>

#include "core/horse_resume.hpp"
#include "vmm/api.hpp"

namespace {

constexpr const char* kHelp = R"(commands:
  create  id=<n> vcpus=<n> memory_mb=<n> [ull]
  start   id=<n>
  pause   id=<n>
  resume  id=<n>          (prints the measured resume latency)
  hotplug id=<n>          (add a vCPU to a paused sandbox)
  unplug  id=<n>          (remove the last vCPU of a paused sandbox)
  destroy id=<n>
  state   id=<n>
  list
  help
  quit
)";

}  // namespace

int main() {
  using namespace horse;

  sched::CpuTopology topology(8);
  core::HorseResumeEngine engine(topology, vmm::VmmProfile::firecracker());
  vmm::ApiServer api(engine);

  const bool interactive = true;
  if (interactive) {
    std::cout << "horsectl — HORSE control plane (8 CPUs, 1 reserved "
                 "ull_runqueue). Type 'help'.\n";
  }

  std::string line;
  while (std::cout << "> " && std::getline(std::cin, line)) {
    // Trim leading whitespace so heredoc-style input works.
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos) {
      continue;
    }
    line = line.substr(start);
    if (line == "quit" || line == "exit") {
      break;
    }
    if (line == "help") {
      std::cout << kHelp;
      continue;
    }
    const auto response = api.handle(line);
    if (response.ok()) {
      std::cout << (response.body.empty() ? "ok" : response.body) << "\n";
    } else {
      std::cout << "error: " << response.status.to_report() << "\n";
    }
  }
  std::cout << "\n";
  return 0;
}
