// Adaptive keep-alive: the hybrid-histogram policy (Shahrad et al.
// ATC'20) learning per-function idle patterns and sizing warm-pool
// windows, versus the fixed 10-minute default.
//
//   $ ./adaptive_keepalive
//
// Two functions share a platform: a chatty NAT invoked every ~20 s and a
// batch-style thumbnail invoked every ~45 min. The demo replays a day of
// logical time and reports what keep-alive window each function earned
// and how many sandbox-hours the adaptive policy saves.
#include <iostream>

#include "faas/platform.hpp"
#include "metrics/reporter.hpp"
#include "workloads/nat.hpp"
#include "workloads/thumbnail.hpp"

int main() {
  using namespace horse;

  faas::PlatformConfig config;
  config.num_cpus = 4;
  config.adaptive_keep_alive = true;
  config.keep_alive_policy.min_samples = 6;
  faas::Platform platform(config);

  faas::FunctionSpec nat_spec;
  nat_spec.name = "nat";
  nat_spec.implementation = std::make_shared<workloads::NatFunction>(64);
  nat_spec.sandbox.name = "nat-sb";
  nat_spec.sandbox.num_vcpus = 1;
  nat_spec.sandbox.memory_mb = 16;
  nat_spec.sandbox.ull = true;
  const auto nat = *platform.registry().add(std::move(nat_spec));

  faas::FunctionSpec thumb_spec;
  thumb_spec.name = "thumbnail";
  thumb_spec.implementation =
      std::make_shared<workloads::ThumbnailFunction>(64, 8);
  thumb_spec.sandbox.name = "thumb-sb";
  thumb_spec.sandbox.num_vcpus = 2;
  thumb_spec.sandbox.memory_mb = 64;
  const auto thumbnail = *platform.registry().add(std::move(thumb_spec));

  // Replay ~6 hours of logical time: NAT every 20 s, thumbnail every
  // 45 min. (Invocations run for real; time between them is logical.)
  workloads::Request packet;
  packet.header = "src=10.1.1.1 dst=10.2.2.2 port=443 proto=tcp";
  workloads::Request image;
  image.threshold = 1;

  const util::Nanos horizon = 6LL * 3600 * util::kSecond;
  util::Nanos next_nat = 0;
  util::Nanos next_thumb = 0;
  util::Nanos now = 0;
  int nat_count = 0;
  int thumb_count = 0;
  while (now < horizon) {
    const util::Nanos next = std::min(next_nat, next_thumb);
    platform.advance_time(next - now);
    now = next;
    if (next == next_nat) {
      (void)platform.invoke(nat, packet, faas::StartMode::kCold);
      ++nat_count;
      next_nat += 20 * util::kSecond;
    } else {
      (void)platform.invoke(thumbnail, image, faas::StartMode::kCold);
      ++thumb_count;
      next_thumb += 45LL * 60 * util::kSecond;
    }
  }

  const auto nat_decision = platform.keep_alive_policy().decide(nat);
  const auto thumb_decision = platform.keep_alive_policy().decide(thumbnail);

  metrics::TextTable table("learned keep-alive windows after 6 h",
                           {"function", "invocations", "pre-warm window",
                            "keep-alive", "from histogram"});
  table.add_row({"nat (every 20 s)", std::to_string(nat_count),
                 metrics::format_nanos(static_cast<double>(
                     nat_decision.prewarm_window)),
                 metrics::format_nanos(static_cast<double>(
                     nat_decision.keep_alive)),
                 nat_decision.from_histogram ? "yes" : "no (fallback)"});
  table.add_row({"thumbnail (every 45 min)", std::to_string(thumb_count),
                 metrics::format_nanos(static_cast<double>(
                     thumb_decision.prewarm_window)),
                 metrics::format_nanos(static_cast<double>(
                     thumb_decision.keep_alive)),
                 thumb_decision.from_histogram ? "yes" : "no (fallback)"});
  table.print(std::cout);

  // Sandbox-seconds kept warm per invocation: fixed policy vs adaptive.
  const double fixed_cost =
      static_cast<double>(config.warm_pool.keep_alive) / 1e9;
  const double nat_cost = static_cast<double>(nat_decision.keep_alive) / 1e9;
  const double thumb_cost =
      static_cast<double>(thumb_decision.prewarm_window +
                          thumb_decision.keep_alive) /
      1e9;
  std::cout << "\nwarm-residency per invocation (sandbox-seconds):\n"
            << "  fixed 10-min policy: " << fixed_cost << " for both\n"
            << "  adaptive: nat " << nat_cost << ", thumbnail " << thumb_cost
            << " (pre-warm lets the pool drop it between runs)\n";
  return 0;
}
