// Colocating uLL bursts with longer-running functions (the §5.4 scenario)
// on the simulation plane, with resume costs calibrated from this host's
// real resume engines.
//
//   $ ./ull_colocation [ull_vcpus] [seconds]
//
// Shows the two-plane workflow: CostModel::calibrate() measures the real
// data-structure costs, ColocationExperiment extrapolates a 30 s server
// under trace-driven load in virtual time.
#include <cstdlib>
#include <iostream>

#include "faas/colocation.hpp"
#include "metrics/reporter.hpp"

int main(int argc, char** argv) {
  using namespace horse;

  const std::uint32_t ull_vcpus =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 16;
  const util::Nanos duration =
      (argc > 2 ? std::atoll(argv[2]) : 10) * util::kSecond;

  std::cout << "calibrating resume costs on this host...\n";
  const auto costs =
      sim::CostModel::calibrate(vmm::VmmProfile::firecracker(), 9);
  std::cout << "  vanilla resume (" << ull_vcpus << " vCPUs): "
            << metrics::format_nanos(
                   static_cast<double>(costs.vanilla_resume(ull_vcpus)))
            << "\n  horse resume   (" << ull_vcpus << " vCPUs): "
            << metrics::format_nanos(
                   static_cast<double>(costs.horse_resume(ull_vcpus)))
            << "\n\n";

  const auto arrivals = faas::default_thumbnail_arrivals(duration, 7);
  std::cout << "replaying " << arrivals.size() << " thumbnail invocations over "
            << duration / util::kSecond << " s with 10 uLL resumes/s...\n\n";

  faas::ColocationParams params;
  params.ull_vcpus = ull_vcpus;
  params.duration = duration;
  params.num_cpus = 12;

  metrics::TextTable table("thumbnail latency under colocated uLL bursts",
                           {"mode", "completed", "mean", "p95", "p99",
                            "merge preemptions"});
  for (const auto mode :
       {faas::ColocationMode::kVanilla, faas::ColocationMode::kHorse}) {
    params.mode = mode;
    const auto result = faas::ColocationExperiment(params, costs).run(arrivals);
    table.add_row(
        {mode == faas::ColocationMode::kVanilla ? "vanilla" : "horse",
         std::to_string(result.completed),
         metrics::format_nanos(result.mean_ns),
         metrics::format_nanos(result.p95_ns),
         metrics::format_nanos(result.p99_ns),
         std::to_string(result.preemptions)});
  }
  table.print(std::cout);
  std::cout << "\nHORSE isolates uLL resumes on the reserved queue: means and "
               "p95s match; only the p99 can move, by microseconds.\n";
  return 0;
}
