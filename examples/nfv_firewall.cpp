// NFV scenario from the paper's introduction: a packet-processing chain
// (stateless firewall → NAT) deployed as uLL functions on the platform.
//
//   $ ./nfv_firewall [num_packets]
//
// Streams synthetic packets through both functions three ways — vanilla
// warm starts per hop, HORSE resumes per hop, and the registered
// workflow chain (firewall → NAT as ONE routed unit: the platform fuses
// both uLL stages into a single kHorse resume, and the gated edge stops
// dropped packets before NAT, exactly like the hand-written pipeline) —
// and reports the end-to-end per-packet latency distribution (sandbox
// init + function execution per hop).
#include <cstdlib>
#include <iostream>

#include "faas/platform.hpp"
#include "metrics/reporter.hpp"
#include "metrics/stats.hpp"
#include "util/rng.hpp"
#include "workloads/firewall.hpp"
#include "workloads/nat.hpp"

namespace {

using namespace horse;

std::string random_packet(util::Xoshiro256& rng) {
  char header[96];
  std::snprintf(header, sizeof header,
                "src=10.%llu.%llu.%llu dst=203.0.113.%llu port=%llu proto=%s",
                static_cast<unsigned long long>(rng.bounded(256)),
                static_cast<unsigned long long>(rng.bounded(256)),
                static_cast<unsigned long long>(rng.bounded(256)),
                static_cast<unsigned long long>(rng.bounded(8) + 1),
                static_cast<unsigned long long>(rng.bounded(60'000) + 1),
                rng.bounded(2) == 0 ? "tcp" : "udp");
  return header;
}

}  // namespace

int main(int argc, char** argv) {
  const int packets = argc > 1 ? std::atoi(argv[1]) : 200;

  faas::PlatformConfig config;
  config.num_cpus = 4;
  faas::Platform platform(config);

  auto add = [&](const std::string& name,
                 std::shared_ptr<workloads::Function> impl) {
    faas::FunctionSpec spec;
    spec.name = name;
    spec.implementation = std::move(impl);
    spec.sandbox.name = name + "-sb";
    spec.sandbox.num_vcpus = 1;
    spec.sandbox.memory_mb = 16;
    spec.sandbox.ull = true;
    const auto id = *platform.registry().add(std::move(spec));
    (void)platform.provision(id, 1);
    return id;
  };
  // Allow list: generated filler rules plus explicit rules admitting TCP
  // from 10/8 to the demo's 203.0.113.{1..8} targets.
  auto firewall_impl = std::make_shared<workloads::FirewallFunction>(2048);
  for (std::uint32_t host = 1; host <= 8; ++host) {
    workloads::FirewallRule rule;
    rule.src_prefix = 10u << 24;
    rule.src_mask = 0xff000000;
    rule.dst_addr = (203u << 24) | (0u << 16) | (113u << 8) | host;
    rule.port_lo = 1;
    rule.port_hi = 65535;
    rule.proto = 6;  // tcp only: udp packets get dropped
    firewall_impl->add_rule(rule);
  }
  const auto firewall = add("firewall", firewall_impl);
  const auto nat = add("nat", std::make_shared<workloads::NatFunction>(512));

  // The same pipeline as a registered workflow: one submission, the NAT
  // hop gated on the firewall's verdict (a dropped packet completes the
  // chain early, NAT never runs). Both stages are uLL with an identical
  // sandbox shape, so the fusion planner runs the whole chain as one
  // kHorse resume.
  faas::WorkflowSpec chain_spec;
  chain_spec.name = "firewall-nat";
  chain_spec.stages = {firewall, nat};
  chain_spec.edges.resize(1);
  chain_spec.edges[0].plumbing = faas::EdgePlumbing::kGated;
  const auto chain_id = *platform.registry().add_workflow(chain_spec);

  metrics::TextTable table("NFV chain: firewall -> NAT, per-packet pipeline",
                           {"strategy", "packets", "mean", "p95", "p99",
                            "init share (mean)"});

  for (const auto mode : {faas::StartMode::kWarm, faas::StartMode::kHorse}) {
    util::Xoshiro256 rng(4242);  // identical packet stream per strategy
    metrics::SampleStats pipeline;
    metrics::SampleStats init_share;
    int allowed = 0;
    for (int i = 0; i < packets; ++i) {
      workloads::Request request;
      request.header = random_packet(rng);

      const auto fw = platform.invoke(firewall, request, mode);
      if (!fw) {
        std::cerr << "firewall failed: " << fw.status().to_report() << "\n";
        return 1;
      }
      util::Nanos total = fw->init_time + fw->exec_time;
      double share = fw->init_fraction();
      if (fw->response.allowed) {
        ++allowed;
        const auto translated = platform.invoke(nat, request, mode);
        if (!translated) {
          std::cerr << "nat failed: " << translated.status().to_report() << "\n";
          return 1;
        }
        total += translated->init_time + translated->exec_time;
        share = (share + translated->init_fraction()) / 2.0;
      }
      pipeline.add(static_cast<double>(total));
      init_share.add(share);
    }
    table.add_row({std::string(to_string(mode)) + " per-hop",
                   std::to_string(packets),
                   metrics::format_nanos(pipeline.summarize().mean),
                   metrics::format_nanos(pipeline.percentile(95)),
                   metrics::format_nanos(pipeline.percentile(99)),
                   metrics::format_percent(init_share.summarize().mean)});
    std::cout << to_string(mode) << " per-hop: " << allowed << "/" << packets
              << " packets passed the firewall\n";
  }

  // Chain path: identical packet stream, one invoke_chain per packet.
  {
    util::Xoshiro256 rng(4242);
    metrics::SampleStats pipeline;
    metrics::SampleStats init_share;
    int allowed = 0;
    for (int i = 0; i < packets; ++i) {
      workloads::Request request;
      request.header = random_packet(rng);
      const auto chain =
          platform.invoke_chain(chain_id, request, faas::StartMode::kHorse);
      if (!chain) {
        std::cerr << "chain failed: " << chain.status().to_report() << "\n";
        return 1;
      }
      allowed += chain->gated_early ? 0 : 1;
      pipeline.add(
          static_cast<double>(chain->record.init_time + chain->record.exec_time));
      init_share.add(chain->record.init_fraction());
    }
    table.add_row({"horse chained", std::to_string(packets),
                   metrics::format_nanos(pipeline.summarize().mean),
                   metrics::format_nanos(pipeline.percentile(95)),
                   metrics::format_nanos(pipeline.percentile(99)),
                   metrics::format_percent(init_share.summarize().mean)});
    std::cout << "horse chained: " << allowed << "/" << packets
              << " packets passed the firewall\n";
  }

  std::cout << "\n";
  table.print(std::cout);
  const faas::PlatformCounters counters = platform.counters();
  std::cout << "chains: " << counters.chains_invoked << " invoked, "
            << counters.fused_segments << " fused segments, "
            << counters.chains_gated_early << " gated early (dropped)\n";
  return 0;
}
