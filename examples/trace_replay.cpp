// Replay a serverless trace against the platform.
//
//   $ ./trace_replay [azure_invocations.csv]
//
// With a CSV argument, reads the Azure Public Dataset invocations-per-
// minute format; without one, generates a statistically similar synthetic
// trace. Functions alternate between a uLL NAT (HORSE fast path) and the
// thumbnail generator (vanilla warm starts), and the replay reports
// per-class latency statistics.
#include <fstream>
#include <iostream>

#include "faas/platform.hpp"
#include "metrics/reporter.hpp"
#include "metrics/stats.hpp"
#include "trace/azure_reader.hpp"
#include "trace/synthetic.hpp"
#include "workloads/nat.hpp"
#include "workloads/thumbnail.hpp"

int main(int argc, char** argv) {
  using namespace horse;

  // --- load or synthesise the trace --------------------------------------
  trace::ArrivalSchedule schedule;
  std::size_t function_count = 0;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    const auto rows = trace::AzureTraceReader::parse(file);
    if (!rows) {
      std::cerr << "parse error: " << rows.status().to_report() << "\n";
      return 1;
    }
    function_count = rows->size();
    schedule = trace::AzureTraceReader::expand(*rows, 11);
    std::cout << "loaded " << function_count << " functions from " << argv[1]
              << "\n";
  } else {
    trace::SyntheticTraceParams params;
    params.num_functions = 8;
    params.num_minutes = 1;
    params.top_rate_per_minute = 60.0;
    params.seed = 11;
    function_count = params.num_functions;
    schedule = trace::SyntheticAzureTrace(params).generate_schedule();
    std::cout << "no CSV given; synthesised " << function_count
              << " functions (Azure-like distributions)\n";
  }
  // Keep the replay bounded.
  schedule = schedule.window(0, 60 * util::kSecond);
  std::cout << "replaying " << schedule.size() << " invocations\n\n";

  // --- platform with one uLL and one long-running function ----------------
  faas::PlatformConfig config;
  config.num_cpus = 4;
  faas::Platform platform(config);

  faas::FunctionSpec nat_spec;
  nat_spec.name = "nat";
  nat_spec.implementation = std::make_shared<workloads::NatFunction>(256);
  nat_spec.sandbox.name = "nat-sb";
  nat_spec.sandbox.num_vcpus = 1;
  nat_spec.sandbox.memory_mb = 16;
  nat_spec.sandbox.ull = true;
  const auto nat = *platform.registry().add(std::move(nat_spec));

  faas::FunctionSpec thumb_spec;
  thumb_spec.name = "thumbnail";
  thumb_spec.implementation =
      std::make_shared<workloads::ThumbnailFunction>(128, 8);
  thumb_spec.sandbox.name = "thumbnail-sb";
  thumb_spec.sandbox.num_vcpus = 2;
  thumb_spec.sandbox.memory_mb = 64;
  const auto thumbnail = *platform.registry().add(std::move(thumb_spec));

  (void)platform.provision(nat, 1);
  (void)platform.provision(thumbnail, 1);

  // --- replay --------------------------------------------------------------
  metrics::SampleStats ull_latency;
  metrics::SampleStats long_latency;
  util::Nanos previous = 0;
  for (const auto& arrival : schedule.arrivals()) {
    platform.advance_time(arrival.time - previous);
    previous = arrival.time;
    const bool ull = arrival.function_id % 2 == 0;
    workloads::Request request;
    util::Expected<faas::InvocationRecord> record{
        util::Status{util::StatusCode::kInternal, "unset"}};
    if (ull) {
      request.header = "src=10.1.2.3 dst=203.0.113.9 port=8080 proto=tcp";
      record = platform.invoke(nat, request, faas::StartMode::kHorse);
    } else {
      request.threshold = static_cast<std::int32_t>(arrival.function_id);
      record = platform.invoke(thumbnail, request, faas::StartMode::kWarm);
    }
    if (!record) {
      std::cerr << "invoke failed: " << record.status().to_report() << "\n";
      return 1;
    }
    const auto total = static_cast<double>(record->init_time + record->exec_time);
    (ull ? ull_latency : long_latency).add(total);
  }

  metrics::TextTable table("trace replay results",
                           {"class", "invocations", "mean", "p95", "p99"});
  table.add_row({"uLL (nat, HORSE)", std::to_string(ull_latency.size()),
                 metrics::format_nanos(ull_latency.summarize().mean),
                 metrics::format_nanos(ull_latency.percentile(95)),
                 metrics::format_nanos(ull_latency.percentile(99))});
  table.add_row({"long (thumbnail, warm)", std::to_string(long_latency.size()),
                 metrics::format_nanos(long_latency.summarize().mean),
                 metrics::format_nanos(long_latency.percentile(95)),
                 metrics::format_nanos(long_latency.percentile(99))});
  table.print(std::cout);
  return 0;
}
